/* Compiled kernel tier: C implementations of the simulation hot paths.
 *
 * This module mirrors the pure-Python kernel byte-for-byte:
 *
 *   - Event / EventQueue / Simulator  <->  repro.sim.engine
 *   - UndoRecord / CheckpointLogBuffer / make_log_observer
 *                                     <->  repro.safetynet.log + the
 *                                          SafetyNet.register_store observer
 *
 * Byte-identity contract (DESIGN.md par.10): dispatch order is a pure
 * function of the (time, priority, seq) ordering keys, every counter keeps
 * the pure tier's lazy-creation semantics, and no behaviour may depend on
 * the heap's internal arrangement.  The heap here is a C array of
 * {time, priority, seq, event} structs -- no tuple allocation and no rich
 * comparisons -- but it pops in exactly the order heapq would, so reports,
 * golden digests and spec hashes are unchanged.
 *
 * Selection lives in repro.kernel (REPRO_KERNEL=auto|pure|compiled); this
 * module is imported lazily and is entirely optional -- nothing in the
 * repository requires it to exist.  Build with `python tools/build_kernel.py`.
 *
 * All simulation times and sequence numbers are C long longs.  The pure
 * kernel documents the same bound (run() uses 1 << 62 as its sentinel), and
 * every producer in the tree schedules at integer cycles, so the narrowing
 * from Python ints is exact; a non-int time raises TypeError rather than
 * silently diverging from the pure tier.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stddef.h>

#if defined(__clang__)
#define CKERNEL_COMPILER "clang " __clang_version__
#elif defined(__GNUC__)
#define CKERNEL_COMPILER "gcc " __VERSION__
#else
#define CKERNEL_COMPILER "unknown"
#endif

#define FREELIST_MAX 8192
#define COMPACT_MIN_ENTRIES 512
#define TIME_SENTINEL (1LL << 62)

/* Set at module init from repro.sim.engine so both tiers raise the same
 * exception class. */
static PyObject *SimulationError = NULL;
static PyObject *empty_string = NULL;

/* ------------------------------------------------------------------ Event */

typedef struct {
    PyObject_HEAD
    long long time;
    long priority;
    long long seq;
    PyObject *callback;     /* NULL means None */
    PyObject *label;        /* never NULL once constructed */
    PyObject *queue;        /* owning CEventQueue, NULL means None */
    char cancelled;
    char is_static;
} CEvent;

typedef struct {
    long long time;
    long priority;
    long long seq;
    CEvent *ev;             /* strong reference */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t heap_size;
    Py_ssize_t heap_cap;
    PyObject **free_pool;   /* strong references, LIFO */
    Py_ssize_t free_size;
    long long seq;
    Py_ssize_t live;
    long long compactions;
} CEventQueue;

static PyTypeObject CEvent_Type;
static PyTypeObject CEventQueue_Type;
static PyTypeObject CDrainIter_Type;
static PyTypeObject CSimulator_Type;

static void queue_compact(CEventQueue *q);

static inline int
entry_less(const HeapEntry *a, const HeapEntry *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->seq < b->seq;
}

/* ---- heap primitives (identical pop order to heapq on tuple keys) ---- */

static int
heap_reserve(CEventQueue *q)
{
    if (q->heap_size < q->heap_cap)
        return 0;
    Py_ssize_t cap = q->heap_cap ? q->heap_cap * 2 : 256;
    HeapEntry *heap = PyMem_Realloc(q->heap, (size_t)cap * sizeof(HeapEntry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    q->heap = heap;
    q->heap_cap = cap;
    return 0;
}

static void
heap_bubble_up(HeapEntry *heap, Py_ssize_t pos)
{
    HeapEntry item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (entry_less(&item, &heap[parent])) {
            heap[pos] = heap[parent];
            pos = parent;
        }
        else
            break;
    }
    heap[pos] = item;
}

static void
heap_bubble_down(HeapEntry *heap, Py_ssize_t size, Py_ssize_t pos)
{
    HeapEntry item = heap[pos];
    Py_ssize_t child;
    while ((child = 2 * pos + 1) < size) {
        if (child + 1 < size && entry_less(&heap[child + 1], &heap[child]))
            child++;
        if (entry_less(&heap[child], &item)) {
            heap[pos] = heap[child];
            pos = child;
        }
        else
            break;
    }
    heap[pos] = item;
}

/* Push an entry; steals the caller's reference to entry.ev. */
static int
heap_push_entry(CEventQueue *q, HeapEntry entry)
{
    if (heap_reserve(q) < 0) {
        Py_DECREF(entry.ev);
        return -1;
    }
    q->heap[q->heap_size++] = entry;
    heap_bubble_up(q->heap, q->heap_size - 1);
    return 0;
}

/* Pop the root; the caller owns the returned entry's event reference.
 * Must only be called with heap_size > 0. */
static HeapEntry
heap_pop_root(CEventQueue *q)
{
    HeapEntry root = q->heap[0];
    q->heap_size--;
    if (q->heap_size > 0) {
        q->heap[0] = q->heap[q->heap_size];
        heap_bubble_down(q->heap, q->heap_size, 0);
    }
    return root;
}

/* ---- freelist ---- */

static inline void
freelist_put(CEventQueue *q, CEvent *ev)
{
    if (q->free_size < FREELIST_MAX) {
        if (q->free_pool == NULL) {
            q->free_pool = PyMem_Malloc(FREELIST_MAX * sizeof(PyObject *));
            if (q->free_pool == NULL)
                return;         /* just skip pooling on allocation failure */
        }
        Py_INCREF(ev);
        q->free_pool[q->free_size++] = (PyObject *)ev;
    }
}

/* Pool a cancelled entry skimmed off the heap (cancel() already nulled the
 * callback and disowned the queue). */
static inline void
recycle_cancelled(CEventQueue *q, CEvent *ev)
{
    Py_INCREF(empty_string);
    Py_XSETREF(ev->label, empty_string);
    freelist_put(q, ev);
}

/* ------------------------------------------------------------ Event type */

static CEvent *
event_alloc(long long time, long priority, long long seq,
            PyObject *callback, PyObject *label)
{
    CEvent *ev = PyObject_GC_New(CEvent, &CEvent_Type);
    if (ev == NULL)
        return NULL;
    ev->time = time;
    ev->priority = priority;
    ev->seq = seq;
    Py_XINCREF(callback);
    ev->callback = callback;
    Py_INCREF(label);
    ev->label = label;
    ev->queue = NULL;
    ev->cancelled = 0;
    ev->is_static = 0;
    PyObject_GC_Track((PyObject *)ev);
    return ev;
}

static PyObject *
Event_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "priority", "seq", "callback", "label",
                             "queue", NULL};
    long long time, seq;
    long priority;
    PyObject *callback, *label = NULL, *queue = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "LlLO|UO", kwlist,
                                     &time, &priority, &seq, &callback,
                                     &label, &queue))
        return NULL;
    if (queue != Py_None && !Py_IS_TYPE(queue, &CEventQueue_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "queue must be a compiled EventQueue or None");
        return NULL;
    }
    CEvent *ev = event_alloc(time, priority, seq, callback,
                             label ? label : empty_string);
    if (ev == NULL)
        return NULL;
    if (queue != Py_None) {
        Py_INCREF(queue);
        ev->queue = queue;
    }
    return (PyObject *)ev;
}

static int
Event_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->label);
    Py_VISIT(self->queue);
    return 0;
}

static int
Event_clear_gc(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->label);
    Py_CLEAR(self->queue);
    return 0;
}

static void
Event_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    Event_clear_gc(self);
    PyObject_GC_Del(self);
}

/* Shared cancel logic (Event.cancel / EventQueue.cancel / Simulator.cancel):
 * mirror of the pure tier's inlined bookkeeping. */
static void
event_cancel_internal(CEvent *self)
{
    if (self->cancelled)
        return;
    self->cancelled = 1;
    Py_CLEAR(self->callback);
    PyObject *queue = self->queue;
    if (queue != NULL) {
        self->queue = NULL;
        CEventQueue *q = (CEventQueue *)queue;
        Py_ssize_t live = q->live - 1;
        q->live = live;
        if (q->heap_size >= COMPACT_MIN_ENTRIES && live < (q->heap_size >> 1))
            queue_compact(q);
        Py_DECREF(queue);
    }
}

static PyObject *
Event_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    event_cancel_internal(self);
    Py_RETURN_NONE;
}

static PyObject *
Event_repr(CEvent *self)
{
    return PyUnicode_FromFormat("<Event t=%lld p=%ld %R%s>",
                                self->time, self->priority, self->label,
                                self->cancelled ? " cancelled" : "");
}

static PyObject *
Event_get_time(CEvent *self, void *closure)
{
    return PyLong_FromLongLong(self->time);
}

static int
Event_set_time(CEvent *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->time = v;
    return 0;
}

static PyObject *
Event_get_priority(CEvent *self, void *closure)
{
    return PyLong_FromLong(self->priority);
}

static int
Event_set_priority(CEvent *self, PyObject *value, void *closure)
{
    long v = PyLong_AsLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->priority = v;
    return 0;
}

static PyObject *
Event_get_seq(CEvent *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static int
Event_set_seq(CEvent *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->seq = v;
    return 0;
}

static PyObject *
Event_get_callback(CEvent *self, void *closure)
{
    PyObject *cb = self->callback ? self->callback : Py_None;
    Py_INCREF(cb);
    return cb;
}

static int
Event_set_callback(CEvent *self, PyObject *value, void *closure)
{
    if (value == NULL || value == Py_None) {
        Py_CLEAR(self->callback);
        return 0;
    }
    Py_INCREF(value);
    Py_XSETREF(self->callback, value);
    return 0;
}

static PyObject *
Event_get_label(CEvent *self, void *closure)
{
    Py_INCREF(self->label);
    return self->label;
}

static int
Event_set_label(CEvent *self, PyObject *value, void *closure)
{
    if (value == NULL)
        value = empty_string;
    Py_INCREF(value);
    Py_XSETREF(self->label, value);
    return 0;
}

static PyObject *
Event_get_cancelled(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static int
Event_set_cancelled(CEvent *self, PyObject *value, void *closure)
{
    int v = PyObject_IsTrue(value);
    if (v < 0)
        return -1;
    self->cancelled = (char)v;
    return 0;
}

static PyObject *
Event_get_static(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->is_static);
}

static int
Event_set_static(CEvent *self, PyObject *value, void *closure)
{
    int v = PyObject_IsTrue(value);
    if (v < 0)
        return -1;
    self->is_static = (char)v;
    return 0;
}

static PyObject *
Event_get_queue(CEvent *self, void *closure)
{
    PyObject *q = self->queue ? self->queue : Py_None;
    Py_INCREF(q);
    return q;
}

static int
Event_set_queue(CEvent *self, PyObject *value, void *closure)
{
    if (value == NULL || value == Py_None) {
        Py_CLEAR(self->queue);
        return 0;
    }
    if (!Py_IS_TYPE(value, &CEventQueue_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "_queue must be a compiled EventQueue or None");
        return -1;
    }
    Py_INCREF(value);
    Py_XSETREF(self->queue, value);
    return 0;
}

static PyGetSetDef Event_getset[] = {
    {"time", (getter)Event_get_time, (setter)Event_set_time, NULL, NULL},
    {"priority", (getter)Event_get_priority, (setter)Event_set_priority,
     NULL, NULL},
    {"seq", (getter)Event_get_seq, (setter)Event_set_seq, NULL, NULL},
    {"callback", (getter)Event_get_callback, (setter)Event_set_callback,
     NULL, NULL},
    {"label", (getter)Event_get_label, (setter)Event_set_label, NULL, NULL},
    {"cancelled", (getter)Event_get_cancelled, (setter)Event_set_cancelled,
     NULL, NULL},
    {"static", (getter)Event_get_static, (setter)Event_set_static,
     NULL, NULL},
    {"_queue", (getter)Event_get_queue, (setter)Event_set_queue, NULL, NULL},
    {NULL}
};

static PyMethodDef Event_methods[] = {
    {"cancel", (PyCFunction)Event_cancel, METH_NOARGS,
     "Mark the event as cancelled; it will be dropped when reached."},
    {NULL}
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_repr = (reprfunc)Event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled counterpart of repro.sim.engine.Event.",
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear_gc,
    .tp_methods = Event_methods,
    .tp_getset = Event_getset,
    .tp_new = Event_new,
};

/* ------------------------------------------------------- EventQueue type */

static CEventQueue *
queue_alloc(void)
{
    CEventQueue *q = PyObject_GC_New(CEventQueue, &CEventQueue_Type);
    if (q == NULL)
        return NULL;
    q->heap = NULL;
    q->heap_size = 0;
    q->heap_cap = 0;
    q->free_pool = NULL;
    q->free_size = 0;
    q->seq = 0;
    q->live = 0;
    q->compactions = 0;
    PyObject_GC_Track((PyObject *)q);
    return q;
}

static PyObject *
Queue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "EventQueue() takes no arguments");
        return NULL;
    }
    return (PyObject *)queue_alloc();
}

static int
Queue_traverse(CEventQueue *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->heap_size; i++)
        Py_VISIT(self->heap[i].ev);
    for (Py_ssize_t i = 0; i < self->free_size; i++)
        Py_VISIT(self->free_pool[i]);
    return 0;
}

static int
Queue_clear_gc(CEventQueue *self)
{
    Py_ssize_t n = self->heap_size;
    self->heap_size = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_DECREF(self->heap[i].ev);
    n = self->free_size;
    self->free_size = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_DECREF(self->free_pool[i]);
    return 0;
}

static void
Queue_dealloc(CEventQueue *self)
{
    PyObject_GC_UnTrack(self);
    Queue_clear_gc(self);
    PyMem_Free(self->heap);
    PyMem_Free(self->free_pool);
    PyObject_GC_Del(self);
}

static void
queue_compact(CEventQueue *q)
{
    Py_ssize_t out = 0;
    for (Py_ssize_t i = 0; i < q->heap_size; i++) {
        CEvent *ev = q->heap[i].ev;
        if (ev->cancelled) {
            Py_INCREF(empty_string);
            Py_XSETREF(ev->label, empty_string);
            freelist_put(q, ev);
            Py_DECREF(ev);
        }
        else
            q->heap[out++] = q->heap[i];
    }
    q->heap_size = out;
    for (Py_ssize_t i = out / 2 - 1; i >= 0; i--)
        heap_bubble_down(q->heap, out, i);
    q->compactions++;
}

/* Core push shared by EventQueue.push and Simulator.schedule*.  Returns a
 * new reference to the scheduled event. */
static PyObject *
queue_push_internal(CEventQueue *q, long long time, long priority,
                    PyObject *callback, PyObject *label)
{
    if (time < 0) {
        PyErr_Format(SimulationError,
                     "cannot schedule event at negative time %lld", time);
        return NULL;
    }
    long long seq = q->seq++;
    CEvent *ev;
    if (q->free_size > 0) {
        ev = (CEvent *)q->free_pool[--q->free_size];   /* we own this ref */
        ev->time = time;
        ev->priority = priority;
        ev->seq = seq;
        Py_INCREF(callback);
        Py_XSETREF(ev->callback, callback);
        Py_INCREF(label);
        Py_XSETREF(ev->label, label);
        ev->cancelled = 0;
        Py_INCREF(q);
        Py_XSETREF(ev->queue, (PyObject *)q);
    }
    else {
        ev = event_alloc(time, priority, seq, callback, label);
        if (ev == NULL)
            return NULL;
        Py_INCREF(q);
        ev->queue = (PyObject *)q;
    }
    HeapEntry entry = {time, priority, seq, ev};
    Py_INCREF(ev);
    if (heap_push_entry(q, entry) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    q->live++;
    return (PyObject *)ev;
}

/* Parse (time, callback, priority=0, label="") from a fastcall. */
static int
parse_push_args(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                const char *who, long long *time, PyObject **callback,
                long *priority, PyObject **label)
{
    PyObject *slots[4] = {NULL, NULL, NULL, NULL};
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (nargs > 4 || total > 4 || total < 2) {
        PyErr_Format(PyExc_TypeError,
                     "%s expected 2 to 4 arguments, got %zd", who, total);
        return -1;
    }
    for (Py_ssize_t i = 0; i < nargs; i++)
        slots[i] = args[i];
    if (kwnames) {
        static const char *names[4] = {"time", "callback", "priority",
                                       "label"};
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            int matched = 0;
            for (int s = 0; s < 4; s++) {
                if (PyUnicode_CompareWithASCIIString(name, names[s]) == 0) {
                    if (slots[s] != NULL) {
                        PyErr_Format(PyExc_TypeError,
                                     "%s got multiple values for '%s'",
                                     who, names[s]);
                        return -1;
                    }
                    slots[s] = args[nargs + i];
                    matched = 1;
                    break;
                }
            }
            if (!matched) {
                PyErr_Format(PyExc_TypeError,
                             "%s got an unexpected keyword argument %R",
                             who, name);
                return -1;
            }
        }
    }
    if (slots[0] == NULL || slots[1] == NULL) {
        PyErr_Format(PyExc_TypeError, "%s missing time/callback", who);
        return -1;
    }
    if (!PyLong_Check(slots[0])) {
        PyErr_Format(PyExc_TypeError, "%s: event time must be an int", who);
        return -1;
    }
    *time = PyLong_AsLongLong(slots[0]);
    if (*time == -1 && PyErr_Occurred())
        return -1;
    *callback = slots[1];
    if (slots[2] != NULL) {
        *priority = PyLong_AsLong(slots[2]);
        if (*priority == -1 && PyErr_Occurred())
            return -1;
    }
    else
        *priority = 0;
    *label = slots[3] != NULL ? slots[3] : empty_string;
    return 0;
}

static PyObject *
Queue_push(CEventQueue *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    long long time;
    long priority;
    PyObject *callback, *label;
    if (parse_push_args(args, nargs, kwnames, "push()", &time, &callback,
                        &priority, &label) < 0)
        return NULL;
    return queue_push_internal(self, time, priority, callback, label);
}

static PyObject *
Queue_push_static(CEventQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "push_static() takes exactly 2 arguments");
        return NULL;
    }
    if (!Py_IS_TYPE(args[0], &CEvent_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "push_static() requires a compiled Event");
        return NULL;
    }
    CEvent *ev = (CEvent *)args[0];
    if (!PyLong_Check(args[1])) {
        PyErr_SetString(PyExc_TypeError, "event time must be an int");
        return NULL;
    }
    long long time = PyLong_AsLongLong(args[1]);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    long long seq = self->seq++;
    ev->time = time;
    ev->seq = seq;
    ev->cancelled = 0;
    Py_INCREF(self);
    Py_XSETREF(ev->queue, (PyObject *)self);
    HeapEntry entry = {time, ev->priority, seq, ev};
    Py_INCREF(ev);
    if (heap_push_entry(self, entry) < 0)
        return NULL;
    self->live++;
    Py_RETURN_NONE;
}

static PyObject *
Queue_new_static_event(CEventQueue *self, PyObject *const *args,
                       Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *callback = NULL, *label = empty_string;
    long priority = 0;
    PyObject *slots[3] = {NULL, NULL, NULL};
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (nargs > 3 || total > 3 || total < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "new_static_event(callback, label='', priority=0)");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < nargs; i++)
        slots[i] = args[i];
    if (kwnames) {
        static const char *names[3] = {"callback", "label", "priority"};
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            int matched = 0;
            for (int s = 0; s < 3; s++) {
                if (PyUnicode_CompareWithASCIIString(name, names[s]) == 0) {
                    slots[s] = args[nargs + i];
                    matched = 1;
                    break;
                }
            }
            if (!matched) {
                PyErr_Format(PyExc_TypeError,
                             "new_static_event() got an unexpected keyword "
                             "argument %R", name);
                return NULL;
            }
        }
    }
    callback = slots[0];
    if (slots[1] != NULL)
        label = slots[1];
    if (slots[2] != NULL) {
        priority = PyLong_AsLong(slots[2]);
        if (priority == -1 && PyErr_Occurred())
            return NULL;
    }
    CEvent *ev = event_alloc(0, priority, 0, callback, label);
    if (ev == NULL)
        return NULL;
    ev->is_static = 1;
    return (PyObject *)ev;
}

static PyObject *
Queue_pop(CEventQueue *self, PyObject *Py_UNUSED(ignored))
{
    while (self->heap_size) {
        HeapEntry entry = heap_pop_root(self);
        CEvent *ev = entry.ev;
        if (ev->cancelled) {
            recycle_cancelled(self, ev);
            Py_DECREF(ev);
            continue;
        }
        self->live--;
        Py_CLEAR(ev->queue);
        return (PyObject *)ev;
    }
    Py_RETURN_NONE;
}

static PyObject *
Queue_pop_batch(CEventQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1 || nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "pop_batch(batch, max_count=None)");
        return NULL;
    }
    PyObject *batch = args[0];
    long long max_count = TIME_SENTINEL;
    if (nargs == 2 && args[1] != Py_None) {
        max_count = PyLong_AsLongLong(args[1]);
        if (max_count == -1 && PyErr_Occurred())
            return NULL;
    }
    long long batch_time = 0;
    long batch_priority = 0;
    Py_ssize_t count = 0;
    while (self->heap_size) {
        HeapEntry *top = &self->heap[0];
        CEvent *ev = top->ev;
        if (ev->cancelled) {
            HeapEntry entry = heap_pop_root(self);
            recycle_cancelled(self, entry.ev);
            Py_DECREF(entry.ev);
            continue;
        }
        if (count == 0) {
            batch_time = top->time;
            batch_priority = top->priority;
        }
        else if (top->time != batch_time || top->priority != batch_priority)
            break;
        HeapEntry entry = heap_pop_root(self);
        Py_CLEAR(entry.ev->queue);
        int rc;
        if (PyList_Check(batch))
            rc = PyList_Append(batch, (PyObject *)entry.ev);
        else {
            PyObject *r = PyObject_CallMethod(batch, "append", "O", entry.ev);
            rc = r == NULL ? -1 : 0;
            Py_XDECREF(r);
        }
        Py_DECREF(entry.ev);
        if (rc < 0) {
            self->live -= count;
            return NULL;
        }
        count++;
        if (count >= max_count)
            break;
    }
    self->live -= count;
    return PyLong_FromSsize_t(count);
}

static PyObject *
Queue_unpop(CEventQueue *self, PyObject *events)
{
    PyObject *seq = PySequence_Fast(events, "unpop() expects a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    for (Py_ssize_t i = 0; i < n; i++) {
        if (!Py_IS_TYPE(items[i], &CEvent_Type)) {
            PyErr_SetString(PyExc_TypeError,
                            "unpop() requires compiled Events");
            Py_DECREF(seq);
            return NULL;
        }
        CEvent *ev = (CEvent *)items[i];
        if (ev->cancelled)
            continue;
        Py_INCREF(self);
        Py_XSETREF(ev->queue, (PyObject *)self);
        HeapEntry entry = {ev->time, ev->priority, ev->seq, ev};
        Py_INCREF(ev);
        if (heap_push_entry(self, entry) < 0) {
            Py_DECREF(seq);
            return NULL;
        }
        self->live++;
    }
    Py_DECREF(seq);
    Py_RETURN_NONE;
}

static PyObject *
Queue_recycle(CEventQueue *self, PyObject *event)
{
    if (!Py_IS_TYPE(event, &CEvent_Type)) {
        PyErr_SetString(PyExc_TypeError, "recycle() requires a compiled Event");
        return NULL;
    }
    CEvent *ev = (CEvent *)event;
    Py_CLEAR(ev->callback);
    Py_INCREF(empty_string);
    Py_XSETREF(ev->label, empty_string);
    Py_CLEAR(ev->queue);
    ev->cancelled = 1;
    freelist_put(self, ev);
    Py_RETURN_NONE;
}

static PyObject *
Queue_peek_time(CEventQueue *self, PyObject *Py_UNUSED(ignored))
{
    while (self->heap_size && self->heap[0].ev->cancelled) {
        HeapEntry entry = heap_pop_root(self);
        recycle_cancelled(self, entry.ev);
        Py_DECREF(entry.ev);
    }
    if (self->heap_size == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->heap[0].time);
}

static PyObject *
Queue_cancel(CEventQueue *self, PyObject *event)
{
    if (Py_IS_TYPE(event, &CEvent_Type)) {
        event_cancel_internal((CEvent *)event);
        Py_RETURN_NONE;
    }
    return PyObject_CallMethod(event, "cancel", NULL);
}

static PyObject *
Queue_compact_method(CEventQueue *self, PyObject *Py_UNUSED(ignored))
{
    queue_compact(self);
    Py_RETURN_NONE;
}

/* drain() iterator */

typedef struct {
    PyObject_HEAD
    CEventQueue *queue;
} CDrainIter;

static void
DrainIter_dealloc(CDrainIter *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->queue);
    PyObject_GC_Del(self);
}

static int
DrainIter_traverse(CDrainIter *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    return 0;
}

static PyObject *
DrainIter_next(CDrainIter *self)
{
    CEventQueue *q = self->queue;
    if (q == NULL)
        return NULL;
    while (q->heap_size) {
        HeapEntry entry = heap_pop_root(q);
        CEvent *ev = entry.ev;
        if (ev->cancelled) {
            recycle_cancelled(q, ev);
            Py_DECREF(ev);
            continue;
        }
        q->live--;
        Py_CLEAR(ev->queue);
        return (PyObject *)ev;
    }
    return NULL;
}

static PyTypeObject CDrainIter_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._DrainIter",
    .tp_basicsize = sizeof(CDrainIter),
    .tp_dealloc = (destructor)DrainIter_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)DrainIter_traverse,
    .tp_iter = PyObject_SelfIter,
    .tp_iternext = (iternextfunc)DrainIter_next,
};

static PyObject *
Queue_drain(CEventQueue *self, PyObject *Py_UNUSED(ignored))
{
    CDrainIter *it = PyObject_GC_New(CDrainIter, &CDrainIter_Type);
    if (it == NULL)
        return NULL;
    Py_INCREF(self);
    it->queue = self;
    PyObject_GC_Track((PyObject *)it);
    return (PyObject *)it;
}

static Py_ssize_t
Queue_len(CEventQueue *self)
{
    return self->live;
}

static PyObject *
Queue_get_heap(CEventQueue *self, void *closure)
{
    PyObject *list = PyList_New(self->heap_size);
    if (list == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->heap_size; i++) {
        HeapEntry *e = &self->heap[i];
        PyObject *tuple = Py_BuildValue("LlLO", e->time, e->priority, e->seq,
                                        e->ev);
        if (tuple == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, tuple);
    }
    return list;
}

static PyObject *
Queue_get_free(CEventQueue *self, void *closure)
{
    PyObject *list = PyList_New(self->free_size);
    if (list == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->free_size; i++) {
        Py_INCREF(self->free_pool[i]);
        PyList_SET_ITEM(list, i, self->free_pool[i]);
    }
    return list;
}

static PyObject *
Queue_get_seq(CEventQueue *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
Queue_get_live(CEventQueue *self, void *closure)
{
    return PyLong_FromSsize_t(self->live);
}

static PyObject *
Queue_get_compactions(CEventQueue *self, void *closure)
{
    return PyLong_FromLongLong(self->compactions);
}

static int
Queue_set_compactions(CEventQueue *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->compactions = v;
    return 0;
}

static PyGetSetDef Queue_getset[] = {
    {"_heap", (getter)Queue_get_heap, NULL,
     "Snapshot of the heap as (time, priority, seq, event) tuples.", NULL},
    {"_free", (getter)Queue_get_free, NULL,
     "Snapshot of the event freelist.", NULL},
    {"_seq", (getter)Queue_get_seq, NULL, NULL, NULL},
    {"_live", (getter)Queue_get_live, NULL, NULL, NULL},
    {"compactions", (getter)Queue_get_compactions,
     (setter)Queue_set_compactions, NULL, NULL},
    {NULL}
};

static PyMethodDef Queue_methods[] = {
    {"push", (PyCFunction)(void (*)(void))Queue_push,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule callback at absolute cycle `time` and return the event."},
    {"push_static", (PyCFunction)(void (*)(void))Queue_push_static,
     METH_FASTCALL,
     "Re-queue a caller-owned permanent event at absolute cycle `time`."},
    {"new_static_event", (PyCFunction)(void (*)(void))Queue_new_static_event,
     METH_FASTCALL | METH_KEYWORDS,
     "Create a caller-owned static event compatible with this queue."},
    {"pop", (PyCFunction)Queue_pop, METH_NOARGS,
     "Pop the next non-cancelled event, or None if the queue is empty."},
    {"pop_batch", (PyCFunction)(void (*)(void))Queue_pop_batch, METH_FASTCALL,
     "Pop every live event sharing the minimal (time, priority)."},
    {"unpop", (PyCFunction)Queue_unpop, METH_O,
     "Return popped-but-unexecuted events to the queue."},
    {"recycle", (PyCFunction)Queue_recycle, METH_O,
     "Return a fired event to the pool (kernel use only)."},
    {"peek_time", (PyCFunction)Queue_peek_time, METH_NOARGS,
     "Firing time of the next live event without popping it."},
    {"cancel", (PyCFunction)Queue_cancel, METH_O,
     "Cancel a previously scheduled event."},
    {"_compact", (PyCFunction)Queue_compact_method, METH_NOARGS,
     "Drop cancelled entries and rebuild the heap from live ones."},
    {"drain", (PyCFunction)Queue_drain, METH_NOARGS,
     "Yield and remove every remaining live event (teardown)."},
    {NULL}
};

static PySequenceMethods Queue_as_sequence = {
    .sq_length = (lenfunc)Queue_len,
};

static PyTypeObject CEventQueue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.EventQueue",
    .tp_basicsize = sizeof(CEventQueue),
    .tp_dealloc = (destructor)Queue_dealloc,
    .tp_as_sequence = &Queue_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled counterpart of repro.sim.engine.EventQueue.",
    .tp_traverse = (traverseproc)Queue_traverse,
    .tp_clear = (inquiry)Queue_clear_gc,
    .tp_methods = Queue_methods,
    .tp_getset = Queue_getset,
    .tp_new = Queue_new,
};

/* -------------------------------------------------------- Simulator type */

typedef struct {
    PyObject_HEAD
    CEventQueue *queue;     /* strong */
    PyObject *quiesce_hooks;/* PyList */
    long long now;
    long long events_executed;
    char running;
    char stop_requested;
} CSimulator;

static PyObject *
Sim_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return NULL;
    }
    CSimulator *self = PyObject_GC_New(CSimulator, &CSimulator_Type);
    if (self == NULL)
        return NULL;
    self->queue = NULL;
    self->quiesce_hooks = NULL;
    self->now = 0;
    self->events_executed = 0;
    self->running = 0;
    self->stop_requested = 0;
    PyObject_GC_Track((PyObject *)self);
    self->queue = queue_alloc();
    self->quiesce_hooks = PyList_New(0);
    if (self->queue == NULL || self->quiesce_hooks == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static int
Sim_traverse(CSimulator *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    Py_VISIT(self->quiesce_hooks);
    return 0;
}

static int
Sim_clear_gc(CSimulator *self)
{
    Py_CLEAR(self->queue);
    Py_CLEAR(self->quiesce_hooks);
    return 0;
}

static void
Sim_dealloc(CSimulator *self)
{
    PyObject_GC_UnTrack(self);
    Sim_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
Sim_schedule(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
             PyObject *kwnames)
{
    long long delay;
    long priority;
    PyObject *callback, *label;
    /* Same slot layout as push(): (delay, callback, priority, label). */
    if (parse_push_args(args, nargs, kwnames, "schedule()", &delay,
                        &callback, &priority, &label) < 0)
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimulationError, "negative delay %lld", delay);
        return NULL;
    }
    return queue_push_internal(self->queue, self->now + delay, priority,
                               callback, label);
}

static PyObject *
Sim_schedule_at(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    long long time;
    long priority;
    PyObject *callback, *label;
    if (parse_push_args(args, nargs, kwnames, "schedule_at()", &time,
                        &callback, &priority, &label) < 0)
        return NULL;
    if (time < self->now) {
        PyErr_Format(SimulationError,
                     "cannot schedule event in the past (now=%lld, time=%lld)",
                     self->now, time);
        return NULL;
    }
    return queue_push_internal(self->queue, time, priority, callback, label);
}

static PyObject *
Sim_cancel(CSimulator *self, PyObject *event)
{
    return Queue_cancel(self->queue, event);
}

static PyObject *
Sim_add_quiesce_hook(CSimulator *self, PyObject *hook)
{
    if (PyList_Append(self->quiesce_hooks, hook) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Sim_stop(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    self->stop_requested = 1;
    Py_RETURN_NONE;
}

/* The fused dispatch loop -- a line-for-line port of Simulator.run() in
 * repro.sim.engine (see that docstring for the semantics). */
static PyObject *
sim_run_internal(CSimulator *self, PyObject *until_obj, PyObject *maxev_obj)
{
    long long until_bound = TIME_SENTINEL;
    long long events_bound = TIME_SENTINEL;
    if (until_obj != NULL && until_obj != Py_None) {
        until_bound = PyLong_AsLongLong(until_obj);
        if (until_bound == -1 && PyErr_Occurred())
            return NULL;
    }
    if (maxev_obj != NULL && maxev_obj != Py_None) {
        events_bound = PyLong_AsLongLong(maxev_obj);
        if (events_bound == -1 && PyErr_Occurred())
            return NULL;
    }
    CEventQueue *q = self->queue;
    self->running = 1;
    self->stop_requested = 0;
    long long executed = 0;
    int failed = 0;
    for (;;) {
        if (self->stop_requested)
            break;
        if (executed >= events_bound)
            break;
        if (q->heap_size == 0) {
            PyObject *hooks = self->quiesce_hooks;
            Py_INCREF(hooks);
            for (Py_ssize_t i = 0; i < PyList_GET_SIZE(hooks); i++) {
                PyObject *hook = PyList_GET_ITEM(hooks, i);
                Py_INCREF(hook);
                PyObject *res = PyObject_CallNoArgs(hook);
                Py_DECREF(hook);
                if (res == NULL) {
                    Py_DECREF(hooks);
                    failed = 1;
                    goto done;
                }
                Py_DECREF(res);
            }
            Py_DECREF(hooks);
            /* peek_time(): skim cancelled heads, then check progress. */
            while (q->heap_size && q->heap[0].ev->cancelled) {
                HeapEntry entry = heap_pop_root(q);
                recycle_cancelled(q, entry.ev);
                Py_DECREF(entry.ev);
            }
            if (q->heap_size == 0)
                break;
            continue;
        }
        HeapEntry entry = heap_pop_root(q);
        CEvent *ev = entry.ev;
        if (ev->cancelled) {
            recycle_cancelled(q, ev);
            Py_DECREF(ev);
            continue;
        }
        if (entry.time > until_bound) {
            /* Out of the window: put the event back (same key, ordering
             * untouched) and stop at the bound. */
            if (heap_push_entry(q, entry) < 0) {
                failed = 1;
                goto done;
            }
            self->now = until_bound;
            break;
        }
        q->live--;
        Py_CLEAR(ev->queue);
        self->now = entry.time;
        PyObject *callback = ev->callback ? ev->callback : Py_None;
        Py_INCREF(callback);
        PyObject *res = PyObject_CallNoArgs(callback);
        Py_DECREF(callback);
        if (res == NULL) {
            Py_DECREF(ev);
            failed = 1;
            goto done;
        }
        Py_DECREF(res);
        executed++;
        if (!ev->is_static) {
            Py_CLEAR(ev->callback);
            Py_INCREF(empty_string);
            Py_XSETREF(ev->label, empty_string);
            ev->cancelled = 1;
            freelist_put(q, ev);
        }
        Py_DECREF(ev);
    }
done:
    self->running = 0;
    self->events_executed += executed;
    if (failed)
        return NULL;
    return PyLong_FromLongLong(self->now);
}

static PyObject *
Sim_run(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
        PyObject *kwnames)
{
    PyObject *until = NULL, *max_events = NULL;
    if (nargs > 2) {
        PyErr_SetString(PyExc_TypeError, "run(until=None, max_events=None)");
        return NULL;
    }
    if (nargs >= 1)
        until = args[0];
    if (nargs >= 2)
        max_events = args[1];
    if (kwnames) {
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "until") == 0)
                until = args[nargs + i];
            else if (PyUnicode_CompareWithASCIIString(name,
                                                      "max_events") == 0)
                max_events = args[nargs + i];
            else {
                PyErr_Format(PyExc_TypeError,
                             "run() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    return sim_run_internal(self, until, max_events);
}

static PyObject *
Sim_run_until_idle(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
                   PyObject *kwnames)
{
    PyObject *max_events = NULL;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "run_until_idle(max_events=None)");
        return NULL;
    }
    if (nargs == 1)
        max_events = args[0];
    if (kwnames) {
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "max_events") == 0)
                max_events = args[nargs + i];
            else {
                PyErr_Format(PyExc_TypeError,
                             "run_until_idle() got an unexpected keyword "
                             "argument %R", name);
                return NULL;
            }
        }
    }
    PyObject *saved = self->quiesce_hooks;
    PyObject *empty = PyList_New(0);
    if (empty == NULL)
        return NULL;
    self->quiesce_hooks = empty;
    PyObject *result = sim_run_internal(self, NULL, max_events);
    self->quiesce_hooks = saved;
    Py_DECREF(empty);
    return result;
}

static PyObject *
Sim_get_now(CSimulator *self, void *closure)
{
    return PyLong_FromLongLong(self->now);
}

static int
Sim_set_now(CSimulator *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->now = v;
    return 0;
}

static PyObject *
Sim_get_events_executed(CSimulator *self, void *closure)
{
    return PyLong_FromLongLong(self->events_executed);
}

static int
Sim_set_events_executed(CSimulator *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->events_executed = v;
    return 0;
}

static PyObject *
Sim_get_queue(CSimulator *self, void *closure)
{
    Py_INCREF(self->queue);
    return (PyObject *)self->queue;
}

static PyObject *
Sim_get_running(CSimulator *self, void *closure)
{
    return PyBool_FromLong(self->running);
}

static PyObject *
Sim_get_stop_requested(CSimulator *self, void *closure)
{
    return PyBool_FromLong(self->stop_requested);
}

static int
Sim_set_stop_requested(CSimulator *self, PyObject *value, void *closure)
{
    int v = PyObject_IsTrue(value);
    if (v < 0)
        return -1;
    self->stop_requested = (char)v;
    return 0;
}

static PyObject *
Sim_get_quiesce_hooks(CSimulator *self, void *closure)
{
    Py_INCREF(self->quiesce_hooks);
    return self->quiesce_hooks;
}

static int
Sim_set_quiesce_hooks(CSimulator *self, PyObject *value, void *closure)
{
    if (value == NULL || !PyList_Check(value)) {
        PyErr_SetString(PyExc_TypeError, "_quiesce_hooks must be a list");
        return -1;
    }
    Py_INCREF(value);
    Py_XSETREF(self->quiesce_hooks, value);
    return 0;
}

static PyGetSetDef Sim_getset[] = {
    {"now", (getter)Sim_get_now, NULL,
     "Current simulation time in cycles.", NULL},
    {"_now", (getter)Sim_get_now, (setter)Sim_set_now, NULL, NULL},
    {"events_executed", (getter)Sim_get_events_executed,
     (setter)Sim_set_events_executed, NULL, NULL},
    {"queue", (getter)Sim_get_queue, NULL, NULL, NULL},
    {"_running", (getter)Sim_get_running, NULL, NULL, NULL},
    {"_stop_requested", (getter)Sim_get_stop_requested,
     (setter)Sim_set_stop_requested, NULL, NULL},
    {"_quiesce_hooks", (getter)Sim_get_quiesce_hooks,
     (setter)Sim_set_quiesce_hooks, NULL, NULL},
    {NULL}
};

static PyMethodDef Sim_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))Sim_schedule,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule callback `delay` cycles from now."},
    {"schedule_at", (PyCFunction)(void (*)(void))Sim_schedule_at,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule callback at an absolute cycle (must not be in the past)."},
    {"cancel", (PyCFunction)Sim_cancel, METH_O,
     "Cancel a scheduled event."},
    {"add_quiesce_hook", (PyCFunction)Sim_add_quiesce_hook, METH_O,
     "Register a callable invoked whenever the event queue drains."},
    {"stop", (PyCFunction)Sim_stop, METH_NOARGS,
     "Request that run() return after the current event."},
    {"run", (PyCFunction)(void (*)(void))Sim_run,
     METH_FASTCALL | METH_KEYWORDS,
     "Run events until the queue drains, `until` cycles, or `max_events`."},
    {"run_until_idle", (PyCFunction)(void (*)(void))Sim_run_until_idle,
     METH_FASTCALL | METH_KEYWORDS,
     "Run until the event queue is empty (ignoring quiesce hooks)."},
    {NULL}
};

static PyTypeObject CSimulator_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Simulator",
    .tp_basicsize = sizeof(CSimulator),
    .tp_dealloc = (destructor)Sim_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled counterpart of repro.sim.engine.Simulator.",
    .tp_traverse = (traverseproc)Sim_traverse,
    .tp_clear = (inquiry)Sim_clear_gc,
    .tp_methods = Sim_methods,
    .tp_getset = Sim_getset,
    .tp_new = Sim_new,
};

/* ----------------------------------------------------------- switch core */

/* Per-switch compiled hot path: inject / receive_from_link / scan / credit
 * wake, a line-for-line port of repro.interconnect.switch.Switch's hot
 * methods.  The core shares all Python-visible state (FiniteBuffer fields,
 * link occupancy, stats counters, the switch's message counters) by reading
 * and writing the same attributes at the same points, so reports and the
 * wait-for-graph detector see exactly what the pure tier produces.  Only
 * kernel-private state (the occupancy mask, the scan-scheduled flag) moves
 * into the C struct -- the pure methods are unbound once a core is
 * installed, so nothing else reads them.
 *
 * Cores are installed network-wide or not at all (see
 * InterconnectNetwork._install_compiled_cores): every switch must have
 * <= 64 scan slots (the mask is a uint64) and the simulator must be the
 * compiled one.  Construction is two-phase: SwitchCore(switch) captures
 * switch-local state, bind() resolves cross-switch references once every
 * core exists. */

/* Interned attribute names used on the hot paths. */
static struct {
    PyObject *reserved, *total_enqueued, *peak_occupancy, *name,
        *busy_until, *busy_cycles, *messages_carried, *bytes_carried,
        *hops, *dst, *src, *vnet, *size_bytes, *value, *flush_epoch,
        *messages_forwarded, *messages_ejected, *blocked_events,
        *c_injected, *c_ejected, *c_forwarded, *queue_attr, *popleft,
        *append, *core_attr, *capacity_attr, *latency_cycles_attr,
        *delivered_at, *injected_at, *messages_delivered,
        *total_message_latency, *delivered, *receive, *ordering,
        *note_delivery, *deliver_label, *squashed_net, *delivered_name,
        *reordered_name, *send_seq_name, *max_delivered_seq;
} S;

static PyObject *Direction_LOCAL = NULL;     /* lazily imported */
static PyObject *delay_kwnames = NULL;       /* ("delay",) */

typedef struct CSwitchCoreT CSwitchCore;

typedef struct {
    PyObject *port;             /* Direction member */
    PyObject *deque;
    PyObject *popleft;          /* bound method */
    int credit_local;           /* local port: wake the NIC, not a switch */
    CSwitchCore *credit_up;     /* upstream core, strong, NULL when local */
} ScanSlot;

typedef struct {
    PyObject *buf;              /* FiniteBuffer */
    PyObject *deque;
    PyObject *append;           /* bound deque.append */
    long capacity;
    uint64_t bit;
} GridSlot;

typedef struct {
    PyObject *dir;              /* Direction member (identity key) */
    PyObject *link;
    PyObject *ser_cache;        /* link._ser_cache dict */
    PyObject *ser_method;       /* bound link.serialization_cycles */
    long long latency_cycles;
    CSwitchCore *down;          /* strong */
    int shared;
    long vns, vcc;
    GridSlot *dslots;           /* downstream slots, [vn][vc] row-major */
    long ndslots;               /* actual allocated count (1 when shared) */
    PyObject *fwd_label;
} OutPort;

struct CSwitchCoreT {
    PyObject_HEAD
    PyObject *py_switch;
    CSimulator *sim;
    CEventQueue *cqueue;
    PyObject *network;
    PyObject *stats_counter;    /* bound stats.counter */
    PyObject *count_meth;       /* bound switch.count */
    CEvent *scan_event;
    Py_ssize_t nslots;
    ScanSlot *slots;
    uint64_t active_mask;
    int scan_scheduled;
    int bound;
    int local_shared;
    long local_vns, local_vcc;
    long local_nslots;          /* actual allocated count (1 when shared) */
    GridSlot *local_slots;      /* [vn][vc] row-major */
    PyObject *route_row;        /* list, or NULL for adaptive */
    PyObject *route_fn;         /* bound routing.route */
    PyObject *congestion_fn;    /* bound switch._congestion_for */
    PyObject *switch_id_obj;
    long long ejection_latency;
    PyObject *ejection_delay_obj;
    PyObject *can_eject, *deliver, *notify_space;
    PyObject *credit_wake_dict; /* switch._credit_wake */
    PyObject *endpoints;        /* network._endpoints dict */
    PyObject *delivered_counters, *reordered_counters;  /* cache lists */
    PyObject *vnet_counter_meth;/* bound network._vnet_counter */
    PyObject *ordering_records; /* ordering._records dict */
    PyObject *record_meth;      /* bound ordering._record */
    PyObject *pvnet_delivered;  /* ordering.per_vnet_delivered dict */
    PyObject *pvnet_reordered;  /* ordering.per_vnet_reordered dict */
    PyObject *local_pending;    /* local endpoint's pending_injection deque */
    int local_pending_resolved;
    int always_eject;           /* can_eject is identically True (has VCs) */
    Py_ssize_t nout;
    OutPort *outs;
    PyObject *c_injected, *c_ejected, *c_forwarded;  /* Counter cache */
    PyObject *name_injected, *name_ejected, *name_forwarded;
    PyObject *lbl_injection_blocked, *lbl_ejection_blocked,
        *lbl_blocked_on_buffer, *lbl_squashed;
};

static PyTypeObject CSwitchCore_Type;
static PyTypeObject CForwardThunk_Type;

/* ---- small attribute helpers (interned-name get/set of C integers) ---- */

static int
getattr_ll(PyObject *obj, PyObject *name, long long *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
setattr_ll(PyObject *obj, PyObject *name, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    if (v == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return rc;
}

static int
addattr_ll(PyObject *obj, PyObject *name, long long delta)
{
    long long v;
    if (getattr_ll(obj, name, &v) < 0)
        return -1;
    return setattr_ll(obj, name, v + delta);
}

/* counter.value += n (Counter stores a plain int attribute) */
static int
counter_add(PyObject *counter, long long n)
{
    return addattr_ll(counter, S.value, n);
}

/* Lazy hot counter: mirror of `counter = self._c_x or stats.counter(name)`,
 * kept in sync with the pure tier by also storing the Counter back onto the
 * Python switch attribute. */
static PyObject *
core_lazy_counter(CSwitchCore *self, PyObject **cache, PyObject *switch_attr,
                  PyObject *counter_name)
{
    if (*cache != NULL)
        return *cache;
    PyObject *counter = PyObject_CallOneArg(self->stats_counter, counter_name);
    if (counter == NULL)
        return NULL;
    if (PyObject_SetAttr(self->py_switch, switch_attr, counter) < 0) {
        Py_DECREF(counter);
        return NULL;
    }
    *cache = counter;                       /* keep the reference */
    return counter;
}

static int
core_count(CSwitchCore *self, PyObject *label)
{
    PyObject *res = PyObject_CallOneArg(self->count_meth, label);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* Schedule this core's scan via push_static at absolute cycle `time`. */
static int
core_push_scan(CSwitchCore *self, long long time)
{
    CEventQueue *q = self->cqueue;
    CEvent *ev = self->scan_event;
    long long seq = q->seq++;
    ev->time = time;
    ev->seq = seq;
    ev->cancelled = 0;
    Py_INCREF(q);
    Py_XSETREF(ev->queue, (PyObject *)q);
    HeapEntry entry = {time, ev->priority, seq, ev};
    Py_INCREF(ev);
    if (heap_push_entry(q, entry) < 0)
        return -1;
    q->live++;
    return 0;
}

/* The shared "message landed in a buffer slot" tail used by inject /
 * receive / the forward thunk: set the mask bit and make sure a scan is
 * pending *now*. */
static inline int
core_wake_scan_now(CSwitchCore *self)
{
    if (!self->scan_scheduled) {
        self->scan_scheduled = 1;
        return core_push_scan(self, self->sim->now);
    }
    return 0;
}

/* ---------------------------------------------------------- ForwardThunk */

/* Replaces the per-forward Python lambda: carries the resolved downstream
 * slot, the message and the captured flush epoch; calling it performs the
 * downstream receive_from_link inline. */
typedef struct {
    PyObject_HEAD
    CSwitchCore *down;          /* strong */
    PyObject *message;          /* strong */
    PyObject *buf;              /* strong */
    PyObject *deque;            /* strong */
    PyObject *append;           /* strong */
    uint64_t bit;
    long long epoch;
} CForwardThunk;

static int
Thunk_traverse(CForwardThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->down);
    Py_VISIT(self->message);
    Py_VISIT(self->buf);
    Py_VISIT(self->deque);
    Py_VISIT(self->append);
    return 0;
}

static int
Thunk_clear_gc(CForwardThunk *self)
{
    Py_CLEAR(self->down);
    Py_CLEAR(self->message);
    Py_CLEAR(self->buf);
    Py_CLEAR(self->deque);
    Py_CLEAR(self->append);
    return 0;
}

static void
Thunk_dealloc(CForwardThunk *self)
{
    PyObject_GC_UnTrack(self);
    Thunk_clear_gc(self);
    PyObject_GC_Del(self);
}

/* Inline of FiniteBuffer.push_reserved + the arrival bookkeeping of
 * Switch.receive_from_link (the epoch was already captured at send). */
static int
core_receive_into_slot(CSwitchCore *down, PyObject *message, PyObject *buf,
                       PyObject *deque, PyObject *append, uint64_t bit,
                       int count_hop)
{
    long long reserved;
    if (getattr_ll(buf, S.reserved, &reserved) < 0)
        return -1;
    if (reserved <= 0) {
        PyObject *name = PyObject_GetAttr(buf, S.name);
        PyErr_Format(PyExc_RuntimeError, "buffer %S: push without reservation",
                     name ? name : Py_None);
        Py_XDECREF(name);
        return -1;
    }
    if (setattr_ll(buf, S.reserved, reserved - 1) < 0)
        return -1;
    PyObject *res = PyObject_CallOneArg(append, message);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    if (addattr_ll(buf, S.total_enqueued, 1) < 0)
        return -1;
    Py_ssize_t qlen = PyObject_Size(deque);
    if (qlen < 0)
        return -1;
    long long occupancy = (long long)qlen + reserved - 1;
    long long peak;
    if (getattr_ll(buf, S.peak_occupancy, &peak) < 0)
        return -1;
    if (occupancy > peak && setattr_ll(buf, S.peak_occupancy, occupancy) < 0)
        return -1;
    down->active_mask |= bit;
    if (count_hop && addattr_ll(message, S.hops, 1) < 0)
        return -1;
    return core_wake_scan_now(down);
}

static PyObject *
Thunk_call(CForwardThunk *self, PyObject *args, PyObject *kwds)
{
    CSwitchCore *down = self->down;
    long long cur_epoch;
    if (getattr_ll(down->network, S.flush_epoch, &cur_epoch) < 0)
        return NULL;
    if (cur_epoch != self->epoch) {
        if (core_count(down, down->lbl_squashed) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (core_receive_into_slot(down, self->message, self->buf, self->deque,
                               self->append, self->bit, 1) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyTypeObject CForwardThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._ForwardThunk",
    .tp_basicsize = sizeof(CForwardThunk),
    .tp_dealloc = (destructor)Thunk_dealloc,
    .tp_call = (ternaryfunc)Thunk_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)Thunk_traverse,
    .tp_clear = (inquiry)Thunk_clear_gc,
};

/* ---------------------------------------------------------- DeliverThunk */

/* Replaces the per-delivery `_deliver` closure of
 * InterconnectNetwork.deliver_to_endpoint for ejections performed by a
 * compiled switch core: same epoch check, same delivery accounting, same
 * lazy per-virtual-network counters, then the endpoint receive callback. */
typedef struct {
    PyObject_HEAD
    CSwitchCore *core;          /* strong; owns network/sim/counter caches */
    PyObject *endpoint;
    PyObject *message;
    long long epoch;
} CDeliverThunk;

static PyTypeObject CDeliverThunk_Type;

static int
DThunk_traverse(CDeliverThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->endpoint);
    Py_VISIT(self->message);
    return 0;
}

static int
DThunk_clear_gc(CDeliverThunk *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->endpoint);
    Py_CLEAR(self->message);
    return 0;
}

static void
DThunk_dealloc(CDeliverThunk *self)
{
    PyObject_GC_UnTrack(self);
    DThunk_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
DThunk_call(CDeliverThunk *self, PyObject *args, PyObject *kwds)
{
    CSwitchCore *core = self->core;
    PyObject *network = core->network;
    PyObject *message = self->message;
    long long cur_epoch;
    if (getattr_ll(network, S.flush_epoch, &cur_epoch) < 0)
        return NULL;
    if (cur_epoch != self->epoch) {
        PyObject *counter = PyObject_CallOneArg(core->stats_counter,
                                                S.squashed_net);
        if (counter == NULL)
            return NULL;
        PyObject *res = PyObject_CallMethod(counter, "add", NULL);
        Py_DECREF(counter);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        Py_RETURN_NONE;
    }
    long long now = core->sim->now;
    if (setattr_ll(message, S.delivered_at, now) < 0 ||
        addattr_ll(network, S.messages_delivered, 1) < 0 ||
        addattr_ll(self->endpoint, S.delivered, 1) < 0)
        return NULL;
    long long injected;
    if (getattr_ll(message, S.injected_at, &injected) < 0 ||
        addattr_ll(network, S.total_message_latency, now - injected) < 0)
        return NULL;
    /* Inline of ordering.note_delivery(message): one dict probe plus
     * plain attribute bookkeeping instead of a bound-method allocation
     * and a Python frame per delivered message. */
    PyObject *vn_obj = PyObject_GetAttr(message, S.vnet);
    if (vn_obj == NULL)
        return NULL;
    int reordered;
    {
        PyObject *src = PyObject_GetAttr(message, S.src);
        if (src == NULL)
            goto fail_vn;
        PyObject *dst = PyObject_GetAttr(message, S.dst);
        if (dst == NULL) {
            Py_DECREF(src);
            goto fail_vn;
        }
        PyObject *key = PyTuple_Pack(3, src, dst, vn_obj);
        Py_DECREF(src);
        Py_DECREF(dst);
        if (key == NULL)
            goto fail_vn;
        PyObject *record = PyDict_GetItemWithError(core->ordering_records,
                                                   key);
        int rec_new = 0;
        if (record == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(key);
                goto fail_vn;
            }
            record = PyObject_CallOneArg(core->record_meth, key);
            if (record == NULL) {
                Py_DECREF(key);
                goto fail_vn;
            }
            rec_new = 1;
        }
        Py_DECREF(key);
        long long send_seq, max_seq;
        if (addattr_ll(record, S.delivered_name, 1) < 0 ||
            getattr_ll(message, S.send_seq_name, &send_seq) < 0 ||
            getattr_ll(record, S.max_delivered_seq, &max_seq) < 0) {
            if (rec_new)
                Py_DECREF(record);
            goto fail_vn;
        }
        reordered = send_seq < max_seq;
        if (reordered) {
            if (addattr_ll(record, S.reordered_name, 1) < 0) {
                if (rec_new)
                    Py_DECREF(record);
                goto fail_vn;
            }
        }
        else if (setattr_ll(record, S.max_delivered_seq, send_seq) < 0) {
            if (rec_new)
                Py_DECREF(record);
            goto fail_vn;
        }
        if (rec_new)
            Py_DECREF(record);
        /* per_vnet_delivered[vnet] += 1 (key always pre-seeded) */
        PyObject *cur = PyDict_GetItemWithError(core->pvnet_delivered,
                                                vn_obj);
        if (cur == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetObject(PyExc_KeyError, vn_obj);
            goto fail_vn;
        }
        long long dv = PyLong_AsLongLong(cur);
        if (dv == -1 && PyErr_Occurred())
            goto fail_vn;
        PyObject *nv = PyLong_FromLongLong(dv + 1);
        if (nv == NULL)
            goto fail_vn;
        int ok = PyDict_SetItem(core->pvnet_delivered, vn_obj, nv);
        Py_DECREF(nv);
        if (ok < 0)
            goto fail_vn;
        if (reordered) {
            cur = PyDict_GetItemWithError(core->pvnet_reordered, vn_obj);
            if (cur == NULL) {
                if (!PyErr_Occurred())
                    PyErr_SetObject(PyExc_KeyError, vn_obj);
                goto fail_vn;
            }
            dv = PyLong_AsLongLong(cur);
            if (dv == -1 && PyErr_Occurred())
                goto fail_vn;
            nv = PyLong_FromLongLong(dv + 1);
            if (nv == NULL)
                goto fail_vn;
            ok = PyDict_SetItem(core->pvnet_reordered, vn_obj, nv);
            Py_DECREF(nv);
            if (ok < 0)
                goto fail_vn;
        }
        goto ordering_done;
    fail_vn:
        Py_DECREF(vn_obj);
        return NULL;
    }
ordering_done:;
    Py_ssize_t vn = PyLong_AsSsize_t(vn_obj);
    if (vn == -1 && PyErr_Occurred()) {
        Py_DECREF(vn_obj);
        return NULL;
    }
    PyObject *counter = PyList_GetItem(core->delivered_counters, vn);
    if (counter == NULL) {
        Py_DECREF(vn_obj);
        return NULL;
    }
    if (counter == Py_None) {
        counter = PyObject_CallFunctionObjArgs(
            core->vnet_counter_meth, core->delivered_counters,
            S.delivered_name, vn_obj, NULL);
        if (counter == NULL) {
            Py_DECREF(vn_obj);
            return NULL;
        }
        Py_DECREF(counter);     /* the cache list keeps it alive */
        counter = PyList_GetItem(core->delivered_counters, vn);
        if (counter == NULL) {
            Py_DECREF(vn_obj);
            return NULL;
        }
    }
    if (counter_add(counter, 1) < 0) {
        Py_DECREF(vn_obj);
        return NULL;
    }
    if (reordered) {
        PyObject *rc = PyObject_CallFunctionObjArgs(
            core->vnet_counter_meth, core->reordered_counters,
            S.reordered_name, vn_obj, NULL);
        if (rc == NULL) {
            Py_DECREF(vn_obj);
            return NULL;
        }
        int ok = counter_add(rc, 1);
        Py_DECREF(rc);
        if (ok < 0) {
            Py_DECREF(vn_obj);
            return NULL;
        }
    }
    Py_DECREF(vn_obj);
    PyObject *receive = PyObject_GetAttr(self->endpoint, S.receive);
    if (receive == NULL)
        return NULL;
    PyObject *res = PyObject_CallOneArg(receive, message);
    Py_DECREF(receive);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyTypeObject CDeliverThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._DeliverThunk",
    .tp_basicsize = sizeof(CDeliverThunk),
    .tp_dealloc = (destructor)DThunk_dealloc,
    .tp_call = (ternaryfunc)DThunk_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)DThunk_traverse,
    .tp_clear = (inquiry)DThunk_clear_gc,
};

/* C fast path of deliver_to_endpoint(switch_id, message, delay=EJECTION):
 * same unattached-node check at schedule time, then a C thunk instead of a
 * Python closure.  `message` reference is borrowed. */
static int
core_deliver_local(CSwitchCore *self, PyObject *message)
{
    PyObject *endpoint = PyDict_GetItemWithError(self->endpoints,
                                                 self->switch_id_obj);
    if (endpoint == NULL && PyErr_Occurred())
        return -1;
    PyObject *receive = NULL;
    if (endpoint != NULL) {
        receive = PyObject_GetAttr(endpoint, S.receive);
        if (receive == NULL)
            return -1;
    }
    if (endpoint == NULL || receive == Py_None) {
        Py_XDECREF(receive);
        PyErr_Format(PyExc_RuntimeError,
                     "message delivered to unattached node %S: %R",
                     self->switch_id_obj, message);
        return -1;
    }
    Py_DECREF(receive);
    long long epoch;
    if (getattr_ll(self->network, S.flush_epoch, &epoch) < 0)
        return -1;
    CDeliverThunk *thunk = PyObject_GC_New(CDeliverThunk,
                                           &CDeliverThunk_Type);
    if (thunk == NULL)
        return -1;
    Py_INCREF(self);
    thunk->core = self;
    Py_INCREF(endpoint);
    thunk->endpoint = endpoint;
    Py_INCREF(message);
    thunk->message = message;
    thunk->epoch = epoch;
    PyObject_GC_Track((PyObject *)thunk);
    PyObject *ev = queue_push_internal(
        self->cqueue, self->sim->now + self->ejection_latency, 0,
        (PyObject *)thunk, S.deliver_label);
    Py_DECREF(thunk);
    if (ev == NULL)
        return -1;
    Py_DECREF(ev);
    return 0;
}

/* ------------------------------------------------------ SwitchCore: init */

static int
Core_traverse(CSwitchCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->py_switch);
    Py_VISIT(self->sim);
    Py_VISIT(self->cqueue);
    Py_VISIT(self->network);
    Py_VISIT(self->stats_counter);
    Py_VISIT(self->count_meth);
    Py_VISIT(self->scan_event);
    if (self->slots) {
        for (Py_ssize_t i = 0; i < self->nslots; i++) {
            Py_VISIT(self->slots[i].port);
            Py_VISIT(self->slots[i].deque);
            Py_VISIT(self->slots[i].popleft);
            Py_VISIT(self->slots[i].credit_up);
        }
    }
    if (self->local_slots) {
        for (long i = 0; i < self->local_nslots; i++) {
            Py_VISIT(self->local_slots[i].buf);
            Py_VISIT(self->local_slots[i].deque);
            Py_VISIT(self->local_slots[i].append);
        }
    }
    Py_VISIT(self->route_row);
    Py_VISIT(self->route_fn);
    Py_VISIT(self->congestion_fn);
    Py_VISIT(self->switch_id_obj);
    Py_VISIT(self->ejection_delay_obj);
    Py_VISIT(self->can_eject);
    Py_VISIT(self->deliver);
    Py_VISIT(self->notify_space);
    Py_VISIT(self->credit_wake_dict);
    Py_VISIT(self->endpoints);
    Py_VISIT(self->delivered_counters);
    Py_VISIT(self->reordered_counters);
    Py_VISIT(self->vnet_counter_meth);
    Py_VISIT(self->ordering_records);
    Py_VISIT(self->record_meth);
    Py_VISIT(self->pvnet_delivered);
    Py_VISIT(self->pvnet_reordered);
    Py_VISIT(self->local_pending);
    for (Py_ssize_t i = 0; i < self->nout; i++) {
        OutPort *out = &self->outs[i];
        Py_VISIT(out->dir);
        Py_VISIT(out->link);
        Py_VISIT(out->ser_cache);
        Py_VISIT(out->ser_method);
        Py_VISIT(out->down);
        Py_VISIT(out->fwd_label);
        if (out->dslots) {
            for (long j = 0; j < out->ndslots; j++) {
                Py_VISIT(out->dslots[j].buf);
                Py_VISIT(out->dslots[j].deque);
                Py_VISIT(out->dslots[j].append);
            }
        }
    }
    Py_VISIT(self->c_injected);
    Py_VISIT(self->c_ejected);
    Py_VISIT(self->c_forwarded);
    Py_VISIT(self->name_injected);
    Py_VISIT(self->name_ejected);
    Py_VISIT(self->name_forwarded);
    return 0;
}

static int
Core_clear_gc(CSwitchCore *self)
{
    Py_CLEAR(self->py_switch);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->cqueue);
    Py_CLEAR(self->network);
    Py_CLEAR(self->stats_counter);
    Py_CLEAR(self->count_meth);
    Py_CLEAR(self->scan_event);
    if (self->slots) {
        for (Py_ssize_t i = 0; i < self->nslots; i++) {
            Py_CLEAR(self->slots[i].port);
            Py_CLEAR(self->slots[i].deque);
            Py_CLEAR(self->slots[i].popleft);
            Py_CLEAR(self->slots[i].credit_up);
        }
    }
    if (self->local_slots) {
        for (long i = 0; i < self->local_nslots; i++) {
            Py_CLEAR(self->local_slots[i].buf);
            Py_CLEAR(self->local_slots[i].deque);
            Py_CLEAR(self->local_slots[i].append);
        }
    }
    Py_CLEAR(self->route_row);
    Py_CLEAR(self->route_fn);
    Py_CLEAR(self->congestion_fn);
    Py_CLEAR(self->switch_id_obj);
    Py_CLEAR(self->ejection_delay_obj);
    Py_CLEAR(self->can_eject);
    Py_CLEAR(self->deliver);
    Py_CLEAR(self->notify_space);
    Py_CLEAR(self->credit_wake_dict);
    Py_CLEAR(self->endpoints);
    Py_CLEAR(self->delivered_counters);
    Py_CLEAR(self->reordered_counters);
    Py_CLEAR(self->vnet_counter_meth);
    Py_CLEAR(self->ordering_records);
    Py_CLEAR(self->record_meth);
    Py_CLEAR(self->pvnet_delivered);
    Py_CLEAR(self->pvnet_reordered);
    Py_CLEAR(self->local_pending);
    for (Py_ssize_t i = 0; i < self->nout; i++) {
        OutPort *out = &self->outs[i];
        Py_CLEAR(out->dir);
        Py_CLEAR(out->link);
        Py_CLEAR(out->ser_cache);
        Py_CLEAR(out->ser_method);
        Py_CLEAR(out->down);
        Py_CLEAR(out->fwd_label);
        if (out->dslots) {
            for (long j = 0; j < out->ndslots; j++) {
                Py_CLEAR(out->dslots[j].buf);
                Py_CLEAR(out->dslots[j].deque);
                Py_CLEAR(out->dslots[j].append);
            }
        }
    }
    Py_CLEAR(self->c_injected);
    Py_CLEAR(self->c_ejected);
    Py_CLEAR(self->c_forwarded);
    Py_CLEAR(self->name_injected);
    Py_CLEAR(self->name_ejected);
    Py_CLEAR(self->name_forwarded);
    return 0;
}

static void
Core_dealloc(CSwitchCore *self)
{
    PyObject_GC_UnTrack(self);
    Core_clear_gc(self);
    PyMem_Free(self->slots);
    PyMem_Free(self->local_slots);
    for (Py_ssize_t i = 0; i < self->nout; i++)
        PyMem_Free(self->outs[i].dslots);
    PyMem_Free(self->outs);
    PyObject_GC_Del(self);
}

/* Fill a GridSlot from a FiniteBuffer (+ its mask bit). */
static int
grid_slot_init(GridSlot *slot, PyObject *buf, uint64_t bit)
{
    PyObject *deque = PyObject_GetAttr(buf, S.queue_attr);
    if (deque == NULL)
        return -1;
    PyObject *append = PyObject_GetAttr(deque, S.append);
    if (append == NULL) {
        Py_DECREF(deque);
        return -1;
    }
    long long capacity;
    if (getattr_ll(buf, S.capacity_attr, &capacity) < 0) {
        Py_DECREF(deque);
        Py_DECREF(append);
        return -1;
    }
    Py_INCREF(buf);
    slot->buf = buf;
    slot->deque = deque;
    slot->append = append;
    slot->capacity = (long)capacity;
    slot->bit = bit;
    return 0;
}

static PyObject *
Core_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *sw;
    if (!PyArg_ParseTuple(args, "O", &sw))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "SwitchCore() takes no kwargs");
        return NULL;
    }
    if (Direction_LOCAL == NULL) {
        PyObject *topo = PyImport_ImportModule("repro.interconnect.topology");
        if (topo == NULL)
            return NULL;
        PyObject *dir_enum = PyObject_GetAttrString(topo, "Direction");
        Py_DECREF(topo);
        if (dir_enum == NULL)
            return NULL;
        Direction_LOCAL = PyObject_GetAttrString(dir_enum, "LOCAL");
        Py_DECREF(dir_enum);
        if (Direction_LOCAL == NULL)
            return NULL;
    }

    CSwitchCore *self = PyObject_GC_New(CSwitchCore, &CSwitchCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CSwitchCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(sw);
    self->py_switch = sw;

    PyObject *sim = PyObject_GetAttrString(sw, "sim");
    if (sim == NULL)
        goto fail;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        Py_DECREF(sim);
        PyErr_SetString(PyExc_TypeError,
                        "SwitchCore requires a compiled Simulator");
        goto fail;
    }
    self->sim = (CSimulator *)sim;
    Py_INCREF(self->sim->queue);
    self->cqueue = self->sim->queue;

    self->network = PyObject_GetAttrString(sw, "network");
    if (self->network == NULL)
        goto fail;
    PyObject *stats = PyObject_GetAttrString(sw, "stats");
    if (stats == NULL)
        goto fail;
    self->stats_counter = PyObject_GetAttrString(stats, "counter");
    Py_DECREF(stats);
    if (self->stats_counter == NULL)
        goto fail;
    self->count_meth = PyObject_GetAttrString(sw, "count");
    if (self->count_meth == NULL)
        goto fail;

    /* scan slots: switch._scan_slots is [(port, deque, bit), ...] */
    PyObject *slots = PyObject_GetAttrString(sw, "_scan_slots");
    if (slots == NULL || !PyList_Check(slots)) {
        Py_XDECREF(slots);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_scan_slots must be a list");
        goto fail;
    }
    self->nslots = PyList_GET_SIZE(slots);
    if (self->nslots > 64) {
        Py_DECREF(slots);
        PyErr_SetString(PyExc_ValueError,
                        "SwitchCore supports at most 64 scan slots");
        goto fail;
    }
    self->slots = PyMem_Calloc((size_t)(self->nslots ? self->nslots : 1),
                               sizeof(ScanSlot));
    if (self->slots == NULL) {
        Py_DECREF(slots);
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t i = 0; i < self->nslots; i++) {
        PyObject *entry = PyList_GET_ITEM(slots, i);
        PyObject *port = PyTuple_GET_ITEM(entry, 0);
        PyObject *deque = PyTuple_GET_ITEM(entry, 1);
        Py_INCREF(port);
        self->slots[i].port = port;
        Py_INCREF(deque);
        self->slots[i].deque = deque;
        self->slots[i].popleft = PyObject_GetAttr(deque, S.popleft);
        if (self->slots[i].popleft == NULL) {
            Py_DECREF(slots);
            goto fail;
        }
    }
    Py_DECREF(slots);

    /* local injection geometry */
    PyObject *tmp = PyObject_GetAttrString(sw, "_local_shared");
    if (tmp == NULL)
        goto fail;
    self->local_shared = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (self->local_shared < 0)
        goto fail;
    long long lv;
    tmp = PyObject_GetAttrString(sw, "_local_vns");
    if (tmp == NULL)
        goto fail;
    lv = PyLong_AsLongLong(tmp);
    Py_DECREF(tmp);
    if (lv == -1 && PyErr_Occurred())
        goto fail;
    self->local_vns = (long)lv;
    tmp = PyObject_GetAttrString(sw, "_local_vcc");
    if (tmp == NULL)
        goto fail;
    lv = PyLong_AsLongLong(tmp);
    Py_DECREF(tmp);
    if (lv == -1 && PyErr_Occurred())
        goto fail;
    self->local_vcc = (long)lv;

    /* The grid's *actual* shape: 1x1 in the shared (no-VC) design even
     * though virtual_networks keeps the configured count -- channel
     * selection short-circuits to (0, 0) there, so slot indexing with the
     * vn/vc strides only ever touches the slots that exist. */
    PyObject *local_grid = PyObject_GetAttrString(sw, "_local_slot_grid");
    if (local_grid == NULL)
        goto fail;
    Py_ssize_t lrows = PyList_GET_SIZE(local_grid);
    Py_ssize_t lcols = lrows ? PyList_GET_SIZE(PyList_GET_ITEM(local_grid, 0))
                             : 0;
    self->local_nslots = (long)(lrows * lcols);
    self->local_slots = PyMem_Calloc(
        (size_t)(self->local_nslots ? self->local_nslots : 1),
        sizeof(GridSlot));
    if (self->local_slots == NULL) {
        Py_DECREF(local_grid);
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t vn = 0; vn < lrows; vn++) {
        PyObject *row = PyList_GET_ITEM(local_grid, vn);
        for (Py_ssize_t vc = 0; vc < lcols; vc++) {
            /* row entries are (buf, deque, bit) */
            PyObject *entry = PyList_GET_ITEM(row, vc);
            PyObject *buf = PyTuple_GET_ITEM(entry, 0);
            PyObject *bit_obj = PyTuple_GET_ITEM(entry, 2);
            unsigned long long bit = PyLong_AsUnsignedLongLong(bit_obj);
            if (bit == (unsigned long long)-1 && PyErr_Occurred()) {
                Py_DECREF(local_grid);
                goto fail;
            }
            GridSlot *slot = &self->local_slots[vn * lcols + vc];
            if (grid_slot_init(slot, buf, (uint64_t)bit) < 0) {
                Py_DECREF(local_grid);
                goto fail;
            }
        }
    }
    Py_DECREF(local_grid);

    /* routing */
    tmp = PyObject_GetAttrString(sw, "_route_row");
    if (tmp == NULL)
        goto fail;
    if (tmp == Py_None)
        Py_DECREF(tmp);
    else
        self->route_row = tmp;
    self->route_fn = PyObject_GetAttrString(sw, "_route");
    if (self->route_fn == NULL)
        goto fail;
    self->congestion_fn = PyObject_GetAttrString(sw, "_congestion_for");
    if (self->congestion_fn == NULL)
        goto fail;
    self->switch_id_obj = PyObject_GetAttrString(sw, "switch_id");
    if (self->switch_id_obj == NULL)
        goto fail;
    long long ej;
    tmp = PyObject_GetAttrString(sw, "EJECTION_LATENCY");
    if (tmp == NULL)
        goto fail;
    ej = PyLong_AsLongLong(tmp);
    Py_DECREF(tmp);
    if (ej == -1 && PyErr_Occurred())
        goto fail;
    self->ejection_latency = ej;
    self->ejection_delay_obj = PyLong_FromLongLong(ej);
    if (self->ejection_delay_obj == NULL)
        goto fail;
    self->can_eject = PyObject_GetAttrString(sw, "_can_eject");
    if (self->can_eject == NULL)
        goto fail;
    self->deliver = PyObject_GetAttrString(sw, "_deliver");
    if (self->deliver == NULL)
        goto fail;
    self->notify_space = PyObject_GetAttrString(self->network,
                                                "notify_injection_space");
    if (self->notify_space == NULL)
        goto fail;
    self->credit_wake_dict = PyObject_GetAttrString(sw, "_credit_wake");
    if (self->credit_wake_dict == NULL)
        goto fail;

    /* delivery fast path */
    self->endpoints = PyObject_GetAttrString(self->network, "_endpoints");
    if (self->endpoints == NULL)
        goto fail;
    if (!PyDict_Check(self->endpoints)) {
        PyErr_SetString(PyExc_TypeError, "_endpoints must be a dict");
        goto fail;
    }
    self->delivered_counters = PyObject_GetAttrString(self->network,
                                                      "_delivered_counters");
    if (self->delivered_counters == NULL)
        goto fail;
    if (!PyList_Check(self->delivered_counters)) {
        PyErr_SetString(PyExc_TypeError, "_delivered_counters must be a list");
        goto fail;
    }
    self->reordered_counters = PyObject_GetAttrString(self->network,
                                                      "_reordered_counters");
    if (self->reordered_counters == NULL)
        goto fail;
    self->vnet_counter_meth = PyObject_GetAttrString(self->network,
                                                     "_vnet_counter");
    if (self->vnet_counter_meth == NULL)
        goto fail;
    /* ordering-tracker caches for the inlined note_delivery hit path.
     * The _records dict and the two per-vnet dicts are never reassigned
     * (OrderingTracker.reset mutates them in place), so the objects are
     * safe to hold for the core's lifetime. */
    tmp = PyObject_GetAttrString(self->network, "ordering");
    if (tmp == NULL)
        goto fail;
    self->ordering_records = PyObject_GetAttrString(tmp, "_records");
    if (self->ordering_records == NULL ||
        !PyDict_Check(self->ordering_records)) {
        Py_DECREF(tmp);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "ordering._records must be a dict");
        goto fail;
    }
    self->record_meth = PyObject_GetAttrString(tmp, "_record");
    if (self->record_meth == NULL) {
        Py_DECREF(tmp);
        goto fail;
    }
    self->pvnet_delivered = PyObject_GetAttrString(tmp,
                                                   "per_vnet_delivered");
    if (self->pvnet_delivered == NULL || !PyDict_Check(self->pvnet_delivered)) {
        Py_DECREF(tmp);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "per_vnet_delivered must be a dict");
        goto fail;
    }
    self->pvnet_reordered = PyObject_GetAttrString(tmp,
                                                   "per_vnet_reordered");
    Py_DECREF(tmp);
    if (self->pvnet_reordered == NULL || !PyDict_Check(self->pvnet_reordered)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "per_vnet_reordered must be a dict");
        goto fail;
    }
    tmp = PyObject_GetAttrString(self->network, "config");
    if (tmp == NULL)
        goto fail;
    PyObject *no_vc = PyObject_GetAttrString(tmp, "speculative_no_vc");
    Py_DECREF(tmp);
    if (no_vc == NULL)
        goto fail;
    int no_vc_truth = PyObject_IsTrue(no_vc);
    Py_DECREF(no_vc);
    if (no_vc_truth < 0)
        goto fail;
    self->always_eject = !no_vc_truth;

    /* counter names + hot labels */
    PyObject *name = PyObject_GetAttr(sw, S.name);
    if (name == NULL)
        goto fail;
    self->name_injected = PyUnicode_FromFormat("%S.injected", name);
    self->name_ejected = PyUnicode_FromFormat("%S.ejected", name);
    self->name_forwarded = PyUnicode_FromFormat("%S.forwarded", name);
    Py_DECREF(name);
    if (self->name_injected == NULL || self->name_ejected == NULL ||
        self->name_forwarded == NULL)
        goto fail;
    self->lbl_injection_blocked = PyUnicode_InternFromString(
        "injection_blocked");
    self->lbl_ejection_blocked = PyUnicode_InternFromString(
        "ejection_blocked");
    self->lbl_blocked_on_buffer = PyUnicode_InternFromString(
        "blocked_on_buffer");
    self->lbl_squashed = PyUnicode_InternFromString("squashed_in_flight");
    if (self->lbl_injection_blocked == NULL ||
        self->lbl_ejection_blocked == NULL ||
        self->lbl_blocked_on_buffer == NULL || self->lbl_squashed == NULL)
        goto fail;

    /* the static scan event, owned by this core, firing core.scan */
    PyObject *scan_cb = PyObject_GetAttrString((PyObject *)self, "scan");
    if (scan_cb == NULL)
        goto fail;
    PyObject *label = PyObject_GetAttrString(sw, "_scan_label");
    if (label == NULL) {
        Py_DECREF(scan_cb);
        goto fail;
    }
    self->scan_event = event_alloc(0, 0, 0, scan_cb, label);
    Py_DECREF(scan_cb);
    Py_DECREF(label);
    if (self->scan_event == NULL)
        goto fail;
    self->scan_event->is_static = 1;
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

/* bind(): second construction phase, run once every switch has a core. */
static PyObject *
Core_bind(CSwitchCore *self, PyObject *Py_UNUSED(ignored))
{
    if (self->bound)
        Py_RETURN_NONE;
    PyObject *sw = self->py_switch;
    PyObject *out_dict = PyObject_GetAttrString(sw, "_out");
    if (out_dict == NULL)
        return NULL;
    /* count wired directions */
    Py_ssize_t nout = 0, pos = 0;
    PyObject *key, *value;
    while (PyDict_Next(out_dict, &pos, &key, &value))
        if (value != Py_None)
            nout++;
    self->outs = PyMem_Calloc((size_t)(nout ? nout : 1), sizeof(OutPort));
    if (self->outs == NULL) {
        Py_DECREF(out_dict);
        PyErr_NoMemory();
        return NULL;
    }
    pos = 0;
    while (PyDict_Next(out_dict, &pos, &key, &value)) {
        if (value == Py_None)
            continue;
        OutPort *out = &self->outs[self->nout];
        /* (link, downstream, downstream_port, shared, vns, vcc, grid,
         *  cids, fwd_label) */
        PyObject *link = PyTuple_GET_ITEM(value, 0);
        PyObject *downstream = PyTuple_GET_ITEM(value, 1);
        PyObject *down_port = PyTuple_GET_ITEM(value, 2);
        int shared = PyObject_IsTrue(PyTuple_GET_ITEM(value, 3));
        long vns = PyLong_AsLong(PyTuple_GET_ITEM(value, 4));
        long vcc = PyLong_AsLong(PyTuple_GET_ITEM(value, 5));
        PyObject *grid = PyTuple_GET_ITEM(value, 6);
        PyObject *fwd_label = PyTuple_GET_ITEM(value, 8);
        if (shared < 0 || ((vns == -1 || vcc == -1) && PyErr_Occurred()))
            goto fail;
        Py_INCREF(key);
        out->dir = key;
        Py_INCREF(link);
        out->link = link;
        out->ser_cache = PyObject_GetAttrString(link, "_ser_cache");
        if (out->ser_cache == NULL)
            goto fail;
        out->ser_method = PyObject_GetAttrString(link,
                                                 "serialization_cycles");
        if (out->ser_method == NULL)
            goto fail;
        long long lat;
        if (getattr_ll(link, S.latency_cycles_attr, &lat) < 0)
            goto fail;
        out->latency_cycles = lat;
        PyObject *down_core = PyObject_GetAttr(downstream, S.core_attr);
        if (down_core == NULL)
            goto fail;
        if (!Py_IS_TYPE(down_core, &CSwitchCore_Type)) {
            Py_DECREF(down_core);
            PyErr_SetString(PyExc_TypeError,
                            "downstream switch has no compiled core");
            goto fail;
        }
        out->down = (CSwitchCore *)down_core;
        out->shared = shared;
        out->vns = vns;
        out->vcc = vcc;
        Py_INCREF(fwd_label);
        out->fwd_label = fwd_label;
        /* Allocate by the grid's *actual* shape (1x1 in the shared no-VC
         * design even though vns keeps the configured count; selection
         * short-circuits to (0, 0) there). */
        Py_ssize_t g_rows = PyList_GET_SIZE(grid);
        Py_ssize_t g_cols = g_rows ? PyList_GET_SIZE(PyList_GET_ITEM(grid, 0))
                                   : 0;
        out->ndslots = (long)(g_rows * g_cols);
        out->dslots = PyMem_Calloc(
            (size_t)(out->ndslots ? out->ndslots : 1), sizeof(GridSlot));
        if (out->dslots == NULL) {
            PyErr_NoMemory();
            goto fail;
        }
        /* downstream mask bits come from its _slot_grid[port][vn][vc] */
        PyObject *down_grid = PyObject_GetAttrString(downstream,
                                                     "_slot_grid");
        if (down_grid == NULL)
            goto fail;
        PyObject *port_grid = PyObject_GetItem(down_grid, down_port);
        Py_DECREF(down_grid);
        if (port_grid == NULL)
            goto fail;
        for (Py_ssize_t vn = 0; vn < g_rows; vn++) {
            PyObject *buf_row = PyList_GET_ITEM(grid, vn);
            PyObject *slot_row = PyList_GET_ITEM(port_grid, vn);
            for (Py_ssize_t vc = 0; vc < g_cols; vc++) {
                PyObject *buf = PyList_GET_ITEM(buf_row, vc);
                PyObject *slot_entry = PyList_GET_ITEM(slot_row, vc);
                unsigned long long bit = PyLong_AsUnsignedLongLong(
                    PyTuple_GET_ITEM(slot_entry, 2));
                if (bit == (unsigned long long)-1 && PyErr_Occurred()) {
                    Py_DECREF(port_grid);
                    goto fail;
                }
                if (grid_slot_init(&out->dslots[vn * g_cols + vc], buf,
                                   (uint64_t)bit) < 0) {
                    Py_DECREF(port_grid);
                    goto fail;
                }
            }
        }
        Py_DECREF(port_grid);
        self->nout++;
    }
    Py_DECREF(out_dict);

    /* per-slot credit wake targets from _credit_wake[port] */
    for (Py_ssize_t i = 0; i < self->nslots; i++) {
        ScanSlot *slot = &self->slots[i];
        PyObject *upstream = PyObject_GetItem(self->credit_wake_dict,
                                              slot->port);
        if (upstream == NULL)
            return NULL;
        if (upstream == Py_None) {
            slot->credit_local = 1;
            Py_DECREF(upstream);
        }
        else {
            PyObject *up_core = PyObject_GetAttr(upstream, S.core_attr);
            Py_DECREF(upstream);
            if (up_core == NULL)
                return NULL;
            if (!Py_IS_TYPE(up_core, &CSwitchCore_Type)) {
                Py_DECREF(up_core);
                PyErr_SetString(PyExc_TypeError,
                                "upstream switch has no compiled core");
                return NULL;
            }
            slot->credit_up = (CSwitchCore *)up_core;
        }
    }
    self->bound = 1;
    Py_RETURN_NONE;

fail:
    Py_DECREF(out_dict);
    return NULL;
}

/* --------------------------------------------------- SwitchCore: hot path */

/* Channel selection shared by inject (local geometry) and forward
 * (downstream geometry): vn = msg.vnet (mod vns), vc = (src*31+dst) % vcc. */
static int
select_channel(PyObject *message, int shared, long vns, long vcc,
               long *vn_out, long *vc_out)
{
    if (shared) {
        *vn_out = 0;
        *vc_out = 0;
        return 0;
    }
    long long vnet, src, dst;
    if (getattr_ll(message, S.vnet, &vnet) < 0 ||
        getattr_ll(message, S.src, &src) < 0 ||
        getattr_ll(message, S.dst, &dst) < 0)
        return -1;
    long vn = (long)vnet;
    if (vn >= vns)
        vn = vn % vns;
    *vn_out = vn;
    *vc_out = (long)((src * 31 + dst) % vcc);
    return 0;
}

static PyObject *
Core_inject(CSwitchCore *self, PyObject *message)
{
    long vn, vc;
    if (select_channel(message, self->local_shared, self->local_vns,
                       self->local_vcc, &vn, &vc) < 0)
        return NULL;
    GridSlot *slot = &self->local_slots[vn * self->local_vcc + vc];
    long long reserved;
    if (getattr_ll(slot->buf, S.reserved, &reserved) < 0)
        return NULL;
    Py_ssize_t qlen = PyObject_Size(slot->deque);
    if (qlen < 0)
        return NULL;
    if ((long long)qlen + reserved >= slot->capacity) {
        if (core_count(self, self->lbl_injection_blocked) < 0)
            return NULL;
        Py_RETURN_FALSE;
    }
    PyObject *res = PyObject_CallOneArg(slot->append, message);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    if (addattr_ll(slot->buf, S.total_enqueued, 1) < 0)
        return NULL;
    long long occupancy = (long long)qlen + 1 + reserved;
    long long peak;
    if (getattr_ll(slot->buf, S.peak_occupancy, &peak) < 0)
        return NULL;
    if (occupancy > peak &&
        setattr_ll(slot->buf, S.peak_occupancy, occupancy) < 0)
        return NULL;
    self->active_mask |= slot->bit;
    PyObject *counter = core_lazy_counter(self, &self->c_injected,
                                          S.c_injected, self->name_injected);
    if (counter == NULL || counter_add(counter, 1) < 0)
        return NULL;
    if (core_wake_scan_now(self) < 0)
        return NULL;
    Py_RETURN_TRUE;
}

static PyObject *
Core_receive_from_link(CSwitchCore *self, PyObject *const *args,
                       Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *message, *input_port, *channel, *epoch = Py_None;
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (total < 3 || total > 4 || nargs < 3) {
        PyErr_SetString(PyExc_TypeError,
                        "receive_from_link(message, input_port, channel, "
                        "epoch=None)");
        return NULL;
    }
    message = args[0];
    input_port = args[1];
    channel = args[2];
    if (nargs == 4)
        epoch = args[3];
    else if (kwnames && PyTuple_GET_SIZE(kwnames) == 1)
        epoch = args[3];
    if (epoch != Py_None) {
        long long e = PyLong_AsLongLong(epoch);
        if (e == -1 && PyErr_Occurred())
            return NULL;
        long long cur;
        if (getattr_ll(self->network, S.flush_epoch, &cur) < 0)
            return NULL;
        if (e != cur) {
            if (core_count(self, self->lbl_squashed) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
    }
    /* generic slot lookup (thunks bypass this method entirely; it exists
     * for API parity and external callers/tests) */
    PyObject *grid = PyObject_GetAttrString(self->py_switch, "_slot_grid");
    if (grid == NULL)
        return NULL;
    PyObject *port_grid = PyObject_GetItem(grid, input_port);
    Py_DECREF(grid);
    if (port_grid == NULL)
        return NULL;
    PyObject *vn_obj = PyObject_GetAttrString(channel, "virtual_network");
    PyObject *vc_obj = PyObject_GetAttrString(channel, "virtual_channel");
    if (vn_obj == NULL || vc_obj == NULL) {
        Py_XDECREF(vn_obj);
        Py_XDECREF(vc_obj);
        Py_DECREF(port_grid);
        return NULL;
    }
    long vn = PyLong_AsLong(vn_obj);
    long vc = PyLong_AsLong(vc_obj);
    Py_DECREF(vn_obj);
    Py_DECREF(vc_obj);
    if ((vn == -1 || vc == -1) && PyErr_Occurred()) {
        Py_DECREF(port_grid);
        return NULL;
    }
    PyObject *row = PyList_GET_ITEM(port_grid, vn);
    PyObject *entry = PyList_GET_ITEM(row, vc);
    PyObject *buf = PyTuple_GET_ITEM(entry, 0);
    PyObject *deque = PyTuple_GET_ITEM(entry, 1);
    unsigned long long bit = PyLong_AsUnsignedLongLong(
        PyTuple_GET_ITEM(entry, 2));
    if (bit == (unsigned long long)-1 && PyErr_Occurred()) {
        Py_DECREF(port_grid);
        return NULL;
    }
    PyObject *append = PyObject_GetAttr(deque, S.append);
    if (append == NULL) {
        Py_DECREF(port_grid);
        return NULL;
    }
    int rc = core_receive_into_slot(self, message, buf, deque, append,
                                    (uint64_t)bit, 1);
    Py_DECREF(append);
    Py_DECREF(port_grid);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Core_schedule_scan(CSwitchCore *self, PyObject *const *args,
                   Py_ssize_t nargs, PyObject *kwnames)
{
    long long delay = 0;
    if (nargs == 1) {
        delay = PyLong_AsLongLong(args[0]);
        if (delay == -1 && PyErr_Occurred())
            return NULL;
    }
    else if (kwnames && PyTuple_GET_SIZE(kwnames) == 1) {
        delay = PyLong_AsLongLong(args[nargs]);
        if (delay == -1 && PyErr_Occurred())
            return NULL;
    }
    else if (nargs != 0 || (kwnames && PyTuple_GET_SIZE(kwnames))) {
        PyErr_SetString(PyExc_TypeError, "schedule_scan(delay=0)");
        return NULL;
    }
    if (self->scan_scheduled)
        Py_RETURN_NONE;
    self->scan_scheduled = 1;
    if (core_push_scan(self, self->sim->now + delay) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* One forwarding pass -- the port of Switch._scan. */
static PyObject *
Core_scan(CSwitchCore *self, PyObject *Py_UNUSED(ignored))
{
    self->scan_scheduled = 0;
    if (!self->active_mask)
        Py_RETURN_NONE;
    int progressed = 0;
    int have_retry = 0;
    long long retry_at = 0;
    long long now = self->sim->now;
    int pos = 0;
    for (;;) {
        uint64_t rest = self->active_mask >> pos;
        if (!rest)
            break;
        int index = pos + __builtin_ctzll(rest);
        pos = index + 1;
        ScanSlot *slot = &self->slots[index];
        uint64_t bit = (uint64_t)1 << index;
        Py_ssize_t qlen = PyObject_Size(slot->deque);
        if (qlen < 0)
            return NULL;
        if (qlen == 0) {
            self->active_mask &= ~bit;   /* heal a stale bit */
            continue;
        }
        PyObject *message = PySequence_GetItem(slot->deque, 0);
        if (message == NULL)
            return NULL;
        /* route */
        PyObject *direction;
        if (self->route_row != NULL) {
            long long dst;
            if (getattr_ll(message, S.dst, &dst) < 0) {
                Py_DECREF(message);
                return NULL;
            }
            direction = PyList_GET_ITEM(self->route_row, dst);  /* borrowed */
            Py_INCREF(direction);
        }
        else {
            direction = PyObject_CallFunctionObjArgs(
                self->route_fn, self->switch_id_obj, message,
                self->congestion_fn, NULL);
            if (direction == NULL) {
                Py_DECREF(message);
                return NULL;
            }
        }
        if (direction == Direction_LOCAL) {
            Py_DECREF(direction);
            /* can_eject is identically True unless the no-VC design is
             * active; skip the Python call in the common case. */
            if (!self->always_eject) {
                PyObject *ok = PyObject_CallOneArg(self->can_eject,
                                                   self->switch_id_obj);
                if (ok == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                int can = PyObject_IsTrue(ok);
                Py_DECREF(ok);
                if (can < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                if (!can) {
                    if (core_count(self, self->lbl_ejection_blocked) < 0) {
                        Py_DECREF(message);
                        return NULL;
                    }
                    long long wake = now + 16;
                    if (!have_retry || wake < retry_at) {
                        have_retry = 1;
                        retry_at = wake;
                    }
                    Py_DECREF(message);
                    continue;
                }
            }
            PyObject *res = PyObject_CallNoArgs(slot->popleft);
            if (res == NULL) {
                Py_DECREF(message);
                return NULL;
            }
            Py_DECREF(res);
            if (qlen == 1)
                self->active_mask &= ~bit;
            if (addattr_ll(self->py_switch, S.messages_ejected, 1) < 0) {
                Py_DECREF(message);
                return NULL;
            }
            PyObject *counter = core_lazy_counter(self, &self->c_ejected,
                                                  S.c_ejected,
                                                  self->name_ejected);
            if (counter == NULL || counter_add(counter, 1) < 0) {
                Py_DECREF(message);
                return NULL;
            }
            if (core_deliver_local(self, message) < 0) {
                Py_DECREF(message);
                return NULL;
            }
            Py_DECREF(message);
        }
        else {
            /* find the out-port for this direction (identity match; <= 4
             * wired directions, linear scan beats a dict) */
            OutPort *out = NULL;
            for (Py_ssize_t i = 0; i < self->nout; i++) {
                if (self->outs[i].dir == direction) {
                    out = &self->outs[i];
                    break;
                }
            }
            Py_DECREF(direction);
            if (out == NULL) {
                /* degenerate 1-wide geometry: local loopback */
                PyObject *res = PyObject_CallNoArgs(slot->popleft);
                if (res == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_DECREF(res);
                if (qlen == 1)
                    self->active_mask &= ~bit;
                if (core_deliver_local(self, message) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_DECREF(message);
            }
            else {
                long d_vn, d_vc;
                if (select_channel(message, out->shared, out->vns, out->vcc,
                                   &d_vn, &d_vc) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                GridSlot *dslot = &out->dslots[d_vn * out->vcc + d_vc];
                long long d_reserved;
                if (getattr_ll(dslot->buf, S.reserved, &d_reserved) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_ssize_t d_qlen = PyObject_Size(dslot->deque);
                if (d_qlen < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                if ((long long)d_qlen + d_reserved >= dslot->capacity) {
                    if (addattr_ll(self->py_switch, S.blocked_events, 1) < 0
                        || core_count(self,
                                      self->lbl_blocked_on_buffer) < 0) {
                        Py_DECREF(message);
                        return NULL;
                    }
                    Py_DECREF(message);
                    continue;
                }
                long long busy_until;
                if (getattr_ll(out->link, S.busy_until, &busy_until) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                if (now < busy_until) {
                    if (!have_retry || busy_until < retry_at) {
                        have_retry = 1;
                        retry_at = busy_until;
                    }
                    Py_DECREF(message);
                    continue;
                }
                if (setattr_ll(dslot->buf, S.reserved, d_reserved + 1) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                PyObject *res = PyObject_CallNoArgs(slot->popleft);
                if (res == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_DECREF(res);
                if (qlen == 1)
                    self->active_mask &= ~bit;
                /* inline of link.occupy() */
                PyObject *size_obj = PyObject_GetAttr(message, S.size_bytes);
                if (size_obj == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                long long ser;
                PyObject *ser_obj = PyDict_GetItemWithError(out->ser_cache,
                                                            size_obj);
                if (ser_obj != NULL)
                    ser = PyLong_AsLongLong(ser_obj);
                else {
                    if (PyErr_Occurred()) {
                        Py_DECREF(size_obj);
                        Py_DECREF(message);
                        return NULL;
                    }
                    PyObject *computed = PyObject_CallOneArg(out->ser_method,
                                                             size_obj);
                    if (computed == NULL) {
                        Py_DECREF(size_obj);
                        Py_DECREF(message);
                        return NULL;
                    }
                    ser = PyLong_AsLongLong(computed);
                    Py_DECREF(computed);
                }
                if (ser == -1 && PyErr_Occurred()) {
                    Py_DECREF(size_obj);
                    Py_DECREF(message);
                    return NULL;
                }
                long long size = PyLong_AsLongLong(size_obj);
                Py_DECREF(size_obj);
                if (size == -1 && PyErr_Occurred()) {
                    Py_DECREF(message);
                    return NULL;
                }
                long long new_busy = now + ser;
                if (setattr_ll(out->link, S.busy_until, new_busy) < 0 ||
                    addattr_ll(out->link, S.busy_cycles, ser) < 0 ||
                    addattr_ll(out->link, S.messages_carried, 1) < 0 ||
                    addattr_ll(out->link, S.bytes_carried, size) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                long long arrival = new_busy + out->latency_cycles;
                if (addattr_ll(self->py_switch, S.messages_forwarded,
                               1) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                PyObject *counter = core_lazy_counter(self,
                                                      &self->c_forwarded,
                                                      S.c_forwarded,
                                                      self->name_forwarded);
                if (counter == NULL || counter_add(counter, 1) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                /* flush epoch captured at send time, like the lambda's
                 * default argument in the pure tier */
                long long epoch;
                if (getattr_ll(self->network, S.flush_epoch, &epoch) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                CForwardThunk *thunk = PyObject_GC_New(CForwardThunk,
                                                       &CForwardThunk_Type);
                if (thunk == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_INCREF(out->down);
                thunk->down = out->down;
                thunk->message = message;        /* steal our reference */
                Py_INCREF(dslot->buf);
                thunk->buf = dslot->buf;
                Py_INCREF(dslot->deque);
                thunk->deque = dslot->deque;
                Py_INCREF(dslot->append);
                thunk->append = dslot->append;
                thunk->bit = dslot->bit;
                thunk->epoch = epoch;
                PyObject_GC_Track((PyObject *)thunk);
                message = NULL;
                PyObject *ev = queue_push_internal(self->cqueue, arrival, 0,
                                                   (PyObject *)thunk,
                                                   out->fwd_label);
                Py_DECREF(thunk);
                if (ev == NULL)
                    return NULL;
                Py_DECREF(ev);
            }
        }
        /* a head moved: release the credit for its input port */
        progressed = 1;
        if (slot->credit_local) {
            /* Inline of network.notify_injection_space(switch_id) for the
             * common case: the NIC's pending_injection deque is empty, so
             * the whole call reduces to schedule_scan(delay=1) on this
             * switch.  The deque object is stable once the endpoint is
             * attached, so it is resolved lazily and cached. */
            if (!self->local_pending_resolved) {
                PyObject *ep = PyDict_GetItemWithError(
                    self->endpoints, self->switch_id_obj);
                if (ep == NULL && PyErr_Occurred())
                    return NULL;
                if (ep != NULL) {
                    self->local_pending = PyObject_GetAttrString(
                        ep, "pending_injection");
                    if (self->local_pending == NULL)
                        return NULL;
                    self->local_pending_resolved = 1;
                }
            }
            Py_ssize_t npend = -1;
            if (self->local_pending_resolved) {
                npend = PyObject_Size(self->local_pending);
                if (npend < 0)
                    return NULL;
            }
            if (npend == 0) {
                if (!self->scan_scheduled) {
                    self->scan_scheduled = 1;
                    if (core_push_scan(self, now + 1) < 0)
                        return NULL;
                }
            }
            else {
                /* queued messages (or no endpoint yet): full drain path */
                PyObject *res = PyObject_CallOneArg(self->notify_space,
                                                    self->switch_id_obj);
                if (res == NULL)
                    return NULL;
                Py_DECREF(res);
            }
        }
        else if (slot->credit_up != NULL &&
                 !slot->credit_up->scan_scheduled) {
            slot->credit_up->scan_scheduled = 1;
            if (core_push_scan(slot->credit_up, now + 1) < 0)
                return NULL;
        }
    }
    if (progressed) {
        if (!self->scan_scheduled) {
            self->scan_scheduled = 1;
            if (core_push_scan(self, now + 1) < 0)
                return NULL;
        }
    }
    else if (have_retry && retry_at > now) {
        if (!self->scan_scheduled) {
            self->scan_scheduled = 1;
            if (core_push_scan(self, now + (retry_at - now)) < 0)
                return NULL;
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
Core_clear_mask(CSwitchCore *self, PyObject *Py_UNUSED(ignored))
{
    self->active_mask = 0;
    Py_RETURN_NONE;
}

static PyObject *
Core_get_active_mask(CSwitchCore *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->active_mask);
}

static PyObject *
Core_get_scan_scheduled(CSwitchCore *self, void *closure)
{
    return PyBool_FromLong(self->scan_scheduled);
}

static PyObject *
Core_get_scan_event(CSwitchCore *self, void *closure)
{
    Py_INCREF(self->scan_event);
    return (PyObject *)self->scan_event;
}

static PyGetSetDef Core_getset[] = {
    {"active_mask", (getter)Core_get_active_mask, NULL, NULL, NULL},
    {"scan_scheduled", (getter)Core_get_scan_scheduled, NULL, NULL, NULL},
    {"scan_event", (getter)Core_get_scan_event, NULL, NULL, NULL},
    {NULL}
};

static PyMethodDef Core_methods[] = {
    {"bind", (PyCFunction)Core_bind, METH_NOARGS,
     "Resolve cross-switch references (run once all cores exist)."},
    {"inject", (PyCFunction)Core_inject, METH_O,
     "Inject a message from the local endpoint; False when full."},
    {"receive_from_link",
     (PyCFunction)(void (*)(void))Core_receive_from_link,
     METH_FASTCALL | METH_KEYWORDS,
     "A message arrives from an upstream switch into a reserved slot."},
    {"schedule_scan", (PyCFunction)(void (*)(void))Core_schedule_scan,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule a forwarding scan if one is not already pending."},
    {"scan", (PyCFunction)Core_scan, METH_NOARGS,
     "One forwarding pass: try to move every occupied head-of-line."},
    {"clear_mask", (PyCFunction)Core_clear_mask, METH_NOARGS,
     "Reset the occupancy mask (switch drain during system recovery)."},
    {NULL}
};

static PyTypeObject CSwitchCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.SwitchCore",
    .tp_basicsize = sizeof(CSwitchCore),
    .tp_dealloc = (destructor)Core_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled hot path of one interconnect switch.",
    .tp_traverse = (traverseproc)Core_traverse,
    .tp_clear = (inquiry)Core_clear_gc,
    .tp_methods = Core_methods,
    .tp_getset = Core_getset,
    .tp_new = Core_new,
};

/* --------------------------------------------------------- undo-log path */

/* C twin of repro.safetynet.log.UndoRecord: same attribute surface, same
 * equality semantics (field-wise, same-type only), allocated directly by
 * the compiled observer below.  Recovery and occupancy accounting only read
 * the six attributes, so pure and compiled records are interchangeable. */
typedef struct {
    PyObject_HEAD
    long long checkpoint_seq;
    PyObject *target_id;
    PyObject *address;
    PyObject *field;
    PyObject *old_value;
    long long logged_at;
} CUndoRecord;

static PyTypeObject CUndoRecord_Type;

static int
Undo_traverse(CUndoRecord *self, visitproc visit, void *arg)
{
    Py_VISIT(self->target_id);
    Py_VISIT(self->address);
    Py_VISIT(self->field);
    Py_VISIT(self->old_value);
    return 0;
}

static int
Undo_clear_gc(CUndoRecord *self)
{
    Py_CLEAR(self->target_id);
    Py_CLEAR(self->address);
    Py_CLEAR(self->field);
    Py_CLEAR(self->old_value);
    return 0;
}

static void
Undo_dealloc(CUndoRecord *self)
{
    PyObject_GC_UnTrack(self);
    Undo_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
Undo_richcompare(PyObject *a, PyObject *b, int op)
{
    if ((op != Py_EQ && op != Py_NE) ||
        !Py_IS_TYPE(a, &CUndoRecord_Type) ||
        !Py_IS_TYPE(b, &CUndoRecord_Type))
        Py_RETURN_NOTIMPLEMENTED;
    CUndoRecord *x = (CUndoRecord *)a, *y = (CUndoRecord *)b;
    int eq = x->checkpoint_seq == y->checkpoint_seq &&
        x->logged_at == y->logged_at;
    if (eq) {
        int cmp = PyObject_RichCompareBool(x->target_id, y->target_id, Py_EQ);
        if (cmp < 0)
            return NULL;
        eq = cmp;
    }
    if (eq) {
        int cmp = PyObject_RichCompareBool(x->address, y->address, Py_EQ);
        if (cmp < 0)
            return NULL;
        eq = cmp;
    }
    if (eq) {
        int cmp = PyObject_RichCompareBool(x->field, y->field, Py_EQ);
        if (cmp < 0)
            return NULL;
        eq = cmp;
    }
    if (eq) {
        int cmp = PyObject_RichCompareBool(x->old_value, y->old_value, Py_EQ);
        if (cmp < 0)
            return NULL;
        eq = cmp;
    }
    if (op == Py_NE)
        eq = !eq;
    return PyBool_FromLong(eq);
}

static PyObject *
Undo_repr(CUndoRecord *self)
{
    return PyUnicode_FromFormat(
        "UndoRecord(seq=%lld, target=%R, addr=%S, field=%R, old=%R)",
        self->checkpoint_seq, self->target_id, self->address, self->field,
        self->old_value);
}

static PyObject *
Undo_get_seq(CUndoRecord *self, void *c)
{
    return PyLong_FromLongLong(self->checkpoint_seq);
}

static PyObject *
Undo_get_logged_at(CUndoRecord *self, void *c)
{
    return PyLong_FromLongLong(self->logged_at);
}

static PyObject *
Undo_get_member(CUndoRecord *self, void *closure)
{
    PyObject *v = *(PyObject **)((char *)self + (Py_ssize_t)closure);
    Py_INCREF(v);
    return v;
}

static PyGetSetDef Undo_getset[] = {
    {"checkpoint_seq", (getter)Undo_get_seq, NULL, NULL, NULL},
    {"logged_at", (getter)Undo_get_logged_at, NULL, NULL, NULL},
    {"target_id", (getter)Undo_get_member, NULL, NULL,
     (void *)offsetof(CUndoRecord, target_id)},
    {"address", (getter)Undo_get_member, NULL, NULL,
     (void *)offsetof(CUndoRecord, address)},
    {"field", (getter)Undo_get_member, NULL, NULL,
     (void *)offsetof(CUndoRecord, field)},
    {"old_value", (getter)Undo_get_member, NULL, NULL,
     (void *)offsetof(CUndoRecord, old_value)},
    {NULL}
};

static PyTypeObject CUndoRecord_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.UndoRecord",
    .tp_basicsize = sizeof(CUndoRecord),
    .tp_dealloc = (destructor)Undo_dealloc,
    .tp_repr = (reprfunc)Undo_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "One logged state change (compiled tier).",
    .tp_traverse = (traverseproc)Undo_traverse,
    .tp_clear = (inquiry)Undo_clear_gc,
    .tp_richcompare = Undo_richcompare,
    .tp_getset = Undo_getset,
};

/* The change observer returned by SafetyNet.register_store on the compiled
 * tier: one observer per logged store, fired for every logged state change.
 * Builds the undo record and performs CheckpointLogBuffer.append inline
 * against the same Python-visible buffer state (tail cache, occupancy
 * counters), so commit_through / discard_since / records_since work
 * unchanged on the pure buffer object. */
typedef struct {
    PyObject_HEAD
    PyObject *log;              /* CheckpointLogBuffer */
    PyObject *records;          /* log._records dict (never reassigned) */
    PyObject *checkpoints;      /* SafetyNet._checkpoints list */
    PyObject *target_id;
    CSimulator *sim;
    long long capacity_entries;
} CLogObserver;

static PyTypeObject CLogObserver_Type;

static struct {
    PyObject *seq, *tail_seq, *tail, *total_logged, *occupancy,
        *peak_occupancy, *overflow_stalls;
} LS;

static int
LogObs_traverse(CLogObserver *self, visitproc visit, void *arg)
{
    Py_VISIT(self->log);
    Py_VISIT(self->records);
    Py_VISIT(self->checkpoints);
    Py_VISIT(self->target_id);
    Py_VISIT(self->sim);
    return 0;
}

static int
LogObs_clear_gc(CLogObserver *self)
{
    Py_CLEAR(self->log);
    Py_CLEAR(self->records);
    Py_CLEAR(self->checkpoints);
    Py_CLEAR(self->target_id);
    Py_CLEAR(self->sim);
    return 0;
}

static void
LogObs_dealloc(CLogObserver *self)
{
    PyObject_GC_UnTrack(self);
    LogObs_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
LogObs_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *log, *checkpoints, *target_id, *sim;
    if (!PyArg_ParseTuple(args, "OOOO", &log, &checkpoints, &target_id, &sim))
        return NULL;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "LogObserver requires a compiled Simulator");
        return NULL;
    }
    if (!PyList_Check(checkpoints)) {
        PyErr_SetString(PyExc_TypeError, "checkpoints must be a list");
        return NULL;
    }
    PyObject *records = PyObject_GetAttrString(log, "_records");
    if (records == NULL)
        return NULL;
    if (!PyDict_Check(records)) {
        Py_DECREF(records);
        PyErr_SetString(PyExc_TypeError, "log._records must be a dict");
        return NULL;
    }
    long long capacity;
    PyObject *cap_obj = PyObject_GetAttrString(log, "capacity_entries");
    if (cap_obj == NULL) {
        Py_DECREF(records);
        return NULL;
    }
    capacity = PyLong_AsLongLong(cap_obj);
    Py_DECREF(cap_obj);
    if (capacity == -1 && PyErr_Occurred()) {
        Py_DECREF(records);
        return NULL;
    }
    CLogObserver *self = PyObject_GC_New(CLogObserver, &CLogObserver_Type);
    if (self == NULL) {
        Py_DECREF(records);
        return NULL;
    }
    Py_INCREF(log);
    self->log = log;
    self->records = records;
    Py_INCREF(checkpoints);
    self->checkpoints = checkpoints;
    Py_INCREF(target_id);
    self->target_id = target_id;
    Py_INCREF(sim);
    self->sim = (CSimulator *)sim;
    self->capacity_entries = capacity;
    PyObject_GC_Track((PyObject *)self);
    return (PyObject *)self;
}

static PyObject *
LogObs_call(CLogObserver *self, PyObject *args, PyObject *kwds)
{
    PyObject *address, *field, *old_value, *new_value;
    if (!PyArg_UnpackTuple(args, "observer", 4, 4, &address, &field,
                           &old_value, &new_value))
        return NULL;
    (void)new_value;
    Py_ssize_t ncp = PyList_GET_SIZE(self->checkpoints);
    if (ncp == 0) {
        PyErr_SetString(PyExc_IndexError, "no checkpoints");
        return NULL;
    }
    PyObject *cp = PyList_GET_ITEM(self->checkpoints, ncp - 1);
    PyObject *seq_obj = PyObject_GetAttr(cp, LS.seq);
    if (seq_obj == NULL)
        return NULL;
    long long seq = PyLong_AsLongLong(seq_obj);
    if (seq == -1 && PyErr_Occurred()) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    CUndoRecord *rec = PyObject_GC_New(CUndoRecord, &CUndoRecord_Type);
    if (rec == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    rec->checkpoint_seq = seq;
    Py_INCREF(self->target_id);
    rec->target_id = self->target_id;
    Py_INCREF(address);
    rec->address = address;
    Py_INCREF(field);
    rec->field = field;
    Py_INCREF(old_value);
    rec->old_value = old_value;
    rec->logged_at = self->sim->now;
    PyObject_GC_Track((PyObject *)rec);

    /* Inline of CheckpointLogBuffer.append. */
    PyObject *log = self->log;
    PyObject *tail;
    PyObject *tail_seq_obj = PyObject_GetAttr(log, LS.tail_seq);
    if (tail_seq_obj == NULL)
        goto fail;
    int tail_hit = 0;
    if (PyLong_Check(tail_seq_obj)) {
        long long tail_seq = PyLong_AsLongLong(tail_seq_obj);
        if (tail_seq == -1 && PyErr_Occurred()) {
            Py_DECREF(tail_seq_obj);
            goto fail;
        }
        tail_hit = (tail_seq == seq);
    }
    Py_DECREF(tail_seq_obj);
    if (tail_hit) {
        tail = PyObject_GetAttr(log, LS.tail);
        if (tail == NULL)
            goto fail;
    }
    else {
        tail = PyDict_GetItemWithError(self->records, seq_obj);
        if (tail != NULL)
            Py_INCREF(tail);
        else {
            if (PyErr_Occurred())
                goto fail;
            tail = PyList_New(0);
            if (tail == NULL)
                goto fail;
            if (PyDict_SetItem(self->records, seq_obj, tail) < 0) {
                Py_DECREF(tail);
                goto fail;
            }
        }
        if (PyObject_SetAttr(log, LS.tail_seq, seq_obj) < 0 ||
            PyObject_SetAttr(log, LS.tail, tail) < 0) {
            Py_DECREF(tail);
            goto fail;
        }
    }
    Py_DECREF(seq_obj);
    seq_obj = NULL;
    {
        int rc = PyList_Append(tail, (PyObject *)rec);
        Py_DECREF(tail);
        Py_DECREF(rec);
        rec = NULL;
        if (rc < 0)
            return NULL;
    }
    if (addattr_ll(log, LS.total_logged, 1) < 0)
        return NULL;
    long long occupancy;
    if (getattr_ll(log, LS.occupancy, &occupancy) < 0)
        return NULL;
    occupancy += 1;
    if (setattr_ll(log, LS.occupancy, occupancy) < 0)
        return NULL;
    long long peak;
    if (getattr_ll(log, LS.peak_occupancy, &peak) < 0)
        return NULL;
    if (occupancy > peak &&
        setattr_ll(log, LS.peak_occupancy, occupancy) < 0)
        return NULL;
    if (occupancy > self->capacity_entries &&
        addattr_ll(log, LS.overflow_stalls, 1) < 0)
        return NULL;
    Py_RETURN_NONE;

fail:
    Py_XDECREF(seq_obj);
    Py_XDECREF(rec);
    return NULL;
}

static PyTypeObject CLogObserver_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.LogObserver",
    .tp_basicsize = sizeof(CLogObserver),
    .tp_dealloc = (destructor)LogObs_dealloc,
    .tp_call = (ternaryfunc)LogObs_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled change observer: UndoRecord construction + log "
              "append in one call.",
    .tp_traverse = (traverseproc)LogObs_traverse,
    .tp_clear = (inquiry)LogObs_clear_gc,
    .tp_new = LogObs_new,
};

/* ====================================================================== */
/* Protocol-path cores                                                    */
/*                                                                        */
/* Compiled fast paths for the per-reference / per-message protocol hot   */
/* loops: the processor issue loop (ProcessorCore), the protocol message  */
/* send path (MessageSendCore), the directory-node receive dispatch       */
/* (DirectoryReceiveCore) and the snooping bus arbitration (BusCore).     */
/* Like SwitchCore, each is a line-for-line port of the pure method it    */
/* replaces: it reads and writes the same Python attributes at the same   */
/* points, counts through the same lazily created Counters, and defers    */
/* every cold branch to the pure implementation (which stays the single   */
/* source of truth for the semantics).  They are installed by the         */
/* System._install_compiled_fast_paths hooks after wiring is final and    */
/* before any event has run.                                              */

/* Interned attribute names used by the protocol-path cores. */
static struct {
    PyObject *issue_pending, *waiting, *stalled_until, *stream_index,
        *references, *retired_instructions, *store_counter,
        *references_completed, *state, *hits, *store_value_hook,
        *counters_attr, *l1_hits, *gap, *next_send_seq, *send_seq,
        *messages_sent, *injected, *sent_name, *msg_class, *payload,
        *address, *issued_at, *ordered_at, *requests_ordered, *busy,
        *snoopers, *memory_snooper, *ordered_hooks, *requests_issued,
        *arb_label, *snoop_label;
} PS;

/* Attribute -> long long via a C string name (constructor-time only). */
static int
getattrstr_ll(PyObject *obj, const char *name, long long *out)
{
    PyObject *v = PyObject_GetAttrString(obj, name);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Component.count(stat) without the Python frame: hit the _counters dict
 * cache directly, fall back to the bound count() (which creates and caches
 * the Counter with the same lazy semantics as the pure tier). */
static int
comp_count(PyObject *counters_dict, PyObject *count_meth, PyObject *stat)
{
    PyObject *counter = PyDict_GetItemWithError(counters_dict, stat);
    if (counter == NULL) {
        if (PyErr_Occurred())
            return -1;
        PyObject *res = PyObject_CallOneArg(count_meth, stat);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    return counter_add(counter, 1);
}

/* ------------------------------------------------------- ProcessorCore */

/* Compiled BlockingProcessor._issue_next: the per-reference issue/retire
 * loop with the L1 lookup (set addressing + tag check + permission test
 * against the L2 coherence state) inlined.  Stream exhaustion delegates to
 * _finish_stream and an L1 miss to _issue_miss, the shared cold paths
 * split out of the pure method. */
typedef struct {
    PyObject_HEAD
    PyObject *proc;
    CSimulator *sim;            /* strong */
    CEventQueue *cqueue;        /* strong */
    PyObject *name_obj;         /* event label, == proc.name */
    long long node_id;
    long long instr_per_ref;
    long long gap_base, jitter;
    long long l1_hit_cycles;
    PyObject *store_op;         /* MemoryOp.STORE */
    PyObject *invalid_state;    /* protocol INVALID member */
    PyObject *writable;         /* tuple of write-permitting members */
    PyObject *l1_tags;          /* L1 CacheArray (hit accounting) */
    PyObject *l1_sets;          /* l1_tags._sets list */
    long long l1_block, l1_nsets;
    PyObject *l2_sets;          /* l2_array._sets list */
    long long l2_block, l2_nsets;
    PyObject *counters_dict;    /* proc._counters */
    PyObject *count_meth;       /* bound proc.count */
    PyObject *finish_meth;      /* bound proc._finish_stream */
    PyObject *miss_meth;        /* bound proc._issue_miss */
    PyObject *randint_meth;     /* bound rng.buffered_randint, NULL if no jitter */
    PyObject *gap_hi;           /* PyLong(jitter + 1) */
    PyObject *zero_obj;
} CProcCore;

static PyTypeObject CProcCore_Type;

static int
ProcCore_traverse(CProcCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->proc);
    Py_VISIT(self->sim);
    Py_VISIT(self->cqueue);
    Py_VISIT(self->name_obj);
    Py_VISIT(self->store_op);
    Py_VISIT(self->invalid_state);
    Py_VISIT(self->writable);
    Py_VISIT(self->l1_tags);
    Py_VISIT(self->l1_sets);
    Py_VISIT(self->l2_sets);
    Py_VISIT(self->counters_dict);
    Py_VISIT(self->count_meth);
    Py_VISIT(self->finish_meth);
    Py_VISIT(self->miss_meth);
    Py_VISIT(self->randint_meth);
    Py_VISIT(self->gap_hi);
    Py_VISIT(self->zero_obj);
    return 0;
}

static int
ProcCore_clear_gc(CProcCore *self)
{
    Py_CLEAR(self->proc);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->cqueue);
    Py_CLEAR(self->name_obj);
    Py_CLEAR(self->store_op);
    Py_CLEAR(self->invalid_state);
    Py_CLEAR(self->writable);
    Py_CLEAR(self->l1_tags);
    Py_CLEAR(self->l1_sets);
    Py_CLEAR(self->l2_sets);
    Py_CLEAR(self->counters_dict);
    Py_CLEAR(self->count_meth);
    Py_CLEAR(self->finish_meth);
    Py_CLEAR(self->miss_meth);
    Py_CLEAR(self->randint_meth);
    Py_CLEAR(self->gap_hi);
    Py_CLEAR(self->zero_obj);
    return 0;
}

static void
ProcCore_dealloc(CProcCore *self)
{
    PyObject_GC_UnTrack(self);
    ProcCore_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
ProcCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *proc, *l2_array, *store_op, *invalid_state, *writable;
    if (!PyArg_ParseTuple(args, "OOOOO!", &proc, &l2_array, &store_op,
                          &invalid_state, &PyTuple_Type, &writable))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "ProcessorCore() takes no kwargs");
        return NULL;
    }
    CProcCore *self = PyObject_GC_New(CProcCore, &CProcCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CProcCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(proc);
    self->proc = proc;
    Py_INCREF(store_op);
    self->store_op = store_op;
    Py_INCREF(invalid_state);
    self->invalid_state = invalid_state;
    Py_INCREF(writable);
    self->writable = writable;

    PyObject *sim = PyObject_GetAttrString(proc, "sim");
    if (sim == NULL)
        goto fail;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        Py_DECREF(sim);
        PyErr_SetString(PyExc_TypeError,
                        "ProcessorCore requires a compiled Simulator");
        goto fail;
    }
    self->sim = (CSimulator *)sim;
    Py_INCREF(self->sim->queue);
    self->cqueue = self->sim->queue;

    self->name_obj = PyObject_GetAttrString(proc, "name");
    if (self->name_obj == NULL)
        goto fail;
    if (getattrstr_ll(proc, "node_id", &self->node_id) < 0 ||
        getattrstr_ll(proc, "_instructions_per_ref",
                      &self->instr_per_ref) < 0 ||
        getattrstr_ll(proc, "_gap_base", &self->gap_base) < 0 ||
        getattrstr_ll(proc, "_jitter", &self->jitter) < 0)
        goto fail;
    PyObject *pconfig = PyObject_GetAttrString(proc, "pconfig");
    if (pconfig == NULL)
        goto fail;
    int rc = getattrstr_ll(pconfig, "l1_hit_cycles", &self->l1_hit_cycles);
    Py_DECREF(pconfig);
    if (rc < 0)
        goto fail;

    PyObject *l1 = PyObject_GetAttrString(proc, "l1");
    if (l1 == NULL)
        goto fail;
    if (l1 == Py_None) {
        Py_DECREF(l1);
        PyErr_SetString(PyExc_TypeError,
                        "ProcessorCore requires an L1 filter cache");
        goto fail;
    }
    self->l1_tags = PyObject_GetAttrString(l1, "tags");
    Py_DECREF(l1);
    if (self->l1_tags == NULL)
        goto fail;
    self->l1_sets = PyObject_GetAttrString(self->l1_tags, "_sets");
    if (self->l1_sets == NULL || !PyList_Check(self->l1_sets)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_sets must be a list");
        goto fail;
    }
    if (getattrstr_ll(self->l1_tags, "_block_bytes", &self->l1_block) < 0 ||
        getattrstr_ll(self->l1_tags, "_num_sets", &self->l1_nsets) < 0)
        goto fail;
    self->l2_sets = PyObject_GetAttrString(l2_array, "_sets");
    if (self->l2_sets == NULL || !PyList_Check(self->l2_sets)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_sets must be a list");
        goto fail;
    }
    if (getattrstr_ll(l2_array, "_block_bytes", &self->l2_block) < 0 ||
        getattrstr_ll(l2_array, "_num_sets", &self->l2_nsets) < 0)
        goto fail;
    if (self->l1_block <= 0 || self->l1_nsets <= 0 ||
        self->l2_block <= 0 || self->l2_nsets <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "cache geometry must be positive");
        goto fail;
    }

    self->counters_dict = PyObject_GetAttrString(proc, "_counters");
    if (self->counters_dict == NULL || !PyDict_Check(self->counters_dict)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_counters must be a dict");
        goto fail;
    }
    self->count_meth = PyObject_GetAttrString(proc, "count");
    if (self->count_meth == NULL)
        goto fail;
    self->finish_meth = PyObject_GetAttrString(proc, "_finish_stream");
    if (self->finish_meth == NULL)
        goto fail;
    self->miss_meth = PyObject_GetAttrString(proc, "_issue_miss");
    if (self->miss_meth == NULL)
        goto fail;
    if (self->jitter > 0) {
        PyObject *rng = PyObject_GetAttrString(proc, "rng");
        if (rng == NULL)
            goto fail;
        self->randint_meth = PyObject_GetAttrString(rng, "buffered_randint");
        Py_DECREF(rng);
        if (self->randint_meth == NULL)
            goto fail;
        self->gap_hi = PyLong_FromLongLong(self->jitter + 1);
        self->zero_obj = PyLong_FromLong(0);
        if (self->gap_hi == NULL || self->zero_obj == NULL)
            goto fail;
    }
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

/* Mirror of _schedule_issue(delay): collapse duplicate wakeups on the
 * shared _issue_pending flag, then push this core as the callback (after
 * install, proc._issue_next *is* this core, so pure callers that schedule
 * the attribute push the identical callable). */
static int
proc_schedule(CProcCore *self, long long delay)
{
    PyObject *pending = PyObject_GetAttr(self->proc, PS.issue_pending);
    if (pending == NULL)
        return -1;
    int truth = PyObject_IsTrue(pending);
    Py_DECREF(pending);
    if (truth < 0)
        return -1;
    if (truth)
        return 0;
    if (PyObject_SetAttr(self->proc, PS.issue_pending, Py_True) < 0)
        return -1;
    PyObject *ev = queue_push_internal(self->cqueue, self->sim->now + delay,
                                       0, (PyObject *)self, self->name_obj);
    if (ev == NULL)
        return -1;
    Py_DECREF(ev);
    return 0;
}

static PyObject *
ProcCore_call(CProcCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *p = self->proc;
    if (PyObject_SetAttr(p, PS.issue_pending, Py_False) < 0)
        return NULL;
    PyObject *tmp = PyObject_GetAttr(p, PS.waiting);
    if (tmp == NULL)
        return NULL;
    int waiting = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (waiting < 0)
        return NULL;
    if (waiting)
        Py_RETURN_NONE;
    long long now = self->sim->now;
    long long stalled;
    if (getattr_ll(p, PS.stalled_until, &stalled) < 0)
        return NULL;
    if (now < stalled) {
        if (proc_schedule(self, stalled - now) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    PyObject *refs = PyObject_GetAttr(p, PS.references);
    if (refs == NULL)
        return NULL;
    long long idx;
    if (getattr_ll(p, PS.stream_index, &idx) < 0) {
        Py_DECREF(refs);
        return NULL;
    }
    int fast_list = PyList_CheckExact(refs);
    Py_ssize_t n = fast_list ? PyList_GET_SIZE(refs) : PySequence_Size(refs);
    if (n < 0) {
        Py_DECREF(refs);
        return NULL;
    }
    if (idx >= n) {
        Py_DECREF(refs);
        PyObject *now_obj = PyLong_FromLongLong(now);
        if (now_obj == NULL)
            return NULL;
        PyObject *res = PyObject_CallOneArg(self->finish_meth, now_obj);
        Py_DECREF(now_obj);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        Py_RETURN_NONE;
    }
    PyObject *ref;
    if (fast_list) {
        ref = PyList_GET_ITEM(refs, (Py_ssize_t)idx);
        Py_INCREF(ref);
    }
    else {
        ref = PySequence_GetItem(refs, (Py_ssize_t)idx);
    }
    Py_DECREF(refs);
    if (ref == NULL)
        return NULL;
    PyObject *op, *addr_obj;
    if (PyTuple_CheckExact(ref) && PyTuple_GET_SIZE(ref) == 2) {
        op = PyTuple_GET_ITEM(ref, 0);
        Py_INCREF(op);
        addr_obj = PyTuple_GET_ITEM(ref, 1);
        Py_INCREF(addr_obj);
    }
    else {
        op = PySequence_GetItem(ref, 0);
        addr_obj = op ? PySequence_GetItem(ref, 1) : NULL;
        if (addr_obj == NULL) {
            Py_XDECREF(op);
            Py_DECREF(ref);
            return NULL;
        }
    }
    Py_DECREF(ref);
    if (setattr_ll(p, PS.stream_index, idx + 1) < 0 ||
        addattr_ll(p, PS.retired_instructions, self->instr_per_ref) < 0)
        goto fail_opaddr;
    int is_store = (op == self->store_op);
    PyObject *value = Py_None;
    Py_INCREF(value);
    if (is_store) {
        long long sc;
        if (getattr_ll(p, PS.store_counter, &sc) < 0)
            goto fail_all;
        sc += 1;
        if (setattr_ll(p, PS.store_counter, sc) < 0)
            goto fail_all;
        Py_SETREF(value, PyLong_FromLongLong(
            self->node_id * 1000000000LL + sc));
        if (value == NULL)
            goto fail_opaddr;
    }
    long long addr = PyLong_AsLongLong(addr_obj);
    if (addr == -1 && PyErr_Occurred())
        goto fail_all;
    /* L2 coherence state: CacheArray.get_state without the Python frames
     * (peek semantics -- no LRU side effects). */
    PyObject *l2set = PyList_GET_ITEM(
        self->l2_sets, (Py_ssize_t)((addr / self->l2_block) % self->l2_nsets));
    PyObject *line = PyDict_GetItemWithError(l2set, addr_obj);
    if (line == NULL && PyErr_Occurred())
        goto fail_all;
    PyObject *state;
    if (line != NULL) {
        state = PyObject_GetAttr(line, PS.state);
        if (state == NULL)
            goto fail_all;
    }
    else {
        state = self->invalid_state;
        Py_INCREF(state);
    }
    /* L1 lookup: tag presence plus the permission test of L1FilterCache
     * .hit -- identity against the single protocol's members (one system
     * only ever stores its own enum in the L2 array, so the dual-protocol
     * chain of the pure method reduces to these compares). */
    PyObject *l1set = PyList_GET_ITEM(
        self->l1_sets, (Py_ssize_t)((addr / self->l1_block) % self->l1_nsets));
    int present = PyDict_Contains(l1set, addr_obj);
    if (present < 0) {
        Py_DECREF(state);
        goto fail_all;
    }
    int hit = 0;
    if (present) {
        if (!is_store)
            hit = (state != self->invalid_state);
        else {
            Py_ssize_t nw = PyTuple_GET_SIZE(self->writable);
            for (Py_ssize_t i = 0; i < nw; i++) {
                if (state == PyTuple_GET_ITEM(self->writable, i)) {
                    hit = 1;
                    break;
                }
            }
        }
    }
    Py_DECREF(state);
    if (!hit) {
        /* Cold path: the pure _issue_miss performs the miss accounting and
         * the blocking L2 access. */
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->miss_meth, op, addr_obj, value, NULL);
        Py_DECREF(op);
        Py_DECREF(addr_obj);
        Py_DECREF(value);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        Py_RETURN_NONE;
    }
    if (addattr_ll(self->l1_tags, PS.hits, 1) < 0 ||
        comp_count(self->counters_dict, self->count_meth, PS.l1_hits) < 0 ||
        addattr_ll(p, PS.references_completed, 1) < 0)
        goto fail_all;
    if (is_store) {
        /* _write_through: store value lands in the coherent L2 copy. */
        PyObject *hook = PyObject_GetAttr(p, PS.store_value_hook);
        if (hook == NULL)
            goto fail_all;
        if (hook != Py_None && value != Py_None) {
            PyObject *res = PyObject_CallFunctionObjArgs(hook, addr_obj,
                                                         value, NULL);
            Py_DECREF(hook);
            if (res == NULL)
                goto fail_all;
            Py_DECREF(res);
        }
        else
            Py_DECREF(hook);
    }
    Py_DECREF(op);
    Py_DECREF(addr_obj);
    Py_DECREF(value);
    /* _compute_gap_cycles: the buffered "gap" jitter stream. */
    long long extra = 0;
    if (self->jitter > 0) {
        PyObject *r = PyObject_CallFunctionObjArgs(
            self->randint_meth, PS.gap, self->zero_obj, self->gap_hi, NULL);
        if (r == NULL)
            return NULL;
        extra = PyLong_AsLongLong(r);
        Py_DECREF(r);
        if (extra == -1 && PyErr_Occurred())
            return NULL;
    }
    long long gap = self->gap_base + extra;
    if (gap < 1)
        gap = 1;
    if (proc_schedule(self, self->l1_hit_cycles + gap) < 0)
        return NULL;
    Py_RETURN_NONE;

fail_all:
    Py_DECREF(value);
fail_opaddr:
    Py_DECREF(op);
    Py_DECREF(addr_obj);
    return NULL;
}

static PyTypeObject CProcCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.ProcessorCore",
    .tp_basicsize = sizeof(CProcCore),
    .tp_dealloc = (destructor)ProcCore_dealloc,
    .tp_call = (ternaryfunc)ProcCore_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled BlockingProcessor issue loop "
              "(installed as proc._issue_next).",
    .tp_traverse = (traverseproc)ProcCore_traverse,
    .tp_clear = (inquiry)ProcCore_clear_gc,
    .tp_new = ProcCore_new,
};

/* ----------------------------------------------------- MessageSendCore */

/* Compiled protocol send path: the per-node send closure built by
 * DirectorySystem._make_send fused with InterconnectNetwork.send.
 * Message construction still goes through the Python NetworkMessage class
 * (the shared msg_id counter and the vnet precomputation live there); the
 * sequence assignment, accounting and injection drain are inlined.  The
 * pure network.send keeps working on the same shared state and is also
 * the fallback for the unattached-endpoint error path. */
typedef struct {
    PyObject_HEAD
    PyObject *network;
    CSimulator *sim;            /* strong */
    PyObject *src_obj;
    PyObject *message_cls;      /* NetworkMessage */
    PyObject *data_cls, *wb_cls;/* MessageClass.DATA / .WRITEBACK */
    PyObject *data_size, *ctrl_size;
    PyObject *endpoints;        /* network._endpoints dict */
    PyObject *endpoint;         /* our _Endpoint */
    PyObject *pending;          /* endpoint.pending_injection deque */
    PyObject *pending_append, *pending_popleft;
    PyObject *inject;           /* bound switch.inject (core or pure) */
    PyObject *records;          /* ordering._records dict */
    PyObject *record_meth;      /* bound ordering._record */
    PyObject *sent_counters;    /* network._sent_counters list */
    PyObject *vnet_counter_meth;/* bound network._vnet_counter */
    PyObject *fallback_send;    /* bound network.send */
} CSendCore;

static PyTypeObject CSendCore_Type;

static int
SendCore_traverse(CSendCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->network);
    Py_VISIT(self->sim);
    Py_VISIT(self->src_obj);
    Py_VISIT(self->message_cls);
    Py_VISIT(self->data_cls);
    Py_VISIT(self->wb_cls);
    Py_VISIT(self->data_size);
    Py_VISIT(self->ctrl_size);
    Py_VISIT(self->endpoints);
    Py_VISIT(self->endpoint);
    Py_VISIT(self->pending);
    Py_VISIT(self->pending_append);
    Py_VISIT(self->pending_popleft);
    Py_VISIT(self->inject);
    Py_VISIT(self->records);
    Py_VISIT(self->record_meth);
    Py_VISIT(self->sent_counters);
    Py_VISIT(self->vnet_counter_meth);
    Py_VISIT(self->fallback_send);
    return 0;
}

static int
SendCore_clear_gc(CSendCore *self)
{
    Py_CLEAR(self->network);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->src_obj);
    Py_CLEAR(self->message_cls);
    Py_CLEAR(self->data_cls);
    Py_CLEAR(self->wb_cls);
    Py_CLEAR(self->data_size);
    Py_CLEAR(self->ctrl_size);
    Py_CLEAR(self->endpoints);
    Py_CLEAR(self->endpoint);
    Py_CLEAR(self->pending);
    Py_CLEAR(self->pending_append);
    Py_CLEAR(self->pending_popleft);
    Py_CLEAR(self->inject);
    Py_CLEAR(self->records);
    Py_CLEAR(self->record_meth);
    Py_CLEAR(self->sent_counters);
    Py_CLEAR(self->vnet_counter_meth);
    Py_CLEAR(self->fallback_send);
    return 0;
}

static void
SendCore_dealloc(CSendCore *self)
{
    PyObject_GC_UnTrack(self);
    SendCore_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
SendCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *network, *message_cls, *data_cls, *wb_cls;
    long src, data_bytes, ctrl_bytes;
    if (!PyArg_ParseTuple(args, "OlOOOll", &network, &src, &message_cls,
                          &data_cls, &wb_cls, &data_bytes, &ctrl_bytes))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "MessageSendCore() takes no kwargs");
        return NULL;
    }
    CSendCore *self = PyObject_GC_New(CSendCore, &CSendCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CSendCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(network);
    self->network = network;
    Py_INCREF(message_cls);
    self->message_cls = message_cls;
    Py_INCREF(data_cls);
    self->data_cls = data_cls;
    Py_INCREF(wb_cls);
    self->wb_cls = wb_cls;
    self->src_obj = PyLong_FromLong(src);
    self->data_size = PyLong_FromLong(data_bytes);
    self->ctrl_size = PyLong_FromLong(ctrl_bytes);
    if (self->src_obj == NULL || self->data_size == NULL ||
        self->ctrl_size == NULL)
        goto fail;

    PyObject *sim = PyObject_GetAttrString(network, "sim");
    if (sim == NULL)
        goto fail;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        Py_DECREF(sim);
        PyErr_SetString(PyExc_TypeError,
                        "MessageSendCore requires a compiled Simulator");
        goto fail;
    }
    self->sim = (CSimulator *)sim;

    self->endpoints = PyObject_GetAttrString(network, "_endpoints");
    if (self->endpoints == NULL || !PyDict_Check(self->endpoints)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_endpoints must be a dict");
        goto fail;
    }
    PyObject *endpoint = PyDict_GetItemWithError(self->endpoints,
                                                 self->src_obj);
    if (endpoint == NULL) {
        if (!PyErr_Occurred())
            PyErr_Format(PyExc_ValueError,
                         "endpoint %ld is not attached", src);
        goto fail;
    }
    Py_INCREF(endpoint);
    self->endpoint = endpoint;
    self->pending = PyObject_GetAttrString(endpoint, "pending_injection");
    if (self->pending == NULL)
        goto fail;
    self->pending_append = PyObject_GetAttr(self->pending, S.append);
    if (self->pending_append == NULL)
        goto fail;
    self->pending_popleft = PyObject_GetAttr(self->pending, S.popleft);
    if (self->pending_popleft == NULL)
        goto fail;

    PyObject *switches = PyObject_GetAttrString(network, "_switches");
    if (switches == NULL)
        goto fail;
    PyObject *sw = PyObject_GetItem(switches, self->src_obj);
    Py_DECREF(switches);
    if (sw == NULL)
        goto fail;
    self->inject = PyObject_GetAttrString(sw, "inject");
    Py_DECREF(sw);
    if (self->inject == NULL)
        goto fail;

    PyObject *ordering = PyObject_GetAttr(network, S.ordering);
    if (ordering == NULL)
        goto fail;
    self->records = PyObject_GetAttrString(ordering, "_records");
    if (self->records == NULL || !PyDict_Check(self->records)) {
        Py_DECREF(ordering);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_records must be a dict");
        goto fail;
    }
    self->record_meth = PyObject_GetAttrString(ordering, "_record");
    Py_DECREF(ordering);
    if (self->record_meth == NULL)
        goto fail;

    self->sent_counters = PyObject_GetAttrString(network, "_sent_counters");
    if (self->sent_counters == NULL || !PyList_Check(self->sent_counters)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "_sent_counters must be a list");
        goto fail;
    }
    self->vnet_counter_meth = PyObject_GetAttrString(network,
                                                     "_vnet_counter");
    if (self->vnet_counter_meth == NULL)
        goto fail;
    self->fallback_send = PyObject_GetAttrString(network, "send");
    if (self->fallback_send == NULL)
        goto fail;
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

static PyObject *
SendCore_call(CSendCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *dst, *msg_class, *address, *payload;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "send() takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "send", 4, 4, &dst, &msg_class, &address,
                           &payload))
        return NULL;
    PyObject *size = (msg_class == self->data_cls ||
                      msg_class == self->wb_cls) ? self->data_size
                                                 : self->ctrl_size;
    /* Construct first: the shared msg_id counter advances before the
     * endpoint checks, exactly like the pure closure's argument
     * evaluation order. */
    PyObject *cargs[6] = {self->src_obj, dst, msg_class, size, payload,
                          address};
    PyObject *msg = PyObject_Vectorcall(self->message_cls, cargs, 6, NULL);
    if (msg == NULL)
        return NULL;
    int has_dst = PyDict_Contains(self->endpoints, dst);
    if (has_dst < 0) {
        Py_DECREF(msg);
        return NULL;
    }
    if (!has_dst) {
        /* Pure send() raises before any bookkeeping; reproduce its error
         * by delegating. */
        PyObject *res = PyObject_CallOneArg(self->fallback_send, msg);
        Py_DECREF(msg);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        Py_RETURN_NONE;
    }
    /* ordering.assign_send_seq(message) */
    PyObject *vnet = PyObject_GetAttr(msg, S.vnet);
    if (vnet == NULL)
        goto fail_msg;
    PyObject *key = PyTuple_Pack(3, self->src_obj, dst, vnet);
    if (key == NULL)
        goto fail_vnet;
    PyObject *rec = PyDict_GetItemWithError(self->records, key);
    int rec_new = 0;
    if (rec == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(key);
            goto fail_vnet;
        }
        rec = PyObject_CallOneArg(self->record_meth, key);
        if (rec == NULL) {
            Py_DECREF(key);
            goto fail_vnet;
        }
        rec_new = 1;
    }
    Py_DECREF(key);
    long long seq;
    if (getattr_ll(rec, PS.next_send_seq, &seq) < 0 ||
        setattr_ll(msg, PS.send_seq, seq) < 0 ||
        setattr_ll(rec, PS.next_send_seq, seq + 1) < 0) {
        if (rec_new)
            Py_DECREF(rec);
        goto fail_vnet;
    }
    if (rec_new)
        Py_DECREF(rec);
    if (setattr_ll(msg, S.injected_at, self->sim->now) < 0 ||
        addattr_ll(self->network, PS.messages_sent, 1) < 0)
        goto fail_vnet;
    /* Lazy per-vnet sent counter (same idiom as the deliver thunk). */
    Py_ssize_t vn = PyLong_AsSsize_t(vnet);
    if (vn == -1 && PyErr_Occurred())
        goto fail_vnet;
    PyObject *counter = PyList_GetItem(self->sent_counters, vn);
    if (counter == NULL)
        goto fail_vnet;
    if (counter == Py_None) {
        counter = PyObject_CallFunctionObjArgs(
            self->vnet_counter_meth, self->sent_counters, PS.sent_name,
            vnet, NULL);
        if (counter == NULL)
            goto fail_vnet;
        Py_DECREF(counter);     /* the cache list keeps it alive */
        counter = PyList_GetItem(self->sent_counters, vn);
        if (counter == NULL)
            goto fail_vnet;
    }
    if (counter_add(counter, 1) < 0)
        goto fail_vnet;
    Py_DECREF(vnet);
    /* Inline injection drain: injection almost always succeeds at once,
     * in which case the deque is never touched (same observable state as
     * the pure append-then-drain). */
    Py_ssize_t npend = PySequence_Length(self->pending);
    if (npend < 0)
        goto fail_msg;
    if (npend == 0) {
        PyObject *ok = PyObject_CallOneArg(self->inject, msg);
        if (ok == NULL)
            goto fail_msg;
        int succeeded = PyObject_IsTrue(ok);
        Py_DECREF(ok);
        if (succeeded < 0)
            goto fail_msg;
        if (succeeded) {
            if (addattr_ll(self->endpoint, PS.injected, 1) < 0)
                goto fail_msg;
        }
        else {
            PyObject *res = PyObject_CallOneArg(self->pending_append, msg);
            if (res == NULL)
                goto fail_msg;
            Py_DECREF(res);
        }
    }
    else {
        PyObject *res = PyObject_CallOneArg(self->pending_append, msg);
        if (res == NULL)
            goto fail_msg;
        Py_DECREF(res);
        for (;;) {
            Py_ssize_t remaining = PySequence_Length(self->pending);
            if (remaining < 0)
                goto fail_msg;
            if (remaining == 0)
                break;
            PyObject *head = PySequence_GetItem(self->pending, 0);
            if (head == NULL)
                goto fail_msg;
            PyObject *ok = PyObject_CallOneArg(self->inject, head);
            Py_DECREF(head);
            if (ok == NULL)
                goto fail_msg;
            int succeeded = PyObject_IsTrue(ok);
            Py_DECREF(ok);
            if (succeeded < 0)
                goto fail_msg;
            if (!succeeded)
                break;
            PyObject *popped = PyObject_CallNoArgs(self->pending_popleft);
            if (popped == NULL)
                goto fail_msg;
            Py_DECREF(popped);
            if (addattr_ll(self->endpoint, PS.injected, 1) < 0)
                goto fail_msg;
        }
    }
    Py_DECREF(msg);
    Py_RETURN_NONE;

fail_vnet:
    Py_DECREF(vnet);
fail_msg:
    Py_DECREF(msg);
    return NULL;
}

static PyTypeObject CSendCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.MessageSendCore",
    .tp_basicsize = sizeof(CSendCore),
    .tp_dealloc = (destructor)SendCore_dealloc,
    .tp_call = (ternaryfunc)SendCore_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled protocol send path "
              "(installed as a controller's .send).",
    .tp_traverse = (traverseproc)SendCore_traverse,
    .tp_clear = (inquiry)SendCore_clear_gc,
    .tp_new = SendCore_new,
};

/* ------------------------------------------------ DirectoryReceiveCore */

/* Compiled directory-node receive dispatch: the vnet split of
 * DirectorySystem._make_receiver fused with the transition-handler
 * dispatch of both controllers' handle_message.  The handler bodies stay
 * pure Python; anything irregular (missing address, unknown class) falls
 * back to the pure handle_message so asserts and ValueErrors are raised
 * by the one authoritative implementation. */
typedef struct {
    PyObject_HEAD
    PyObject *vnet_request, *vnet_final_ack;
    PyObject *cls_req_ro, *cls_req_rw, *cls_wb, *cls_final;
    PyObject *dir_handle, *cache_handle;    /* bound handle_message */
    PyObject *dir_req, *dir_wb, *dir_final; /* bound directory handlers */
    PyObject *handlers;                     /* cache_ctrl._handlers dict */
} CRecvCore;

static PyTypeObject CRecvCore_Type;

static int
RecvCore_traverse(CRecvCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->vnet_request);
    Py_VISIT(self->vnet_final_ack);
    Py_VISIT(self->cls_req_ro);
    Py_VISIT(self->cls_req_rw);
    Py_VISIT(self->cls_wb);
    Py_VISIT(self->cls_final);
    Py_VISIT(self->dir_handle);
    Py_VISIT(self->cache_handle);
    Py_VISIT(self->dir_req);
    Py_VISIT(self->dir_wb);
    Py_VISIT(self->dir_final);
    Py_VISIT(self->handlers);
    return 0;
}

static int
RecvCore_clear_gc(CRecvCore *self)
{
    Py_CLEAR(self->vnet_request);
    Py_CLEAR(self->vnet_final_ack);
    Py_CLEAR(self->cls_req_ro);
    Py_CLEAR(self->cls_req_rw);
    Py_CLEAR(self->cls_wb);
    Py_CLEAR(self->cls_final);
    Py_CLEAR(self->dir_handle);
    Py_CLEAR(self->cache_handle);
    Py_CLEAR(self->dir_req);
    Py_CLEAR(self->dir_wb);
    Py_CLEAR(self->dir_final);
    Py_CLEAR(self->handlers);
    return 0;
}

static void
RecvCore_dealloc(CRecvCore *self)
{
    PyObject_GC_UnTrack(self);
    RecvCore_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
RecvCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *cache_ctrl, *directory, *vnet_request, *vnet_final_ack;
    PyObject *cls_req_ro, *cls_req_rw, *cls_wb, *cls_final;
    if (!PyArg_ParseTuple(args, "OOOOOOOO", &cache_ctrl, &directory,
                          &vnet_request, &vnet_final_ack, &cls_req_ro,
                          &cls_req_rw, &cls_wb, &cls_final))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError,
                        "DirectoryReceiveCore() takes no kwargs");
        return NULL;
    }
    CRecvCore *self = PyObject_GC_New(CRecvCore, &CRecvCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CRecvCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(vnet_request);
    self->vnet_request = vnet_request;
    Py_INCREF(vnet_final_ack);
    self->vnet_final_ack = vnet_final_ack;
    Py_INCREF(cls_req_ro);
    self->cls_req_ro = cls_req_ro;
    Py_INCREF(cls_req_rw);
    self->cls_req_rw = cls_req_rw;
    Py_INCREF(cls_wb);
    self->cls_wb = cls_wb;
    Py_INCREF(cls_final);
    self->cls_final = cls_final;

    self->dir_handle = PyObject_GetAttrString(directory, "handle_message");
    if (self->dir_handle == NULL)
        goto fail;
    self->cache_handle = PyObject_GetAttrString(cache_ctrl, "handle_message");
    if (self->cache_handle == NULL)
        goto fail;
    self->dir_req = PyObject_GetAttrString(directory, "_handle_request");
    if (self->dir_req == NULL)
        goto fail;
    self->dir_wb = PyObject_GetAttrString(directory, "_handle_writeback");
    if (self->dir_wb == NULL)
        goto fail;
    self->dir_final = PyObject_GetAttrString(directory, "_handle_final_ack");
    if (self->dir_final == NULL)
        goto fail;
    self->handlers = PyObject_GetAttrString(cache_ctrl, "_handlers");
    if (self->handlers == NULL || !PyDict_Check(self->handlers)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_handlers must be a dict");
        goto fail;
    }
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

static PyObject *
RecvCore_call(CRecvCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *message;
    if (!PyArg_UnpackTuple(args, "receive", 1, 1, &message))
        return NULL;
    PyObject *vnet = PyObject_GetAttr(message, S.vnet);
    if (vnet == NULL)
        return NULL;
    int is_dir = (vnet == self->vnet_request ||
                  vnet == self->vnet_final_ack);
    Py_DECREF(vnet);
    PyObject *address = PyObject_GetAttr(message, PS.address);
    if (address == NULL)
        return NULL;
    PyObject *res;
    if (address == Py_None) {
        /* Pure handle_message owns the assertion for this. */
        Py_DECREF(address);
        res = PyObject_CallOneArg(
            is_dir ? self->dir_handle : self->cache_handle, message);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        Py_RETURN_NONE;
    }
    PyObject *msg_class = PyObject_GetAttr(message, PS.msg_class);
    if (msg_class == NULL) {
        Py_DECREF(address);
        return NULL;
    }
    PyObject *payload = PyObject_GetAttr(message, PS.payload);
    if (payload == NULL) {
        Py_DECREF(msg_class);
        Py_DECREF(address);
        return NULL;
    }
    if (is_dir) {
        PyObject *src = PyObject_GetAttr(message, S.src);
        if (src == NULL) {
            res = NULL;
        }
        else {
            if (msg_class == self->cls_req_ro ||
                msg_class == self->cls_req_rw)
                res = PyObject_CallFunctionObjArgs(
                    self->dir_req, address, src, msg_class, payload, NULL);
            else if (msg_class == self->cls_wb)
                res = PyObject_CallFunctionObjArgs(
                    self->dir_wb, address, src, payload, NULL);
            else if (msg_class == self->cls_final)
                res = PyObject_CallFunctionObjArgs(
                    self->dir_final, address, src, NULL);
            else
                /* Unknown class: pure handle_message raises ValueError. */
                res = PyObject_CallOneArg(self->dir_handle, message);
            Py_DECREF(src);
        }
    }
    else {
        PyObject *handler = PyDict_GetItemWithError(self->handlers,
                                                    msg_class);
        if (handler == NULL && PyErr_Occurred())
            res = NULL;
        else if (handler == NULL)
            res = PyObject_CallOneArg(self->cache_handle, message);
        else
            res = PyObject_CallFunctionObjArgs(handler, address, payload,
                                               NULL);
    }
    Py_DECREF(payload);
    Py_DECREF(msg_class);
    Py_DECREF(address);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyTypeObject CRecvCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.DirectoryReceiveCore",
    .tp_basicsize = sizeof(CRecvCore),
    .tp_dealloc = (destructor)RecvCore_dealloc,
    .tp_call = (ternaryfunc)RecvCore_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled directory-node receive dispatch "
              "(installed as endpoint.receive).",
    .tp_traverse = (traverseproc)RecvCore_traverse,
    .tp_clear = (inquiry)RecvCore_clear_gc,
    .tp_new = RecvCore_new,
};

/* ---------------------------------------------------------- BusCore */

/* Compiled snooping address-bus arbitration: issue -> _try_start ->
 * _order_next and the broadcast dispatch, replacing three Python frames
 * and a closure per ordered request.  The request deque, the _busy flag
 * and every counter stay on the Python AddressBus (flush() and the stats
 * reports read them); the arbitration event is a reused static event --
 * legal because the busy flag guarantees at most one is ever pending,
 * and seq numbers are drawn from the same shared queue counter a pure
 * push would use. */
typedef struct CBusCoreT CBusCore;

struct CBusCoreT {
    PyObject_HEAD
    PyObject *bus;
    CSimulator *sim;            /* strong */
    CEventQueue *cqueue;        /* strong */
    PyObject *queue_deque;      /* bus._queue */
    PyObject *q_append, *q_popleft;
    PyObject *counters_dict;    /* bus._counters */
    PyObject *count_meth;       /* bound bus.count */
    long long arbitration_cycles, snoop_latency;
    CEvent *arb_event;          /* strong, static, callback == self */
    int busy;
};

static PyTypeObject CBusCore_Type;
static PyTypeObject CBusSnoopThunk_Type;

/* Per-broadcast thunk: carries the ordered request to the snoop fan-out
 * (replaces the pure `lambda: self._broadcast(request)`). */
typedef struct {
    PyObject_HEAD
    CBusCore *core;             /* strong */
    PyObject *request;          /* strong */
} CBusSnoopThunk;

static int
BusThunk_traverse(CBusSnoopThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->request);
    return 0;
}

static int
BusThunk_clear_gc(CBusSnoopThunk *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->request);
    return 0;
}

static void
BusThunk_dealloc(CBusSnoopThunk *self)
{
    PyObject_GC_UnTrack(self);
    BusThunk_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
BusThunk_call(CBusSnoopThunk *self, PyObject *args, PyObject *kwds)
{
    /* AddressBus._broadcast: snoop every cache, then memory, then the
     * ordered hooks.  The lists are read live off the bus -- attachment
     * may legally happen after install. */
    PyObject *bus = self->core->bus;
    PyObject *request = self->request;
    PyObject *snoopers = PyObject_GetAttr(bus, PS.snoopers);
    if (snoopers == NULL || !PyList_Check(snoopers)) {
        Py_XDECREF(snoopers);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_snoopers must be a list");
        return NULL;
    }
    int owner_found = 0;
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(snoopers); i++) {
        PyObject *snooper = PyList_GET_ITEM(snoopers, i);
        Py_INCREF(snooper);
        PyObject *r = PyObject_CallOneArg(snooper, request);
        Py_DECREF(snooper);
        if (r == NULL) {
            Py_DECREF(snoopers);
            return NULL;
        }
        int truth = PyObject_IsTrue(r);
        Py_DECREF(r);
        if (truth < 0) {
            Py_DECREF(snoopers);
            return NULL;
        }
        owner_found |= truth;
    }
    Py_DECREF(snoopers);
    PyObject *mem = PyObject_GetAttr(bus, PS.memory_snooper);
    if (mem == NULL)
        return NULL;
    if (mem != Py_None) {
        PyObject *r = PyObject_CallFunctionObjArgs(
            mem, request, owner_found ? Py_True : Py_False, NULL);
        if (r == NULL) {
            Py_DECREF(mem);
            return NULL;
        }
        Py_DECREF(r);
    }
    Py_DECREF(mem);
    PyObject *hooks = PyObject_GetAttr(bus, PS.ordered_hooks);
    if (hooks == NULL || !PyList_Check(hooks)) {
        Py_XDECREF(hooks);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_ordered_hooks must be a list");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(hooks); i++) {
        PyObject *hook = PyList_GET_ITEM(hooks, i);
        Py_INCREF(hook);
        PyObject *r = PyObject_CallOneArg(hook, request);
        Py_DECREF(hook);
        if (r == NULL) {
            Py_DECREF(hooks);
            return NULL;
        }
        Py_DECREF(r);
    }
    Py_DECREF(hooks);
    Py_RETURN_NONE;
}

static PyTypeObject CBusSnoopThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._BusSnoopThunk",
    .tp_basicsize = sizeof(CBusSnoopThunk),
    .tp_dealloc = (destructor)BusThunk_dealloc,
    .tp_call = (ternaryfunc)BusThunk_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)BusThunk_traverse,
    .tp_clear = (inquiry)BusThunk_clear_gc,
};

static int
BusCore_traverse(CBusCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->bus);
    Py_VISIT(self->sim);
    Py_VISIT(self->cqueue);
    Py_VISIT(self->queue_deque);
    Py_VISIT(self->q_append);
    Py_VISIT(self->q_popleft);
    Py_VISIT(self->counters_dict);
    Py_VISIT(self->count_meth);
    Py_VISIT(self->arb_event);
    return 0;
}

static int
BusCore_clear_gc(CBusCore *self)
{
    Py_CLEAR(self->bus);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->cqueue);
    Py_CLEAR(self->queue_deque);
    Py_CLEAR(self->q_append);
    Py_CLEAR(self->q_popleft);
    Py_CLEAR(self->counters_dict);
    Py_CLEAR(self->count_meth);
    Py_CLEAR(self->arb_event);
    return 0;
}

static void
BusCore_dealloc(CBusCore *self)
{
    PyObject_GC_UnTrack(self);
    BusCore_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
BusCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *bus;
    if (!PyArg_ParseTuple(args, "O", &bus))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "BusCore() takes no kwargs");
        return NULL;
    }
    CBusCore *self = PyObject_GC_New(CBusCore, &CBusCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CBusCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(bus);
    self->bus = bus;
    PyObject *sim = PyObject_GetAttrString(bus, "sim");
    if (sim == NULL)
        goto fail;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        Py_DECREF(sim);
        PyErr_SetString(PyExc_TypeError,
                        "BusCore requires a compiled Simulator");
        goto fail;
    }
    self->sim = (CSimulator *)sim;
    Py_INCREF(self->sim->queue);
    self->cqueue = self->sim->queue;

    self->queue_deque = PyObject_GetAttr(bus, S.queue_attr);
    if (self->queue_deque == NULL)
        goto fail;
    self->q_append = PyObject_GetAttr(self->queue_deque, S.append);
    if (self->q_append == NULL)
        goto fail;
    self->q_popleft = PyObject_GetAttr(self->queue_deque, S.popleft);
    if (self->q_popleft == NULL)
        goto fail;
    self->counters_dict = PyObject_GetAttrString(bus, "_counters");
    if (self->counters_dict == NULL || !PyDict_Check(self->counters_dict)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_counters must be a dict");
        goto fail;
    }
    self->count_meth = PyObject_GetAttrString(bus, "count");
    if (self->count_meth == NULL)
        goto fail;
    if (getattrstr_ll(bus, "arbitration_cycles",
                      &self->arbitration_cycles) < 0 ||
        getattrstr_ll(bus, "snoop_latency_cycles",
                      &self->snoop_latency) < 0)
        goto fail;
    PyObject *busy = PyObject_GetAttr(bus, PS.busy);
    if (busy == NULL)
        goto fail;
    self->busy = PyObject_IsTrue(busy);
    Py_DECREF(busy);
    if (self->busy < 0)
        goto fail;
    self->arb_event = event_alloc(0, 0, 0, (PyObject *)self, PS.arb_label);
    if (self->arb_event == NULL)
        goto fail;
    self->arb_event->is_static = 1;
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

/* Push the static arbitration event at absolute cycle `time` (mirror of
 * core_push_scan). */
static int
bus_push_arb(CBusCore *self, long long time)
{
    CEventQueue *q = self->cqueue;
    CEvent *ev = self->arb_event;
    long long seq = q->seq++;
    ev->time = time;
    ev->seq = seq;
    ev->cancelled = 0;
    Py_INCREF(q);
    Py_XSETREF(ev->queue, (PyObject *)q);
    HeapEntry entry = {time, ev->priority, seq, ev};
    Py_INCREF(ev);
    if (heap_push_entry(q, entry) < 0)
        return -1;
    q->live++;
    return 0;
}

static int
bus_try_start(CBusCore *self)
{
    if (self->busy)
        return 0;
    Py_ssize_t n = PySequence_Length(self->queue_deque);
    if (n < 0)
        return -1;
    if (n == 0)
        return 0;
    self->busy = 1;
    if (PyObject_SetAttr(self->bus, PS.busy, Py_True) < 0)
        return -1;
    return bus_push_arb(self, self->sim->now + self->arbitration_cycles);
}

/* The static arbitration event fires the core itself: _order_next. */
static PyObject *
BusCore_call(CBusCore *self, PyObject *args, PyObject *kwds)
{
    self->busy = 0;
    if (PyObject_SetAttr(self->bus, PS.busy, Py_False) < 0)
        return NULL;
    Py_ssize_t n = PySequence_Length(self->queue_deque);
    if (n < 0)
        return NULL;
    if (n == 0)
        Py_RETURN_NONE;
    PyObject *request = PyObject_CallNoArgs(self->q_popleft);
    if (request == NULL)
        return NULL;
    if (setattr_ll(request, PS.ordered_at, self->sim->now) < 0 ||
        addattr_ll(self->bus, PS.requests_ordered, 1) < 0 ||
        comp_count(self->counters_dict, self->count_meth,
                   PS.requests_ordered) < 0) {
        Py_DECREF(request);
        return NULL;
    }
    CBusSnoopThunk *thunk = PyObject_GC_New(CBusSnoopThunk,
                                            &CBusSnoopThunk_Type);
    if (thunk == NULL) {
        Py_DECREF(request);
        return NULL;
    }
    Py_INCREF(self);
    thunk->core = self;
    thunk->request = request;           /* reference transferred */
    PyObject_GC_Track((PyObject *)thunk);
    PyObject *ev = queue_push_internal(
        self->cqueue, self->sim->now + self->snoop_latency, 0,
        (PyObject *)thunk, PS.snoop_label);
    Py_DECREF(thunk);
    if (ev == NULL)
        return NULL;
    Py_DECREF(ev);
    /* Keep the pipeline going: next request can arbitrate immediately. */
    if (bus_try_start(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
BusCore_issue(CBusCore *self, PyObject *request)
{
    if (setattr_ll(request, PS.issued_at, self->sim->now) < 0)
        return NULL;
    PyObject *res = PyObject_CallOneArg(self->q_append, request);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    if (comp_count(self->counters_dict, self->count_meth,
                   PS.requests_issued) < 0)
        return NULL;
    if (bus_try_start(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef BusCore_methods[] = {
    {"issue", (PyCFunction)BusCore_issue, METH_O,
     "Queue a request for arbitration (compiled AddressBus.issue)."},
    {NULL}
};

static PyTypeObject CBusCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.BusCore",
    .tp_basicsize = sizeof(CBusCore),
    .tp_dealloc = (destructor)BusCore_dealloc,
    .tp_call = (ternaryfunc)BusCore_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled snooping bus arbitration "
              "(bus.issue is rebound to core.issue).",
    .tp_traverse = (traverseproc)BusCore_traverse,
    .tp_clear = (inquiry)BusCore_clear_gc,
    .tp_methods = BusCore_methods,
    .tp_new = BusCore_new,
};

/* ----------------------------------------------------- TransactionCore */

/* Compiled DirectoryCacheController hot paths: the processor-facing
 * access() (L2 lookup + hit finish + transaction issue) and the DATA/ACK
 * response handlers (install + completion).  Ports of the pure methods in
 * repro.coherence.directory.cache_controller; every cold or rare branch
 * (slow-start retry, full-set install, nack, forwarded requests,
 * writebacks, recovery) stays pure.  Completion runs through the
 * controller's _pending_request/_pending_on_complete attributes, the same
 * protocol the pure _complete_current uses. */

/* Interned attribute names used by the transaction/memory-complete cores. */
static struct {
    PyObject *transaction, *timeout_cycles, *pending_request,
        *pending_on_complete, *data_received, *acks_needed, *acks_received,
        *acks_expected, *completed, *on_complete_attr, *timeout_event,
        *started_at, *txn_id, *op, *tick, *last_used, *misses, *evictions,
        *completed_at, *miss_hist, *mem_hist, *buckets, *count_name, *total,
        *min_name, *max_name, *bucket_width, *cancel, *load_hits,
        *store_hits, *load_misses, *store_misses, *transactions_issued,
        *transactions_completed, *stale_data, *duplicate_data, *stale_acks,
        *memory_references;
} TS;

typedef struct _CTxnCore CTxnCore;

/* Reusable finish thunk: the _finish() closure of the single outstanding
 * reference (blocking processor => at most one in flight per controller). */
typedef struct {
    PyObject_HEAD
    CTxnCore *core;             /* strong (cycle collected via GC) */
    PyObject *request, *cb;     /* armed payload; NULL when idle */
} CTxnFinishThunk;

/* Reusable timeout thunk: the `lambda: self._transaction_timeout(txn)`
 * of the single outstanding transaction. */
typedef struct {
    PyObject_HEAD
    CTxnCore *core;             /* strong */
    PyObject *txn;
} CTxnTimeoutThunk;

struct _CTxnCore {
    PyObject_HEAD
    PyObject *ctrl;
    CSimulator *sim;            /* strong */
    CEventQueue *cqueue;        /* strong */
    PyObject *name_obj;         /* ctrl.name (event label of _finish) */
    PyObject *timeout_label;    /* f"{ctrl.name}.timeout" */
    PyObject *node_obj;         /* PyLong ctrl.node_id */
    long long num_nodes, home_block;
    PyObject *load_op, *store_op;
    PyObject *invalid_state, *shared_state, *modified_state;
    PyObject *cls_req_ro, *cls_req_rw, *cls_final;
    PyObject *payload_cls, *txn_cls, *line_cls;
    PyObject *cache;            /* ctrl.cache (CacheArray) */
    PyObject *l2_sets;          /* cache._sets */
    long long l2_block, l2_nsets, assoc;
    PyObject *observer;         /* cache._observer (Py_None when unset) */
    long long l2_hit_cycles;
    PyObject *l2_hit_obj;
    PyObject *send;             /* ctrl.send (post-rebind MessageSendCore) */
    PyObject *may_issue, *on_retire;
    PyObject *counters_dict, *count_meth;
    PyObject *complete_cb;      /* bound ctrl._complete_current */
    PyObject *pure_issue;       /* bound ctrl._issue_transaction */
    PyObject *retry_meth;       /* bound ctrl._retry_issue */
    PyObject *pure_install;     /* bound ctrl._install_line */
    PyObject *finish_meth;      /* bound ctrl._finish */
    PyObject *timeout_meth;     /* bound ctrl._transaction_timeout */
    PyObject *hist_meth;        /* bound ctrl.stats.histogram */
    PyObject *hist_args;        /* ("l2.miss_latency",) */
    PyObject *hist_kwargs;      /* {"bucket_width": 64} */
    PyObject *zero_obj;
    PyObject *finish_thunk;     /* CTxnFinishThunk */
    PyObject *timeout_thunk;    /* CTxnTimeoutThunk */
};

static PyTypeObject CTxnCore_Type;
static PyTypeObject CTxnFinishThunk_Type;
static PyTypeObject CTxnTimeoutThunk_Type;
static PyTypeObject CMemCore_Type;

/* ------------------------------------------------------- shared helpers */

/* CacheArray._notify: fire the change observer when present and the value
 * actually changed (generic != like the pure method). */
static int
txn_notify(PyObject *observer, PyObject *address, PyObject *field_name,
           PyObject *old, PyObject *new)
{
    if (observer == NULL || observer == Py_None)
        return 0;
    int differs = PyObject_RichCompareBool(old, new, Py_NE);
    if (differs < 0)
        return -1;
    if (!differs)
        return 0;
    PyObject *res = PyObject_CallFunctionObjArgs(observer, address,
                                                 field_name, old, new, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* CacheArray.set_value on a line known to be present. */
static int
txn_set_value(PyObject *observer, PyObject *line, PyObject *address,
              PyObject *value)
{
    PyObject *old = PyObject_GetAttr(line, S.value);
    if (old == NULL)
        return -1;
    if (PyObject_SetAttr(line, S.value, value) < 0) {
        Py_DECREF(old);
        return -1;
    }
    int rc = txn_notify(observer, address, S.value, old, value);
    Py_DECREF(old);
    return rc;
}

/* CacheArray.set_state to a non-Invalid state on a line known present. */
static int
txn_set_state(PyObject *observer, PyObject *line, PyObject *address,
              PyObject *state)
{
    PyObject *old = PyObject_GetAttr(line, PS.state);
    if (old == NULL)
        return -1;
    if (PyObject_SetAttr(line, PS.state, state) < 0) {
        Py_DECREF(old);
        return -1;
    }
    int rc = txn_notify(observer, address, PS.state, old, state);
    Py_DECREF(old);
    return rc;
}

/* Histogram.record(value) without the Python frame. */
static int
hist_record_ll(PyObject *hist, long long value)
{
    long long bw;
    if (getattr_ll(hist, TS.bucket_width, &bw) < 0)
        return -1;
    long long bucket = value / bw;
    if ((value % bw) != 0 && ((value < 0) != (bw < 0)))
        bucket--;
    PyObject *buckets = PyObject_GetAttr(hist, TS.buckets);
    if (buckets == NULL || !PyDict_Check(buckets)) {
        Py_XDECREF(buckets);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "buckets must be a dict");
        return -1;
    }
    PyObject *key = PyLong_FromLongLong(bucket);
    if (key == NULL) {
        Py_DECREF(buckets);
        return -1;
    }
    PyObject *cur = PyDict_GetItemWithError(buckets, key);
    long long n = 0;
    if (cur != NULL) {
        n = PyLong_AsLongLong(cur);
        if (n == -1 && PyErr_Occurred())
            goto fail;
    }
    else if (PyErr_Occurred())
        goto fail;
    PyObject *newcount = PyLong_FromLongLong(n + 1);
    if (newcount == NULL)
        goto fail;
    int rc = PyDict_SetItem(buckets, key, newcount);
    Py_DECREF(newcount);
    if (rc < 0)
        goto fail;
    Py_DECREF(key);
    Py_DECREF(buckets);
    if (addattr_ll(hist, TS.count_name, 1) < 0 ||
        addattr_ll(hist, TS.total, value) < 0)
        return -1;
    PyObject *cur_min = PyObject_GetAttr(hist, TS.min_name);
    if (cur_min == NULL)
        return -1;
    int replace = (cur_min == Py_None);
    if (!replace) {
        long long m = PyLong_AsLongLong(cur_min);
        if (m == -1 && PyErr_Occurred()) {
            Py_DECREF(cur_min);
            return -1;
        }
        replace = value < m;
    }
    Py_DECREF(cur_min);
    if (replace && setattr_ll(hist, TS.min_name, value) < 0)
        return -1;
    PyObject *cur_max = PyObject_GetAttr(hist, TS.max_name);
    if (cur_max == NULL)
        return -1;
    replace = (cur_max == Py_None);
    if (!replace) {
        long long m = PyLong_AsLongLong(cur_max);
        if (m == -1 && PyErr_Occurred()) {
            Py_DECREF(cur_max);
            return -1;
        }
        replace = value > m;
    }
    Py_DECREF(cur_max);
    if (replace && setattr_ll(hist, TS.max_name, value) < 0)
        return -1;
    return 0;

fail:
    Py_DECREF(key);
    Py_DECREF(buckets);
    return -1;
}

/* ------------------------------------------------------- finish thunk */

static int
TxnFinish_traverse(CTxnFinishThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->request);
    Py_VISIT(self->cb);
    return 0;
}

static int
TxnFinish_clear_gc(CTxnFinishThunk *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->request);
    Py_CLEAR(self->cb);
    return 0;
}

static void
TxnFinish_dealloc(CTxnFinishThunk *self)
{
    PyObject_GC_UnTrack(self);
    TxnFinish_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
TxnFinish_call(CTxnFinishThunk *self, PyObject *args, PyObject *kwds)
{
    /* _finish._done: stamp completion time, then hand the request back. */
    PyObject *request = self->request;
    PyObject *cb = self->cb;
    self->request = NULL;
    self->cb = NULL;
    if (request == NULL || cb == NULL) {
        Py_XDECREF(request);
        Py_XDECREF(cb);
        PyErr_SetString(PyExc_RuntimeError, "finish thunk fired while idle");
        return NULL;
    }
    if (setattr_ll(request, TS.completed_at, self->core->sim->now) < 0) {
        Py_DECREF(request);
        Py_DECREF(cb);
        return NULL;
    }
    PyObject *res = PyObject_CallOneArg(cb, request);
    Py_DECREF(request);
    Py_DECREF(cb);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyTypeObject CTxnFinishThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._TxnFinishThunk",
    .tp_basicsize = sizeof(CTxnFinishThunk),
    .tp_dealloc = (destructor)TxnFinish_dealloc,
    .tp_call = (ternaryfunc)TxnFinish_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)TxnFinish_traverse,
    .tp_clear = (inquiry)TxnFinish_clear_gc,
};

/* ------------------------------------------------------ timeout thunk */

static int
TxnTimeout_traverse(CTxnTimeoutThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->txn);
    return 0;
}

static int
TxnTimeout_clear_gc(CTxnTimeoutThunk *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->txn);
    return 0;
}

static void
TxnTimeout_dealloc(CTxnTimeoutThunk *self)
{
    PyObject_GC_UnTrack(self);
    TxnTimeout_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
TxnTimeout_call(CTxnTimeoutThunk *self, PyObject *args, PyObject *kwds)
{
    PyObject *txn = self->txn;
    self->txn = NULL;
    if (txn == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "timeout thunk fired while idle");
        return NULL;
    }
    PyObject *res = PyObject_CallOneArg(self->core->timeout_meth, txn);
    Py_DECREF(txn);
    return res;
}

static PyTypeObject CTxnTimeoutThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._TxnTimeoutThunk",
    .tp_basicsize = sizeof(CTxnTimeoutThunk),
    .tp_dealloc = (destructor)TxnTimeout_dealloc,
    .tp_call = (ternaryfunc)TxnTimeout_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)TxnTimeout_traverse,
    .tp_clear = (inquiry)TxnTimeout_clear_gc,
};

/* ---------------------------------------------------------- core type */

static int
TxnCore_traverse(CTxnCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->ctrl);
    Py_VISIT(self->sim);
    Py_VISIT(self->cqueue);
    Py_VISIT(self->name_obj);
    Py_VISIT(self->timeout_label);
    Py_VISIT(self->node_obj);
    Py_VISIT(self->load_op);
    Py_VISIT(self->store_op);
    Py_VISIT(self->invalid_state);
    Py_VISIT(self->shared_state);
    Py_VISIT(self->modified_state);
    Py_VISIT(self->cls_req_ro);
    Py_VISIT(self->cls_req_rw);
    Py_VISIT(self->cls_final);
    Py_VISIT(self->payload_cls);
    Py_VISIT(self->txn_cls);
    Py_VISIT(self->line_cls);
    Py_VISIT(self->cache);
    Py_VISIT(self->l2_sets);
    Py_VISIT(self->observer);
    Py_VISIT(self->l2_hit_obj);
    Py_VISIT(self->send);
    Py_VISIT(self->may_issue);
    Py_VISIT(self->on_retire);
    Py_VISIT(self->counters_dict);
    Py_VISIT(self->count_meth);
    Py_VISIT(self->complete_cb);
    Py_VISIT(self->pure_issue);
    Py_VISIT(self->retry_meth);
    Py_VISIT(self->pure_install);
    Py_VISIT(self->finish_meth);
    Py_VISIT(self->timeout_meth);
    Py_VISIT(self->hist_meth);
    Py_VISIT(self->hist_args);
    Py_VISIT(self->hist_kwargs);
    Py_VISIT(self->zero_obj);
    Py_VISIT(self->finish_thunk);
    Py_VISIT(self->timeout_thunk);
    return 0;
}

static int
TxnCore_clear_gc(CTxnCore *self)
{
    Py_CLEAR(self->ctrl);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->cqueue);
    Py_CLEAR(self->name_obj);
    Py_CLEAR(self->timeout_label);
    Py_CLEAR(self->node_obj);
    Py_CLEAR(self->load_op);
    Py_CLEAR(self->store_op);
    Py_CLEAR(self->invalid_state);
    Py_CLEAR(self->shared_state);
    Py_CLEAR(self->modified_state);
    Py_CLEAR(self->cls_req_ro);
    Py_CLEAR(self->cls_req_rw);
    Py_CLEAR(self->cls_final);
    Py_CLEAR(self->payload_cls);
    Py_CLEAR(self->txn_cls);
    Py_CLEAR(self->line_cls);
    Py_CLEAR(self->cache);
    Py_CLEAR(self->l2_sets);
    Py_CLEAR(self->observer);
    Py_CLEAR(self->l2_hit_obj);
    Py_CLEAR(self->send);
    Py_CLEAR(self->may_issue);
    Py_CLEAR(self->on_retire);
    Py_CLEAR(self->counters_dict);
    Py_CLEAR(self->count_meth);
    Py_CLEAR(self->complete_cb);
    Py_CLEAR(self->pure_issue);
    Py_CLEAR(self->retry_meth);
    Py_CLEAR(self->pure_install);
    Py_CLEAR(self->finish_meth);
    Py_CLEAR(self->timeout_meth);
    Py_CLEAR(self->hist_meth);
    Py_CLEAR(self->hist_args);
    Py_CLEAR(self->hist_kwargs);
    Py_CLEAR(self->zero_obj);
    Py_CLEAR(self->finish_thunk);
    Py_CLEAR(self->timeout_thunk);
    return 0;
}

static void
TxnCore_dealloc(CTxnCore *self)
{
    PyObject_GC_UnTrack(self);
    TxnCore_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
TxnCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *ctrl, *load_op, *store_op, *invalid_state, *shared_state,
        *modified_state, *cls_req_ro, *cls_req_rw, *cls_final,
        *payload_cls, *txn_cls, *line_cls;
    long long num_nodes, home_block;
    if (!PyArg_ParseTuple(args, "OLLOOOOOOOOOOO", &ctrl, &num_nodes,
                          &home_block, &load_op, &store_op, &invalid_state,
                          &shared_state, &modified_state, &cls_req_ro,
                          &cls_req_rw, &cls_final, &payload_cls, &txn_cls,
                          &line_cls))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "TransactionCore() takes no kwargs");
        return NULL;
    }
    if (num_nodes <= 0 || home_block <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "node count and block size must be positive");
        return NULL;
    }
    CTxnCore *self = PyObject_GC_New(CTxnCore, &CTxnCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CTxnCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(ctrl);
    self->ctrl = ctrl;
    self->num_nodes = num_nodes;
    self->home_block = home_block;
    Py_INCREF(load_op);
    self->load_op = load_op;
    Py_INCREF(store_op);
    self->store_op = store_op;
    Py_INCREF(invalid_state);
    self->invalid_state = invalid_state;
    Py_INCREF(shared_state);
    self->shared_state = shared_state;
    Py_INCREF(modified_state);
    self->modified_state = modified_state;
    Py_INCREF(cls_req_ro);
    self->cls_req_ro = cls_req_ro;
    Py_INCREF(cls_req_rw);
    self->cls_req_rw = cls_req_rw;
    Py_INCREF(cls_final);
    self->cls_final = cls_final;
    Py_INCREF(payload_cls);
    self->payload_cls = payload_cls;
    Py_INCREF(txn_cls);
    self->txn_cls = txn_cls;
    Py_INCREF(line_cls);
    self->line_cls = line_cls;

    PyObject *sim = PyObject_GetAttrString(ctrl, "sim");
    if (sim == NULL)
        goto fail;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        Py_DECREF(sim);
        PyErr_SetString(PyExc_TypeError,
                        "TransactionCore requires a compiled Simulator");
        goto fail;
    }
    self->sim = (CSimulator *)sim;
    Py_INCREF(self->sim->queue);
    self->cqueue = self->sim->queue;

    self->name_obj = PyObject_GetAttrString(ctrl, "name");
    if (self->name_obj == NULL)
        goto fail;
    self->timeout_label = PyUnicode_FromFormat("%U.timeout", self->name_obj);
    if (self->timeout_label == NULL)
        goto fail;
    PyUnicode_InternInPlace(&self->timeout_label);
    self->node_obj = PyObject_GetAttrString(ctrl, "node_id");
    if (self->node_obj == NULL)
        goto fail;

    self->cache = PyObject_GetAttrString(ctrl, "cache");
    if (self->cache == NULL)
        goto fail;
    self->l2_sets = PyObject_GetAttrString(self->cache, "_sets");
    if (self->l2_sets == NULL || !PyList_Check(self->l2_sets)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_sets must be a list");
        goto fail;
    }
    if (getattrstr_ll(self->cache, "_block_bytes", &self->l2_block) < 0 ||
        getattrstr_ll(self->cache, "_num_sets", &self->l2_nsets) < 0)
        goto fail;
    if (self->l2_block <= 0 || self->l2_nsets <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "cache geometry must be positive");
        goto fail;
    }
    self->observer = PyObject_GetAttrString(self->cache, "_observer");
    if (self->observer == NULL)
        goto fail;

    PyObject *config = PyObject_GetAttrString(ctrl, "config");
    if (config == NULL)
        goto fail;
    PyObject *l2cfg = PyObject_GetAttrString(config, "l2");
    if (l2cfg == NULL) {
        Py_DECREF(config);
        goto fail;
    }
    int rc = getattrstr_ll(l2cfg, "associativity", &self->assoc);
    Py_DECREF(l2cfg);
    if (rc < 0) {
        Py_DECREF(config);
        goto fail;
    }
    PyObject *pcfg = PyObject_GetAttrString(config, "processor");
    Py_DECREF(config);
    if (pcfg == NULL)
        goto fail;
    rc = getattrstr_ll(pcfg, "l2_hit_cycles", &self->l2_hit_cycles);
    Py_DECREF(pcfg);
    if (rc < 0)
        goto fail;
    self->l2_hit_obj = PyLong_FromLongLong(self->l2_hit_cycles);
    if (self->l2_hit_obj == NULL)
        goto fail;

    self->send = PyObject_GetAttrString(ctrl, "send");
    if (self->send == NULL)
        goto fail;
    self->may_issue = PyObject_GetAttrString(ctrl, "may_issue");
    if (self->may_issue == NULL)
        goto fail;
    self->on_retire = PyObject_GetAttrString(ctrl, "on_retire");
    if (self->on_retire == NULL)
        goto fail;
    self->counters_dict = PyObject_GetAttrString(ctrl, "_counters");
    if (self->counters_dict == NULL || !PyDict_Check(self->counters_dict)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_counters must be a dict");
        goto fail;
    }
    self->count_meth = PyObject_GetAttrString(ctrl, "count");
    if (self->count_meth == NULL)
        goto fail;
    self->complete_cb = PyObject_GetAttrString(ctrl, "_complete_current");
    if (self->complete_cb == NULL)
        goto fail;
    self->pure_issue = PyObject_GetAttrString(ctrl, "_issue_transaction");
    if (self->pure_issue == NULL)
        goto fail;
    self->retry_meth = PyObject_GetAttrString(ctrl, "_retry_issue");
    if (self->retry_meth == NULL)
        goto fail;
    self->pure_install = PyObject_GetAttrString(ctrl, "_install_line");
    if (self->pure_install == NULL)
        goto fail;
    self->finish_meth = PyObject_GetAttrString(ctrl, "_finish");
    if (self->finish_meth == NULL)
        goto fail;
    self->timeout_meth = PyObject_GetAttrString(ctrl, "_transaction_timeout");
    if (self->timeout_meth == NULL)
        goto fail;

    PyObject *stats = PyObject_GetAttrString(ctrl, "stats");
    if (stats == NULL)
        goto fail;
    self->hist_meth = PyObject_GetAttrString(stats, "histogram");
    Py_DECREF(stats);
    if (self->hist_meth == NULL)
        goto fail;
    self->hist_args = Py_BuildValue("(s)", "l2.miss_latency");
    if (self->hist_args == NULL)
        goto fail;
    self->hist_kwargs = Py_BuildValue("{s:i}", "bucket_width", 64);
    if (self->hist_kwargs == NULL)
        goto fail;
    self->zero_obj = PyLong_FromLong(0);
    if (self->zero_obj == NULL)
        goto fail;

    CTxnFinishThunk *ft = PyObject_GC_New(CTxnFinishThunk,
                                          &CTxnFinishThunk_Type);
    if (ft == NULL)
        goto fail;
    ft->request = NULL;
    ft->cb = NULL;
    Py_INCREF(self);
    ft->core = self;
    PyObject_GC_Track((PyObject *)ft);
    self->finish_thunk = (PyObject *)ft;

    CTxnTimeoutThunk *tt = PyObject_GC_New(CTxnTimeoutThunk,
                                           &CTxnTimeoutThunk_Type);
    if (tt == NULL)
        goto fail;
    tt->txn = NULL;
    Py_INCREF(self);
    tt->core = self;
    PyObject_GC_Track((PyObject *)tt);
    self->timeout_thunk = (PyObject *)tt;
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

/* _finish(request, on_complete, l2_hit_cycles): arm the reusable thunk
 * (fall back to the pure method if it is somehow busy). */
static int
txn_finish_schedule(CTxnCore *self, PyObject *request, PyObject *on_complete)
{
    CTxnFinishThunk *ft = (CTxnFinishThunk *)self->finish_thunk;
    if (ft->request != NULL) {
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->finish_meth, request, on_complete, self->l2_hit_obj, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    Py_INCREF(request);
    ft->request = request;
    Py_INCREF(on_complete);
    ft->cb = on_complete;
    PyObject *ev = queue_push_internal(self->cqueue,
                                       self->sim->now + self->l2_hit_cycles,
                                       0, (PyObject *)ft, self->name_obj);
    if (ev == NULL)
        return -1;
    Py_DECREF(ev);
    return 0;
}

/* _issue_transaction fast path.  Caller guarantees ctrl.transaction is
 * None (it routes to the pure method otherwise, which raises). */
static int
txn_issue(CTxnCore *self, PyObject *request, PyObject *on_complete,
          PyObject *addr_obj, long long addr, int is_load)
{
    PyObject *gate = PyObject_CallOneArg(self->may_issue, self->node_obj);
    if (gate == NULL)
        return -1;
    int allowed = PyObject_IsTrue(gate);
    Py_DECREF(gate);
    if (allowed < 0)
        return -1;
    if (!allowed) {
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->retry_meth, request, on_complete, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    PyObject *now_obj = PyLong_FromLongLong(self->sim->now);
    if (now_obj == NULL)
        return -1;
    PyObject *op = PyObject_GetAttr(request, TS.op);
    if (op == NULL) {
        Py_DECREF(now_obj);
        return -1;
    }
    PyObject *txn = PyObject_CallFunctionObjArgs(
        self->txn_cls, self->node_obj, addr_obj, op, now_obj, NULL);
    Py_DECREF(op);
    Py_DECREF(now_obj);
    if (txn == NULL)
        return -1;
    if (PyObject_SetAttr(self->ctrl, TS.pending_request, request) < 0 ||
        PyObject_SetAttr(self->ctrl, TS.pending_on_complete,
                         on_complete) < 0 ||
        PyObject_SetAttr(txn, TS.on_complete_attr, self->complete_cb) < 0 ||
        PyObject_SetAttr(self->ctrl, TS.transaction, txn) < 0)
        goto fail;

    PyObject *tc = PyObject_GetAttr(self->ctrl, TS.timeout_cycles);
    if (tc == NULL)
        goto fail;
    if (tc != Py_None) {
        long long cycles = PyLong_AsLongLong(tc);
        Py_DECREF(tc);
        if (cycles == -1 && PyErr_Occurred())
            goto fail;
        CTxnTimeoutThunk *tt = (CTxnTimeoutThunk *)self->timeout_thunk;
        Py_INCREF(txn);
        Py_XSETREF(tt->txn, txn);
        PyObject *ev = queue_push_internal(self->cqueue,
                                           self->sim->now + cycles, 0,
                                           (PyObject *)tt,
                                           self->timeout_label);
        if (ev == NULL)
            goto fail;
        int rc = PyObject_SetAttr(txn, TS.timeout_event, ev);
        Py_DECREF(ev);
        if (rc < 0)
            goto fail;
    }
    else
        Py_DECREF(tc);

    PyObject *txn_id = PyObject_GetAttr(txn, TS.txn_id);
    if (txn_id == NULL)
        goto fail;
    PyObject *payload = PyObject_CallFunctionObjArgs(
        self->payload_cls, self->node_obj, self->zero_obj, Py_None,
        txn_id, NULL);
    Py_DECREF(txn_id);
    if (payload == NULL)
        goto fail;
    PyObject *home = PyLong_FromLongLong(
        (addr / self->home_block) % self->num_nodes);
    if (home == NULL) {
        Py_DECREF(payload);
        goto fail;
    }
    PyObject *res = PyObject_CallFunctionObjArgs(
        self->send, home, is_load ? self->cls_req_ro : self->cls_req_rw,
        addr_obj, payload, NULL);
    Py_DECREF(home);
    Py_DECREF(payload);
    if (res == NULL)
        goto fail;
    Py_DECREF(res);
    if (comp_count(self->counters_dict, self->count_meth,
                   TS.transactions_issued) < 0)
        goto fail;
    Py_DECREF(txn);
    return 0;

fail:
    Py_DECREF(txn);
    return -1;
}

/* _install_line fast path: upgrade-in-place and fresh-allocate into a
 * non-full set; the full-set case (victim choice + eviction + retry)
 * falls back to the pure method. */
static int
txn_install_line(CTxnCore *self, PyObject *txn, PyObject *value,
                 PyObject *addr_obj, long long addr)
{
    PyObject *op = PyObject_GetAttr(txn, TS.op);
    if (op == NULL)
        return -1;
    PyObject *target = (op == self->load_op) ? self->shared_state
                                             : self->modified_state;
    Py_DECREF(op);
    PyObject *set = PyList_GET_ITEM(
        self->l2_sets, (Py_ssize_t)((addr / self->l2_block) % self->l2_nsets));
    PyObject *existing = PyDict_GetItemWithError(set, addr_obj);
    if (existing == NULL && PyErr_Occurred())
        return -1;
    if (existing != NULL) {
        if (txn_set_state(self->observer, existing, addr_obj, target) < 0)
            return -1;
        if (value != Py_None &&
            txn_set_value(self->observer, existing, addr_obj, value) < 0)
            return -1;
        return 0;
    }
    if (PyDict_GET_SIZE(set) >= (Py_ssize_t)self->assoc) {
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->pure_install, txn, value, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    PyObject *install_value = (value != Py_None) ? value : self->zero_obj;
    long long tick;
    if (getattr_ll(self->cache, TS.tick, &tick) < 0)
        return -1;
    tick += 1;
    if (setattr_ll(self->cache, TS.tick, tick) < 0)
        return -1;
    PyObject *tick_obj = PyLong_FromLongLong(tick);
    if (tick_obj == NULL)
        return -1;
    PyObject *line = PyObject_CallFunctionObjArgs(
        self->line_cls, addr_obj, target, install_value, tick_obj, NULL);
    Py_DECREF(tick_obj);
    if (line == NULL)
        return -1;
    int rc = PyDict_SetItem(set, addr_obj, line);
    Py_DECREF(line);
    if (rc < 0)
        return -1;
    if (txn_notify(self->observer, addr_obj, PS.state, self->invalid_state,
                   target) < 0)
        return -1;
    /* allocate() only notifies the value when one was supplied; the pure
     * _install_line always supplies one (0 when the payload carried None). */
    return txn_notify(self->observer, addr_obj, S.value, Py_None,
                      install_value);
}

/* _transaction_done for the controller's single outstanding transaction
 * (inlined _complete_current). */
static int
txn_done(CTxnCore *self, PyObject *txn)
{
    if (PyObject_SetAttr(self->ctrl, TS.transaction, Py_None) < 0)
        return -1;
    PyObject *res = PyObject_CallOneArg(self->on_retire, self->node_obj);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    PyObject *taddr_obj = PyObject_GetAttr(txn, PS.address);
    if (taddr_obj == NULL)
        return -1;
    long long taddr = PyLong_AsLongLong(taddr_obj);
    if (taddr == -1 && PyErr_Occurred())
        goto fail_addr;
    PyObject *txn_id = PyObject_GetAttr(txn, TS.txn_id);
    if (txn_id == NULL)
        goto fail_addr;
    PyObject *payload = PyObject_CallFunctionObjArgs(
        self->payload_cls, self->node_obj, self->zero_obj, Py_None,
        txn_id, NULL);
    Py_DECREF(txn_id);
    if (payload == NULL)
        goto fail_addr;
    PyObject *home = PyLong_FromLongLong(
        (taddr / self->home_block) % self->num_nodes);
    if (home == NULL) {
        Py_DECREF(payload);
        goto fail_addr;
    }
    res = PyObject_CallFunctionObjArgs(self->send, home, self->cls_final,
                                       taddr_obj, payload, NULL);
    Py_DECREF(home);
    Py_DECREF(payload);
    if (res == NULL)
        goto fail_addr;
    Py_DECREF(res);
    if (comp_count(self->counters_dict, self->count_meth,
                   TS.transactions_completed) < 0)
        goto fail_addr;

    PyObject *hist = PyObject_GetAttr(self->ctrl, TS.miss_hist);
    if (hist == NULL)
        goto fail_addr;
    if (hist == Py_None) {
        Py_DECREF(hist);
        hist = PyObject_Call(self->hist_meth, self->hist_args,
                             self->hist_kwargs);
        if (hist == NULL)
            goto fail_addr;
        if (PyObject_SetAttr(self->ctrl, TS.miss_hist, hist) < 0) {
            Py_DECREF(hist);
            goto fail_addr;
        }
    }
    long long started;
    if (getattr_ll(txn, TS.started_at, &started) < 0) {
        Py_DECREF(hist);
        goto fail_addr;
    }
    int rc = hist_record_ll(hist, self->sim->now - started);
    Py_DECREF(hist);
    if (rc < 0)
        goto fail_addr;

    PyObject *request = PyObject_GetAttr(self->ctrl, TS.pending_request);
    if (request == NULL)
        goto fail_addr;
    PyObject *oc = PyObject_GetAttr(self->ctrl, TS.pending_on_complete);
    if (oc == NULL)
        goto fail_req;
    PyObject *req_op = PyObject_GetAttr(request, TS.op);
    if (req_op == NULL)
        goto fail_oc;
    PyObject *set = PyList_GET_ITEM(
        self->l2_sets,
        (Py_ssize_t)((taddr / self->l2_block) % self->l2_nsets));
    PyObject *line = PyDict_GetItemWithError(set, taddr_obj);
    if (line == NULL && PyErr_Occurred()) {
        Py_DECREF(req_op);
        goto fail_oc;
    }
    if (req_op == self->store_op) {
        Py_DECREF(req_op);
        if (line != NULL) {
            PyObject *rvalue = PyObject_GetAttr(request, S.value);
            if (rvalue == NULL)
                goto fail_oc;
            if (rvalue != Py_None &&
                txn_set_value(self->observer, line, taddr_obj, rvalue) < 0) {
                Py_DECREF(rvalue);
                goto fail_oc;
            }
            Py_DECREF(rvalue);
        }
    }
    else {
        Py_DECREF(req_op);
        /* _read_value: the loaded value observed by correctness checks. */
        PyObject *lvalue;
        if (line != NULL) {
            lvalue = PyObject_GetAttr(line, S.value);
            if (lvalue == NULL)
                goto fail_oc;
        }
        else {
            lvalue = Py_None;
            Py_INCREF(lvalue);
        }
        rc = PyObject_SetAttr(request, S.value, lvalue);
        Py_DECREF(lvalue);
        if (rc < 0)
            goto fail_oc;
    }
    if (setattr_ll(request, TS.completed_at, self->sim->now) < 0)
        goto fail_oc;
    res = PyObject_CallOneArg(oc, request);
    Py_DECREF(oc);
    Py_DECREF(request);
    Py_DECREF(taddr_obj);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;

fail_oc:
    Py_DECREF(oc);
fail_req:
    Py_DECREF(request);
fail_addr:
    Py_DECREF(taddr_obj);
    return -1;
}

/* _maybe_complete + Transaction.complete. */
static int
txn_maybe_complete(CTxnCore *self, PyObject *txn)
{
    PyObject *tmp = PyObject_GetAttr(txn, TS.data_received);
    if (tmp == NULL)
        return -1;
    int data = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (data < 0)
        return -1;
    if (!data)
        return 0;
    long long got, need;
    if (getattr_ll(txn, TS.acks_received, &got) < 0 ||
        getattr_ll(txn, TS.acks_needed, &need) < 0)
        return -1;
    if (got < need)
        return 0;
    tmp = PyObject_GetAttr(txn, TS.completed);
    if (tmp == NULL)
        return -1;
    int done = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (done < 0)
        return -1;
    if (done)
        return 0;
    if (PyObject_SetAttr(txn, TS.completed, Py_True) < 0)
        return -1;
    PyObject *te = PyObject_GetAttr(txn, TS.timeout_event);
    if (te == NULL)
        return -1;
    if (te != Py_None) {
        PyObject *res = PyObject_CallMethodNoArgs(te, TS.cancel);
        Py_DECREF(te);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        if (PyObject_SetAttr(txn, TS.timeout_event, Py_None) < 0)
            return -1;
    }
    else
        Py_DECREF(te);
    PyObject *oc = PyObject_GetAttr(txn, TS.on_complete_attr);
    if (oc == NULL)
        return -1;
    if (oc == Py_None) {
        Py_DECREF(oc);
        return 0;
    }
    if (oc == self->complete_cb) {
        Py_DECREF(oc);
        return txn_done(self, txn);
    }
    /* A transaction issued by the pure path (slow-start retry) completes
     * through its own bound _complete_current. */
    PyObject *res = PyObject_CallOneArg(oc, txn);
    Py_DECREF(oc);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* access(request, on_complete) */
static PyObject *
TxnCore_access(CTxnCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "access() takes exactly 2 arguments");
        return NULL;
    }
    PyObject *request = args[0];
    PyObject *on_complete = args[1];
    if (setattr_ll(request, PS.issued_at, self->sim->now) < 0)
        return NULL;
    PyObject *addr_obj = PyObject_GetAttr(request, PS.address);
    if (addr_obj == NULL)
        return NULL;
    long long addr = PyLong_AsLongLong(addr_obj);
    if (addr == -1 && PyErr_Occurred()) {
        Py_DECREF(addr_obj);
        return NULL;
    }
    /* CacheArray.lookup: probe + LRU touch even when the access misses. */
    PyObject *set = PyList_GET_ITEM(
        self->l2_sets, (Py_ssize_t)((addr / self->l2_block) % self->l2_nsets));
    PyObject *line = PyDict_GetItemWithError(set, addr_obj);
    if (line == NULL && PyErr_Occurred())
        goto fail_addr;
    if (line != NULL) {
        long long tick;
        if (getattr_ll(self->cache, TS.tick, &tick) < 0)
            goto fail_addr;
        tick += 1;
        if (setattr_ll(self->cache, TS.tick, tick) < 0 ||
            setattr_ll(line, TS.last_used, tick) < 0)
            goto fail_addr;
    }
    PyObject *state;
    if (line != NULL) {
        state = PyObject_GetAttr(line, PS.state);
        if (state == NULL)
            goto fail_addr;
    }
    else {
        state = self->invalid_state;
        Py_INCREF(state);
    }
    PyObject *op = PyObject_GetAttr(request, TS.op);
    if (op == NULL) {
        Py_DECREF(state);
        goto fail_addr;
    }
    int is_load = (op == self->load_op);
    Py_DECREF(op);

    if (is_load && state != self->invalid_state) {
        Py_DECREF(state);
        if (addattr_ll(self->cache, PS.hits, 1) < 0 ||
            comp_count(self->counters_dict, self->count_meth,
                       TS.load_hits) < 0)
            goto fail_addr;
        PyObject *lvalue = PyObject_GetAttr(line, S.value);
        if (lvalue == NULL)
            goto fail_addr;
        int rc = PyObject_SetAttr(request, S.value, lvalue);
        Py_DECREF(lvalue);
        if (rc < 0 || txn_finish_schedule(self, request, on_complete) < 0)
            goto fail_addr;
        Py_DECREF(addr_obj);
        Py_RETURN_NONE;
    }
    if (!is_load && state == self->modified_state) {
        Py_DECREF(state);
        if (addattr_ll(self->cache, PS.hits, 1) < 0 ||
            comp_count(self->counters_dict, self->count_meth,
                       TS.store_hits) < 0)
            goto fail_addr;
        PyObject *rvalue = PyObject_GetAttr(request, S.value);
        if (rvalue == NULL)
            goto fail_addr;
        int rc = txn_set_value(self->observer, line, addr_obj, rvalue);
        Py_DECREF(rvalue);
        if (rc < 0 || txn_finish_schedule(self, request, on_complete) < 0)
            goto fail_addr;
        Py_DECREF(addr_obj);
        Py_RETURN_NONE;
    }
    Py_DECREF(state);

    /* Miss (or upgrade): issue a coherence transaction. */
    if (addattr_ll(self->cache, TS.misses, 1) < 0 ||
        comp_count(self->counters_dict, self->count_meth,
                   is_load ? TS.load_misses : TS.store_misses) < 0)
        goto fail_addr;
    PyObject *txn = PyObject_GetAttr(self->ctrl, TS.transaction);
    if (txn == NULL)
        goto fail_addr;
    if (txn != Py_None) {
        /* The pure method raises the "second reference" error. */
        Py_DECREF(txn);
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->pure_issue, request, on_complete, NULL);
        Py_DECREF(addr_obj);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        Py_RETURN_NONE;
    }
    Py_DECREF(txn);
    if (txn_issue(self, request, on_complete, addr_obj, addr, is_load) < 0)
        goto fail_addr;
    Py_DECREF(addr_obj);
    Py_RETURN_NONE;

fail_addr:
    Py_DECREF(addr_obj);
    return NULL;
}

/* handle_data(address, payload) */
static PyObject *
TxnCore_handle_data(CTxnCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "handle_data() takes exactly 2 arguments");
        return NULL;
    }
    PyObject *address = args[0];
    PyObject *payload = args[1];
    PyObject *txn = PyObject_GetAttr(self->ctrl, TS.transaction);
    if (txn == NULL)
        return NULL;
    int stale = (txn == Py_None);
    if (!stale) {
        PyObject *taddr = PyObject_GetAttr(txn, PS.address);
        if (taddr == NULL)
            goto fail;
        int differs = PyObject_RichCompareBool(taddr, address, Py_NE);
        Py_DECREF(taddr);
        if (differs < 0)
            goto fail;
        stale = differs;
    }
    if (!stale) {
        PyObject *tmp = PyObject_GetAttr(txn, TS.completed);
        if (tmp == NULL)
            goto fail;
        stale = PyObject_IsTrue(tmp);
        Py_DECREF(tmp);
        if (stale < 0)
            goto fail;
    }
    if (stale) {
        Py_DECREF(txn);
        if (comp_count(self->counters_dict, self->count_meth,
                       TS.stale_data) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    PyObject *tmp = PyObject_GetAttr(txn, TS.data_received);
    if (tmp == NULL)
        goto fail;
    int dup = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (dup < 0)
        goto fail;
    if (dup) {
        Py_DECREF(txn);
        if (comp_count(self->counters_dict, self->count_meth,
                       TS.duplicate_data) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (PyObject_SetAttr(txn, TS.data_received, Py_True) < 0)
        goto fail;
    long long needed, expected;
    if (getattr_ll(txn, TS.acks_needed, &needed) < 0 ||
        getattr_ll(payload, TS.acks_expected, &expected) < 0)
        goto fail;
    if (setattr_ll(txn, TS.acks_needed,
                   expected > needed ? expected : needed) < 0)
        goto fail;
    PyObject *value = PyObject_GetAttr(payload, S.value);
    if (value == NULL)
        goto fail;
    long long addr = PyLong_AsLongLong(address);
    if (addr == -1 && PyErr_Occurred()) {
        Py_DECREF(value);
        goto fail;
    }
    int rc = txn_install_line(self, txn, value, address, addr);
    Py_DECREF(value);
    if (rc < 0 || txn_maybe_complete(self, txn) < 0)
        goto fail;
    Py_DECREF(txn);
    Py_RETURN_NONE;

fail:
    Py_DECREF(txn);
    return NULL;
}

/* handle_ack(address, payload) */
static PyObject *
TxnCore_handle_ack(CTxnCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "handle_ack() takes exactly 2 arguments");
        return NULL;
    }
    PyObject *address = args[0];
    PyObject *txn = PyObject_GetAttr(self->ctrl, TS.transaction);
    if (txn == NULL)
        return NULL;
    int stale = (txn == Py_None);
    if (!stale) {
        PyObject *taddr = PyObject_GetAttr(txn, PS.address);
        if (taddr == NULL)
            goto fail;
        int differs = PyObject_RichCompareBool(taddr, address, Py_NE);
        Py_DECREF(taddr);
        if (differs < 0)
            goto fail;
        stale = differs;
    }
    if (!stale) {
        PyObject *tmp = PyObject_GetAttr(txn, TS.completed);
        if (tmp == NULL)
            goto fail;
        stale = PyObject_IsTrue(tmp);
        Py_DECREF(tmp);
        if (stale < 0)
            goto fail;
    }
    if (stale) {
        Py_DECREF(txn);
        if (comp_count(self->counters_dict, self->count_meth,
                       TS.stale_acks) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (addattr_ll(txn, TS.acks_received, 1) < 0 ||
        txn_maybe_complete(self, txn) < 0)
        goto fail;
    Py_DECREF(txn);
    Py_RETURN_NONE;

fail:
    Py_DECREF(txn);
    return NULL;
}

static PyMethodDef TxnCore_methods[] = {
    {"access", (PyCFunction)(void (*)(void))TxnCore_access,
     METH_FASTCALL, "Compiled DirectoryCacheController.access."},
    {"handle_data", (PyCFunction)(void (*)(void))TxnCore_handle_data,
     METH_FASTCALL, "Compiled DirectoryCacheController._handle_data."},
    {"handle_ack", (PyCFunction)(void (*)(void))TxnCore_handle_ack,
     METH_FASTCALL, "Compiled DirectoryCacheController._handle_ack."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject CTxnCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.TransactionCore",
    .tp_basicsize = sizeof(CTxnCore),
    .tp_dealloc = (destructor)TxnCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled directory cache-controller transaction path "
              "(access + DATA/ACK handlers).",
    .tp_traverse = (traverseproc)TxnCore_traverse,
    .tp_clear = (inquiry)TxnCore_clear_gc,
    .tp_methods = TxnCore_methods,
    .tp_new = TxnCore_new,
};

/* -------------------------------------------------- MemoryCompleteCore */

/* Compiled BlockingProcessor._memory_complete: retire accounting, the
 * shared latency histogram, the L1 tag fill and the next-issue schedule.
 * Holds the node's ProcessorCore for the gap-draw fields and the shared
 * _issue_pending scheduling helper. */
typedef struct {
    PyObject_HEAD
    PyObject *proc;
    CProcCore *pc;              /* strong */
    PyObject *valid_state;      /* L1State.VALID */
    PyObject *line_cls;
    PyObject *l1_tags, *l1_sets;
    long long l1_block, l1_nsets, l1_assoc;
    int use_pure_fill;          /* observer installed: keep the pure fill */
    PyObject *fill_meth;        /* bound l1.fill */
    PyObject *counters_dict, *count_meth;
    PyObject *hist_meth, *hist_args, *hist_kwargs;
} CMemCore;

static int
MemCore_traverse(CMemCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->proc);
    Py_VISIT(self->pc);
    Py_VISIT(self->valid_state);
    Py_VISIT(self->line_cls);
    Py_VISIT(self->l1_tags);
    Py_VISIT(self->l1_sets);
    Py_VISIT(self->fill_meth);
    Py_VISIT(self->counters_dict);
    Py_VISIT(self->count_meth);
    Py_VISIT(self->hist_meth);
    Py_VISIT(self->hist_args);
    Py_VISIT(self->hist_kwargs);
    return 0;
}

static int
MemCore_clear_gc(CMemCore *self)
{
    Py_CLEAR(self->proc);
    Py_CLEAR(self->pc);
    Py_CLEAR(self->valid_state);
    Py_CLEAR(self->line_cls);
    Py_CLEAR(self->l1_tags);
    Py_CLEAR(self->l1_sets);
    Py_CLEAR(self->fill_meth);
    Py_CLEAR(self->counters_dict);
    Py_CLEAR(self->count_meth);
    Py_CLEAR(self->hist_meth);
    Py_CLEAR(self->hist_args);
    Py_CLEAR(self->hist_kwargs);
    return 0;
}

static void
MemCore_dealloc(CMemCore *self)
{
    PyObject_GC_UnTrack(self);
    MemCore_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
MemCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *proc, *valid_state, *line_cls;
    CProcCore *pc;
    if (!PyArg_ParseTuple(args, "OO!OO", &proc, &CProcCore_Type, &pc,
                          &valid_state, &line_cls))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError,
                        "MemoryCompleteCore() takes no kwargs");
        return NULL;
    }
    CMemCore *self = PyObject_GC_New(CMemCore, &CMemCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CMemCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(proc);
    self->proc = proc;
    Py_INCREF(pc);
    self->pc = pc;
    Py_INCREF(valid_state);
    self->valid_state = valid_state;
    Py_INCREF(line_cls);
    self->line_cls = line_cls;

    PyObject *l1 = PyObject_GetAttrString(proc, "l1");
    if (l1 == NULL)
        goto fail;
    if (l1 == Py_None) {
        Py_DECREF(l1);
        PyErr_SetString(PyExc_TypeError,
                        "MemoryCompleteCore requires an L1 filter cache");
        goto fail;
    }
    self->l1_tags = PyObject_GetAttrString(l1, "tags");
    if (self->l1_tags == NULL) {
        Py_DECREF(l1);
        goto fail;
    }
    self->fill_meth = PyObject_GetAttrString(l1, "fill");
    Py_DECREF(l1);
    if (self->fill_meth == NULL)
        goto fail;
    self->l1_sets = PyObject_GetAttrString(self->l1_tags, "_sets");
    if (self->l1_sets == NULL || !PyList_Check(self->l1_sets)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_sets must be a list");
        goto fail;
    }
    if (getattrstr_ll(self->l1_tags, "_block_bytes", &self->l1_block) < 0 ||
        getattrstr_ll(self->l1_tags, "_num_sets", &self->l1_nsets) < 0)
        goto fail;
    if (self->l1_block <= 0 || self->l1_nsets <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "cache geometry must be positive");
        goto fail;
    }
    PyObject *cfg = PyObject_GetAttrString(self->l1_tags, "config");
    if (cfg == NULL)
        goto fail;
    int rc = getattrstr_ll(cfg, "associativity", &self->l1_assoc);
    Py_DECREF(cfg);
    if (rc < 0)
        goto fail;
    PyObject *obs = PyObject_GetAttrString(self->l1_tags, "_observer");
    if (obs == NULL)
        goto fail;
    self->use_pure_fill = (obs != Py_None);
    Py_DECREF(obs);

    self->counters_dict = PyObject_GetAttrString(proc, "_counters");
    if (self->counters_dict == NULL || !PyDict_Check(self->counters_dict)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_counters must be a dict");
        goto fail;
    }
    self->count_meth = PyObject_GetAttrString(proc, "count");
    if (self->count_meth == NULL)
        goto fail;
    PyObject *stats = PyObject_GetAttrString(proc, "stats");
    if (stats == NULL)
        goto fail;
    self->hist_meth = PyObject_GetAttrString(stats, "histogram");
    Py_DECREF(stats);
    if (self->hist_meth == NULL)
        goto fail;
    self->hist_args = Py_BuildValue("(s)", "proc.mem_latency");
    if (self->hist_args == NULL)
        goto fail;
    self->hist_kwargs = Py_BuildValue("{s:i}", "bucket_width", 64);
    if (self->hist_kwargs == NULL)
        goto fail;
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

/* L1FilterCache.fill: tags.allocate(address, VALID) with no observer. */
static int
memcore_l1_fill(CMemCore *self, PyObject *addr_obj, long long addr)
{
    PyObject *set = PyList_GET_ITEM(
        self->l1_sets, (Py_ssize_t)((addr / self->l1_block) % self->l1_nsets));
    PyObject *existing = PyDict_GetItemWithError(set, addr_obj);
    if (existing == NULL && PyErr_Occurred())
        return -1;
    if (existing != NULL)
        return PyObject_SetAttr(existing, PS.state, self->valid_state);
    if (PyDict_GET_SIZE(set) >= (Py_ssize_t)self->l1_assoc) {
        /* LRU victim: first strict minimum in insertion order, exactly
         * like min() over the dict's values. */
        PyObject *victim = NULL;
        long long best = 0;
        Py_ssize_t pos = 0;
        PyObject *key, *line;
        while (PyDict_Next(set, &pos, &key, &line)) {
            long long used;
            if (getattr_ll(line, TS.last_used, &used) < 0)
                return -1;
            if (victim == NULL || used < best) {
                victim = line;
                best = used;
            }
        }
        if (victim == NULL) {
            PyErr_SetString(PyExc_RuntimeError, "full set with no lines");
            return -1;
        }
        PyObject *vaddr = PyObject_GetAttr(victim, PS.address);
        if (vaddr == NULL)
            return -1;
        int rc = PyDict_DelItem(set, vaddr);
        Py_DECREF(vaddr);
        if (rc < 0)
            return -1;
        if (addattr_ll(self->l1_tags, TS.evictions, 1) < 0)
            return -1;
    }
    long long tick;
    if (getattr_ll(self->l1_tags, TS.tick, &tick) < 0)
        return -1;
    tick += 1;
    if (setattr_ll(self->l1_tags, TS.tick, tick) < 0)
        return -1;
    PyObject *tick_obj = PyLong_FromLongLong(tick);
    if (tick_obj == NULL)
        return -1;
    PyObject *line = PyObject_CallFunctionObjArgs(
        self->line_cls, addr_obj, self->valid_state, Py_None, tick_obj,
        NULL);
    Py_DECREF(tick_obj);
    if (line == NULL)
        return -1;
    int rc = PyDict_SetItem(set, addr_obj, line);
    Py_DECREF(line);
    return rc;
}

static PyObject *
MemCore_call(CMemCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *request;
    if (!PyArg_ParseTuple(args, "O", &request))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError,
                        "memory-complete callback takes no kwargs");
        return NULL;
    }
    PyObject *p = self->proc;
    if (PyObject_SetAttr(p, PS.waiting, Py_False) < 0 ||
        addattr_ll(p, PS.references_completed, 1) < 0 ||
        comp_count(self->counters_dict, self->count_meth,
                   TS.memory_references) < 0)
        return NULL;
    PyObject *hist = PyObject_GetAttr(p, TS.mem_hist);
    if (hist == NULL)
        return NULL;
    if (hist == Py_None) {
        Py_DECREF(hist);
        hist = PyObject_Call(self->hist_meth, self->hist_args,
                             self->hist_kwargs);
        if (hist == NULL)
            return NULL;
        if (PyObject_SetAttr(p, TS.mem_hist, hist) < 0) {
            Py_DECREF(hist);
            return NULL;
        }
    }
    long long completed, issued;
    if (getattr_ll(request, TS.completed_at, &completed) < 0 ||
        getattr_ll(request, PS.issued_at, &issued) < 0) {
        Py_DECREF(hist);
        return NULL;
    }
    long long lat = completed - issued;
    if (lat < 0)
        lat = 0;
    int rc = hist_record_ll(hist, lat);
    Py_DECREF(hist);
    if (rc < 0)
        return NULL;
    PyObject *addr_obj = PyObject_GetAttr(request, PS.address);
    if (addr_obj == NULL)
        return NULL;
    if (self->use_pure_fill) {
        PyObject *res = PyObject_CallOneArg(self->fill_meth, addr_obj);
        Py_DECREF(addr_obj);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
    }
    else {
        long long addr = PyLong_AsLongLong(addr_obj);
        if (addr == -1 && PyErr_Occurred()) {
            Py_DECREF(addr_obj);
            return NULL;
        }
        rc = memcore_l1_fill(self, addr_obj, addr);
        Py_DECREF(addr_obj);
        if (rc < 0)
            return NULL;
    }
    /* _compute_gap_cycles + _schedule_issue (via the processor core, so
     * the jitter stream and the _issue_pending collapse stay shared). */
    CProcCore *pc = self->pc;
    long long extra = 0;
    if (pc->jitter > 0) {
        PyObject *r = PyObject_CallFunctionObjArgs(
            pc->randint_meth, PS.gap, pc->zero_obj, pc->gap_hi, NULL);
        if (r == NULL)
            return NULL;
        extra = PyLong_AsLongLong(r);
        Py_DECREF(r);
        if (extra == -1 && PyErr_Occurred())
            return NULL;
    }
    long long gap = pc->gap_base + extra;
    if (gap < 1)
        gap = 1;
    if (proc_schedule(pc, gap) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyTypeObject CMemCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.MemoryCompleteCore",
    .tp_basicsize = sizeof(CMemCore),
    .tp_dealloc = (destructor)MemCore_dealloc,
    .tp_call = (ternaryfunc)MemCore_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled BlockingProcessor._memory_complete "
              "(installed as the instance attribute).",
    .tp_traverse = (traverseproc)MemCore_traverse,
    .tp_clear = (inquiry)MemCore_clear_gc,
    .tp_new = MemCore_new,
};

/* ------------------------------------------------------------ SnoopCore */

/* Compiled SnoopingCacheController hot paths: the processor-facing
 * access() (MOESI L2 lookup + hit finish + transaction issue), the
 * per-request snoop() fan-out the BusCore broadcast dispatches to
 * (own/foreign GETS/GETX/Writeback, including the Section 3.2
 * writeback-race bookkeeping) and the data-network receive_data()
 * install/complete path.  Ports of the pure methods in
 * repro.coherence.snooping.cache_controller; every cold or rare branch
 * (slow-start retry, full-set install, the corner case, pending-forward
 * service, recovery) stays pure.  Completion runs through the
 * controller's _pending_request/_pending_on_complete attributes, the
 * same protocol the pure _complete_current uses. */

/* Interned attribute names used by the snooping core. */
static struct {
    PyObject *requestor, *rtype, *phase, *record_request, *bus_ordered,
        *invalidate_on_install, *value_hint, *writebacks_ordered,
        *own_request_ordered, *cache_to_cache_transfers, *forwards_deferred,
        *late_invalidates, *writeback_race_first_getx, *stale_data,
        *duplicate_data;
} SN;

typedef struct _CSnoopCore CSnoopCore;

/* Reusable finish thunk: the _finish() closure of the single outstanding
 * reference (blocking processor => at most one in flight per controller). */
typedef struct {
    PyObject_HEAD
    CSnoopCore *core;           /* strong */
    PyObject *request, *cb;     /* armed payload; NULL when idle */
} CSnoopFinishThunk;

/* Reusable timeout thunk: the `lambda: self._transaction_timeout(txn)`
 * of the single outstanding transaction. */
typedef struct {
    PyObject_HEAD
    CSnoopCore *core;           /* strong */
    PyObject *txn;
} CSnoopTimeoutThunk;

/* Per-occurrence supply thunk: cache-to-cache deliveries overlap (any
 * number of foreign requests can be in flight), so each carries its own
 * payload. */
typedef struct {
    PyObject_HEAD
    PyObject *deliver;          /* bound system._deliver_data */
    PyObject *dst, *addr, *value;
} CSupplyThunk;

/* Per-occurrence own-upgrade thunk: receive_data(address, value) at +1
 * when our ordered GETS/GETX finds valid local data. */
typedef struct {
    PyObject_HEAD
    CSnoopCore *core;           /* strong */
    PyObject *addr, *value;
} CSnoopRecvThunk;

struct _CSnoopCore {
    PyObject_HEAD
    PyObject *ctrl;
    CSimulator *sim;            /* strong */
    CEventQueue *cqueue;        /* strong */
    PyObject *name_obj;         /* ctrl.name (default event label) */
    PyObject *node_obj;         /* PyLong ctrl.node_id */
    long long node_id;
    PyObject *load_op, *store_op;
    PyObject *invalid_state, *shared_state, *exclusive_state, *owned_state,
        *modified_state;
    PyObject *gets_type, *getx_type, *wb_type;
    PyObject *waiting_phase, *lost_phase;
    PyObject *busreq_cls, *txn_cls, *line_cls;
    PyObject *cache;            /* ctrl.cache (CacheArray) */
    PyObject *l2_sets;          /* cache._sets */
    long long l2_block, l2_nsets, assoc;
    PyObject *observer;         /* cache._observer (Py_None when unset) */
    long long l2_hit_cycles, c2c_cycles;
    PyObject *l2_hit_obj;
    PyObject *bus_issue;        /* bus.issue (post-rebind BusCore.issue) */
    PyObject *deliver;          /* ctrl.deliver_data */
    PyObject *may_issue, *on_retire;
    PyObject *counters_dict, *count_meth;
    PyObject *writebacks_dict;  /* ctrl.writebacks */
    PyObject *forwards_dict;    /* ctrl._pending_forwards */
    PyObject *passed_set;       /* ctrl._ownership_passed */
    PyObject *complete_cb;      /* bound ctrl._complete_current */
    PyObject *pure_issue;       /* bound ctrl._issue_transaction */
    PyObject *retry_meth;       /* bound ctrl._retry_issue */
    PyObject *pure_install;     /* bound ctrl._install_line */
    PyObject *finish_meth;      /* bound ctrl._finish */
    PyObject *timeout_meth;     /* bound ctrl._transaction_timeout */
    PyObject *corner_meth;      /* bound ctrl._corner_case */
    PyObject *forwards_meth;    /* bound ctrl._process_pending_forwards */
    PyObject *zero_obj;
    PyObject *finish_thunk;     /* CSnoopFinishThunk */
    PyObject *timeout_thunk;    /* CSnoopTimeoutThunk */
};

static PyTypeObject CSnoopCore_Type;
static PyTypeObject CSnoopFinishThunk_Type;
static PyTypeObject CSnoopTimeoutThunk_Type;
static PyTypeObject CSupplyThunk_Type;
static PyTypeObject CSnoopRecvThunk_Type;

static int snoop_receive_impl(CSnoopCore *self, PyObject *addr_obj,
                              PyObject *value);

/* ------------------------------------------------------- finish thunk */

static int
SnoopFinish_traverse(CSnoopFinishThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->request);
    Py_VISIT(self->cb);
    return 0;
}

static int
SnoopFinish_clear_gc(CSnoopFinishThunk *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->request);
    Py_CLEAR(self->cb);
    return 0;
}

static void
SnoopFinish_dealloc(CSnoopFinishThunk *self)
{
    PyObject_GC_UnTrack(self);
    SnoopFinish_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
SnoopFinish_call(CSnoopFinishThunk *self, PyObject *args, PyObject *kwds)
{
    /* _finish._done: stamp completion time, then hand the request back. */
    PyObject *request = self->request;
    PyObject *cb = self->cb;
    self->request = NULL;
    self->cb = NULL;
    if (request == NULL || cb == NULL) {
        Py_XDECREF(request);
        Py_XDECREF(cb);
        PyErr_SetString(PyExc_RuntimeError, "finish thunk fired while idle");
        return NULL;
    }
    if (setattr_ll(request, TS.completed_at, self->core->sim->now) < 0) {
        Py_DECREF(request);
        Py_DECREF(cb);
        return NULL;
    }
    PyObject *res = PyObject_CallOneArg(cb, request);
    Py_DECREF(request);
    Py_DECREF(cb);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyTypeObject CSnoopFinishThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._SnoopFinishThunk",
    .tp_basicsize = sizeof(CSnoopFinishThunk),
    .tp_dealloc = (destructor)SnoopFinish_dealloc,
    .tp_call = (ternaryfunc)SnoopFinish_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)SnoopFinish_traverse,
    .tp_clear = (inquiry)SnoopFinish_clear_gc,
};

/* ------------------------------------------------------ timeout thunk */

static int
SnoopTimeout_traverse(CSnoopTimeoutThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->txn);
    return 0;
}

static int
SnoopTimeout_clear_gc(CSnoopTimeoutThunk *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->txn);
    return 0;
}

static void
SnoopTimeout_dealloc(CSnoopTimeoutThunk *self)
{
    PyObject_GC_UnTrack(self);
    SnoopTimeout_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
SnoopTimeout_call(CSnoopTimeoutThunk *self, PyObject *args, PyObject *kwds)
{
    PyObject *txn = self->txn;
    self->txn = NULL;
    if (txn == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "timeout thunk fired while idle");
        return NULL;
    }
    PyObject *res = PyObject_CallOneArg(self->core->timeout_meth, txn);
    Py_DECREF(txn);
    return res;
}

static PyTypeObject CSnoopTimeoutThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._SnoopTimeoutThunk",
    .tp_basicsize = sizeof(CSnoopTimeoutThunk),
    .tp_dealloc = (destructor)SnoopTimeout_dealloc,
    .tp_call = (ternaryfunc)SnoopTimeout_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)SnoopTimeout_traverse,
    .tp_clear = (inquiry)SnoopTimeout_clear_gc,
};

/* ------------------------------------------------------- supply thunk */

static int
Supply_traverse(CSupplyThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->deliver);
    Py_VISIT(self->dst);
    Py_VISIT(self->addr);
    Py_VISIT(self->value);
    return 0;
}

static int
Supply_clear_gc(CSupplyThunk *self)
{
    Py_CLEAR(self->deliver);
    Py_CLEAR(self->dst);
    Py_CLEAR(self->addr);
    Py_CLEAR(self->value);
    return 0;
}

static void
Supply_dealloc(CSupplyThunk *self)
{
    PyObject_GC_UnTrack(self);
    Supply_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
Supply_call(CSupplyThunk *self, PyObject *args, PyObject *kwds)
{
    return PyObject_CallFunctionObjArgs(self->deliver, self->dst,
                                        self->addr, self->value, NULL);
}

static PyTypeObject CSupplyThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._SupplyThunk",
    .tp_basicsize = sizeof(CSupplyThunk),
    .tp_dealloc = (destructor)Supply_dealloc,
    .tp_call = (ternaryfunc)Supply_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)Supply_traverse,
    .tp_clear = (inquiry)Supply_clear_gc,
};

/* ------------------------------------------------------ receive thunk */

static int
SnoopRecv_traverse(CSnoopRecvThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->addr);
    Py_VISIT(self->value);
    return 0;
}

static int
SnoopRecv_clear_gc(CSnoopRecvThunk *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->addr);
    Py_CLEAR(self->value);
    return 0;
}

static void
SnoopRecv_dealloc(CSnoopRecvThunk *self)
{
    PyObject_GC_UnTrack(self);
    SnoopRecv_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
SnoopRecv_call(CSnoopRecvThunk *self, PyObject *args, PyObject *kwds)
{
    if (snoop_receive_impl(self->core, self->addr, self->value) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyTypeObject CSnoopRecvThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._SnoopRecvThunk",
    .tp_basicsize = sizeof(CSnoopRecvThunk),
    .tp_dealloc = (destructor)SnoopRecv_dealloc,
    .tp_call = (ternaryfunc)SnoopRecv_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)SnoopRecv_traverse,
    .tp_clear = (inquiry)SnoopRecv_clear_gc,
};

/* ---------------------------------------------------------- core type */

static int
SnoopCore_traverse(CSnoopCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->ctrl);
    Py_VISIT(self->sim);
    Py_VISIT(self->cqueue);
    Py_VISIT(self->name_obj);
    Py_VISIT(self->node_obj);
    Py_VISIT(self->load_op);
    Py_VISIT(self->store_op);
    Py_VISIT(self->invalid_state);
    Py_VISIT(self->shared_state);
    Py_VISIT(self->exclusive_state);
    Py_VISIT(self->owned_state);
    Py_VISIT(self->modified_state);
    Py_VISIT(self->gets_type);
    Py_VISIT(self->getx_type);
    Py_VISIT(self->wb_type);
    Py_VISIT(self->waiting_phase);
    Py_VISIT(self->lost_phase);
    Py_VISIT(self->busreq_cls);
    Py_VISIT(self->txn_cls);
    Py_VISIT(self->line_cls);
    Py_VISIT(self->cache);
    Py_VISIT(self->l2_sets);
    Py_VISIT(self->observer);
    Py_VISIT(self->l2_hit_obj);
    Py_VISIT(self->bus_issue);
    Py_VISIT(self->deliver);
    Py_VISIT(self->may_issue);
    Py_VISIT(self->on_retire);
    Py_VISIT(self->counters_dict);
    Py_VISIT(self->count_meth);
    Py_VISIT(self->writebacks_dict);
    Py_VISIT(self->forwards_dict);
    Py_VISIT(self->passed_set);
    Py_VISIT(self->complete_cb);
    Py_VISIT(self->pure_issue);
    Py_VISIT(self->retry_meth);
    Py_VISIT(self->pure_install);
    Py_VISIT(self->finish_meth);
    Py_VISIT(self->timeout_meth);
    Py_VISIT(self->corner_meth);
    Py_VISIT(self->forwards_meth);
    Py_VISIT(self->zero_obj);
    Py_VISIT(self->finish_thunk);
    Py_VISIT(self->timeout_thunk);
    return 0;
}

static int
SnoopCore_clear_gc(CSnoopCore *self)
{
    Py_CLEAR(self->ctrl);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->cqueue);
    Py_CLEAR(self->name_obj);
    Py_CLEAR(self->node_obj);
    Py_CLEAR(self->load_op);
    Py_CLEAR(self->store_op);
    Py_CLEAR(self->invalid_state);
    Py_CLEAR(self->shared_state);
    Py_CLEAR(self->exclusive_state);
    Py_CLEAR(self->owned_state);
    Py_CLEAR(self->modified_state);
    Py_CLEAR(self->gets_type);
    Py_CLEAR(self->getx_type);
    Py_CLEAR(self->wb_type);
    Py_CLEAR(self->waiting_phase);
    Py_CLEAR(self->lost_phase);
    Py_CLEAR(self->busreq_cls);
    Py_CLEAR(self->txn_cls);
    Py_CLEAR(self->line_cls);
    Py_CLEAR(self->cache);
    Py_CLEAR(self->l2_sets);
    Py_CLEAR(self->observer);
    Py_CLEAR(self->l2_hit_obj);
    Py_CLEAR(self->bus_issue);
    Py_CLEAR(self->deliver);
    Py_CLEAR(self->may_issue);
    Py_CLEAR(self->on_retire);
    Py_CLEAR(self->counters_dict);
    Py_CLEAR(self->count_meth);
    Py_CLEAR(self->writebacks_dict);
    Py_CLEAR(self->forwards_dict);
    Py_CLEAR(self->passed_set);
    Py_CLEAR(self->complete_cb);
    Py_CLEAR(self->pure_issue);
    Py_CLEAR(self->retry_meth);
    Py_CLEAR(self->pure_install);
    Py_CLEAR(self->finish_meth);
    Py_CLEAR(self->timeout_meth);
    Py_CLEAR(self->corner_meth);
    Py_CLEAR(self->forwards_meth);
    Py_CLEAR(self->zero_obj);
    Py_CLEAR(self->finish_thunk);
    Py_CLEAR(self->timeout_thunk);
    return 0;
}

static void
SnoopCore_dealloc(CSnoopCore *self)
{
    PyObject_GC_UnTrack(self);
    SnoopCore_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
SnoopCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *ctrl, *load_op, *store_op, *invalid_state, *shared_state,
        *exclusive_state, *owned_state, *modified_state, *gets_type,
        *getx_type, *wb_type, *waiting_phase, *lost_phase, *busreq_cls,
        *txn_cls, *line_cls;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOOOOOO", &ctrl, &load_op,
                          &store_op, &invalid_state, &shared_state,
                          &exclusive_state, &owned_state, &modified_state,
                          &gets_type, &getx_type, &wb_type, &waiting_phase,
                          &lost_phase, &busreq_cls, &txn_cls, &line_cls))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "SnoopCore() takes no kwargs");
        return NULL;
    }
    CSnoopCore *self = PyObject_GC_New(CSnoopCore, &CSnoopCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CSnoopCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(ctrl);
    self->ctrl = ctrl;
    Py_INCREF(load_op);
    self->load_op = load_op;
    Py_INCREF(store_op);
    self->store_op = store_op;
    Py_INCREF(invalid_state);
    self->invalid_state = invalid_state;
    Py_INCREF(shared_state);
    self->shared_state = shared_state;
    Py_INCREF(exclusive_state);
    self->exclusive_state = exclusive_state;
    Py_INCREF(owned_state);
    self->owned_state = owned_state;
    Py_INCREF(modified_state);
    self->modified_state = modified_state;
    Py_INCREF(gets_type);
    self->gets_type = gets_type;
    Py_INCREF(getx_type);
    self->getx_type = getx_type;
    Py_INCREF(wb_type);
    self->wb_type = wb_type;
    Py_INCREF(waiting_phase);
    self->waiting_phase = waiting_phase;
    Py_INCREF(lost_phase);
    self->lost_phase = lost_phase;
    Py_INCREF(busreq_cls);
    self->busreq_cls = busreq_cls;
    Py_INCREF(txn_cls);
    self->txn_cls = txn_cls;
    Py_INCREF(line_cls);
    self->line_cls = line_cls;

    PyObject *sim = PyObject_GetAttrString(ctrl, "sim");
    if (sim == NULL)
        goto fail;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        Py_DECREF(sim);
        PyErr_SetString(PyExc_TypeError,
                        "SnoopCore requires a compiled Simulator");
        goto fail;
    }
    self->sim = (CSimulator *)sim;
    Py_INCREF(self->sim->queue);
    self->cqueue = self->sim->queue;

    self->name_obj = PyObject_GetAttrString(ctrl, "name");
    if (self->name_obj == NULL)
        goto fail;
    self->node_obj = PyObject_GetAttrString(ctrl, "node_id");
    if (self->node_obj == NULL)
        goto fail;
    self->node_id = PyLong_AsLongLong(self->node_obj);
    if (self->node_id == -1 && PyErr_Occurred())
        goto fail;

    self->cache = PyObject_GetAttrString(ctrl, "cache");
    if (self->cache == NULL)
        goto fail;
    self->l2_sets = PyObject_GetAttrString(self->cache, "_sets");
    if (self->l2_sets == NULL || !PyList_Check(self->l2_sets)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_sets must be a list");
        goto fail;
    }
    if (getattrstr_ll(self->cache, "_block_bytes", &self->l2_block) < 0 ||
        getattrstr_ll(self->cache, "_num_sets", &self->l2_nsets) < 0)
        goto fail;
    if (self->l2_block <= 0 || self->l2_nsets <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "cache geometry must be positive");
        goto fail;
    }
    self->observer = PyObject_GetAttrString(self->cache, "_observer");
    if (self->observer == NULL)
        goto fail;

    PyObject *config = PyObject_GetAttrString(ctrl, "config");
    if (config == NULL)
        goto fail;
    PyObject *l2cfg = PyObject_GetAttrString(config, "l2");
    if (l2cfg == NULL) {
        Py_DECREF(config);
        goto fail;
    }
    int rc = getattrstr_ll(l2cfg, "associativity", &self->assoc);
    Py_DECREF(l2cfg);
    if (rc < 0) {
        Py_DECREF(config);
        goto fail;
    }
    PyObject *pcfg = PyObject_GetAttrString(config, "processor");
    Py_DECREF(config);
    if (pcfg == NULL)
        goto fail;
    rc = getattrstr_ll(pcfg, "l2_hit_cycles", &self->l2_hit_cycles);
    Py_DECREF(pcfg);
    if (rc < 0)
        goto fail;
    self->l2_hit_obj = PyLong_FromLongLong(self->l2_hit_cycles);
    if (self->l2_hit_obj == NULL)
        goto fail;
    if (getattrstr_ll(ctrl, "CACHE_TO_CACHE_CYCLES", &self->c2c_cycles) < 0)
        goto fail;

    PyObject *bus = PyObject_GetAttrString(ctrl, "bus");
    if (bus == NULL)
        goto fail;
    self->bus_issue = PyObject_GetAttrString(bus, "issue");
    Py_DECREF(bus);
    if (self->bus_issue == NULL)
        goto fail;
    self->deliver = PyObject_GetAttrString(ctrl, "deliver_data");
    if (self->deliver == NULL)
        goto fail;
    self->may_issue = PyObject_GetAttrString(ctrl, "may_issue");
    if (self->may_issue == NULL)
        goto fail;
    self->on_retire = PyObject_GetAttrString(ctrl, "on_retire");
    if (self->on_retire == NULL)
        goto fail;
    self->counters_dict = PyObject_GetAttrString(ctrl, "_counters");
    if (self->counters_dict == NULL || !PyDict_Check(self->counters_dict)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_counters must be a dict");
        goto fail;
    }
    self->count_meth = PyObject_GetAttrString(ctrl, "count");
    if (self->count_meth == NULL)
        goto fail;
    self->writebacks_dict = PyObject_GetAttrString(ctrl, "writebacks");
    if (self->writebacks_dict == NULL ||
        !PyDict_Check(self->writebacks_dict)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "writebacks must be a dict");
        goto fail;
    }
    self->forwards_dict = PyObject_GetAttrString(ctrl, "_pending_forwards");
    if (self->forwards_dict == NULL || !PyDict_Check(self->forwards_dict)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "_pending_forwards must be a dict");
        goto fail;
    }
    self->passed_set = PyObject_GetAttrString(ctrl, "_ownership_passed");
    if (self->passed_set == NULL || !PyAnySet_Check(self->passed_set)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "_ownership_passed must be a set");
        goto fail;
    }
    self->complete_cb = PyObject_GetAttrString(ctrl, "_complete_current");
    if (self->complete_cb == NULL)
        goto fail;
    self->pure_issue = PyObject_GetAttrString(ctrl, "_issue_transaction");
    if (self->pure_issue == NULL)
        goto fail;
    self->retry_meth = PyObject_GetAttrString(ctrl, "_retry_issue");
    if (self->retry_meth == NULL)
        goto fail;
    self->pure_install = PyObject_GetAttrString(ctrl, "_install_line");
    if (self->pure_install == NULL)
        goto fail;
    self->finish_meth = PyObject_GetAttrString(ctrl, "_finish");
    if (self->finish_meth == NULL)
        goto fail;
    self->timeout_meth = PyObject_GetAttrString(ctrl, "_transaction_timeout");
    if (self->timeout_meth == NULL)
        goto fail;
    self->corner_meth = PyObject_GetAttrString(ctrl, "_corner_case");
    if (self->corner_meth == NULL)
        goto fail;
    self->forwards_meth = PyObject_GetAttrString(ctrl,
                                                 "_process_pending_forwards");
    if (self->forwards_meth == NULL)
        goto fail;
    self->zero_obj = PyLong_FromLong(0);
    if (self->zero_obj == NULL)
        goto fail;

    CSnoopFinishThunk *ft = PyObject_GC_New(CSnoopFinishThunk,
                                            &CSnoopFinishThunk_Type);
    if (ft == NULL)
        goto fail;
    ft->request = NULL;
    ft->cb = NULL;
    Py_INCREF(self);
    ft->core = self;
    PyObject_GC_Track((PyObject *)ft);
    self->finish_thunk = (PyObject *)ft;

    CSnoopTimeoutThunk *tt = PyObject_GC_New(CSnoopTimeoutThunk,
                                             &CSnoopTimeoutThunk_Type);
    if (tt == NULL)
        goto fail;
    tt->txn = NULL;
    Py_INCREF(self);
    tt->core = self;
    PyObject_GC_Track((PyObject *)tt);
    self->timeout_thunk = (PyObject *)tt;
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

/* ------------------------------------------------------------- helpers */

/* The set holding `addr` (borrowed). */
static inline PyObject *
snoop_set_for(CSnoopCore *self, long long addr)
{
    return PyList_GET_ITEM(
        self->l2_sets, (Py_ssize_t)((addr / self->l2_block) % self->l2_nsets));
}

/* CacheArray.set_state(addr, Invalid) on a line known present: state
 * first, then the value undo record, then the state undo record, then
 * the removal (the exact pure ordering the recovery log depends on). */
static int
snoop_invalidate(CSnoopCore *self, PyObject *set, PyObject *line,
                 PyObject *addr_obj)
{
    Py_INCREF(line);
    PyObject *old = PyObject_GetAttr(line, PS.state);
    if (old == NULL) {
        Py_DECREF(line);
        return -1;
    }
    if (PyObject_SetAttr(line, PS.state, self->invalid_state) < 0)
        goto fail;
    PyObject *val = PyObject_GetAttr(line, S.value);
    if (val == NULL)
        goto fail;
    int rc = txn_notify(self->observer, addr_obj, S.value, val, Py_None);
    Py_DECREF(val);
    if (rc < 0)
        goto fail;
    if (txn_notify(self->observer, addr_obj, PS.state, old,
                   self->invalid_state) < 0)
        goto fail;
    Py_DECREF(old);
    Py_DECREF(line);
    return PyDict_DelItem(set, addr_obj);

fail:
    Py_DECREF(old);
    Py_DECREF(line);
    return -1;
}

/* _supply(request, value): count and schedule the data delivery. */
static int
snoop_supply(CSnoopCore *self, PyObject *request, PyObject *value)
{
    if (comp_count(self->counters_dict, self->count_meth,
                   SN.cache_to_cache_transfers) < 0)
        return -1;
    PyObject *dst = PyObject_GetAttr(request, SN.requestor);
    if (dst == NULL)
        return -1;
    PyObject *addr = PyObject_GetAttr(request, PS.address);
    if (addr == NULL) {
        Py_DECREF(dst);
        return -1;
    }
    CSupplyThunk *t = PyObject_GC_New(CSupplyThunk, &CSupplyThunk_Type);
    if (t == NULL) {
        Py_DECREF(dst);
        Py_DECREF(addr);
        return -1;
    }
    Py_INCREF(self->deliver);
    t->deliver = self->deliver;
    t->dst = dst;               /* reference transferred */
    t->addr = addr;             /* reference transferred */
    PyObject *v = (value == Py_None) ? self->zero_obj : value;
    Py_INCREF(v);
    t->value = v;
    PyObject_GC_Track((PyObject *)t);
    PyObject *ev = queue_push_internal(self->cqueue,
                                       self->sim->now + self->c2c_cycles, 0,
                                       (PyObject *)t, self->name_obj);
    Py_DECREF(t);
    if (ev == NULL)
        return -1;
    Py_DECREF(ev);
    return 0;
}

/* _finish(request, on_complete, l2_hit_cycles): arm the reusable thunk
 * (fall back to the pure method if it is somehow busy). */
static int
snoop_finish_schedule(CSnoopCore *self, PyObject *request,
                      PyObject *on_complete)
{
    CSnoopFinishThunk *ft = (CSnoopFinishThunk *)self->finish_thunk;
    if (ft->request != NULL) {
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->finish_meth, request, on_complete, self->l2_hit_obj, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    Py_INCREF(request);
    ft->request = request;
    Py_INCREF(on_complete);
    ft->cb = on_complete;
    PyObject *ev = queue_push_internal(self->cqueue,
                                       self->sim->now + self->l2_hit_cycles,
                                       0, (PyObject *)ft, self->name_obj);
    if (ev == NULL)
        return -1;
    Py_DECREF(ev);
    return 0;
}

/* _pending_store_txn(address): 1 when our outstanding, already-ordered
 * RequestReadWrite for `address` still owes forwards. */
static int
snoop_pending_store(CSnoopCore *self, PyObject *txn, PyObject *addr_obj)
{
    if (txn == Py_None)
        return 0;
    PyObject *taddr = PyObject_GetAttr(txn, PS.address);
    if (taddr == NULL)
        return -1;
    int same = PyObject_RichCompareBool(taddr, addr_obj, Py_EQ);
    Py_DECREF(taddr);
    if (same <= 0)
        return same;
    PyObject *tmp = PyObject_GetAttr(txn, TS.completed);
    if (tmp == NULL)
        return -1;
    int truth = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (truth != 0)
        return truth < 0 ? -1 : 0;
    PyObject *op = PyObject_GetAttr(txn, TS.op);
    if (op == NULL)
        return -1;
    int is_store = (op == self->store_op);
    Py_DECREF(op);
    if (!is_store)
        return 0;
    tmp = PyObject_GetAttr(txn, TS.data_received);
    if (tmp == NULL)
        return -1;
    truth = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (truth != 0)
        return truth < 0 ? -1 : 0;
    tmp = PyObject_GetAttr(txn, SN.bus_ordered);
    if (tmp == NULL)
        return -1;
    truth = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (truth <= 0)
        return truth;
    int in = PySet_Contains(self->passed_set, addr_obj);
    if (in < 0)
        return -1;
    return in ? 0 : 1;
}

/* The ordered-load late-invalidate test of _snoop_foreign_getx. */
static int
snoop_pending_ordered_load(CSnoopCore *self, PyObject *txn,
                           PyObject *addr_obj)
{
    if (txn == Py_None)
        return 0;
    PyObject *taddr = PyObject_GetAttr(txn, PS.address);
    if (taddr == NULL)
        return -1;
    int same = PyObject_RichCompareBool(taddr, addr_obj, Py_EQ);
    Py_DECREF(taddr);
    if (same <= 0)
        return same;
    PyObject *tmp = PyObject_GetAttr(txn, TS.completed);
    if (tmp == NULL)
        return -1;
    int truth = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (truth != 0)
        return truth < 0 ? -1 : 0;
    PyObject *op = PyObject_GetAttr(txn, TS.op);
    if (op == NULL)
        return -1;
    int is_load = (op == self->load_op);
    Py_DECREF(op);
    if (!is_load)
        return 0;
    tmp = PyObject_GetAttr(txn, SN.bus_ordered);
    if (tmp == NULL)
        return -1;
    truth = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (truth <= 0)
        return truth;
    tmp = PyObject_GetAttr(txn, TS.data_received);
    if (tmp == NULL)
        return -1;
    truth = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (truth < 0)
        return -1;
    return truth ? 0 : 1;
}

/* _pending_forwards.setdefault(addr, []).append(request). */
static int
snoop_defer_forward(CSnoopCore *self, PyObject *addr_obj, PyObject *request)
{
    PyObject *lst = PyDict_GetItemWithError(self->forwards_dict, addr_obj);
    if (lst != NULL)
        return PyList_Append(lst, request);
    if (PyErr_Occurred())
        return -1;
    lst = PyList_New(0);
    if (lst == NULL)
        return -1;
    int rc = PyDict_SetItem(self->forwards_dict, addr_obj, lst);
    if (rc == 0)
        rc = PyList_Append(lst, request);
    Py_DECREF(lst);
    return rc;
}

/* _transaction_done for the controller's single outstanding transaction
 * (inlined _complete_current). */
static int
snoop_txn_done(CSnoopCore *self, PyObject *txn)
{
    if (PyObject_SetAttr(self->ctrl, TS.transaction, Py_None) < 0)
        return -1;
    PyObject *res = PyObject_CallOneArg(self->on_retire, self->node_obj);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    if (comp_count(self->counters_dict, self->count_meth,
                   TS.transactions_completed) < 0)
        return -1;
    PyObject *request = PyObject_GetAttr(self->ctrl, TS.pending_request);
    if (request == NULL)
        return -1;
    PyObject *oc = PyObject_GetAttr(self->ctrl, TS.pending_on_complete);
    if (oc == NULL) {
        Py_DECREF(request);
        return -1;
    }
    PyObject *taddr_obj = PyObject_GetAttr(txn, PS.address);
    if (taddr_obj == NULL)
        goto fail_oc;
    long long taddr = PyLong_AsLongLong(taddr_obj);
    if (taddr == -1 && PyErr_Occurred())
        goto fail_addr;
    PyObject *set = snoop_set_for(self, taddr);
    PyObject *line = PyDict_GetItemWithError(set, taddr_obj);
    if (line == NULL && PyErr_Occurred())
        goto fail_addr;
    PyObject *req_op = PyObject_GetAttr(request, TS.op);
    if (req_op == NULL)
        goto fail_addr;
    if (req_op == self->store_op) {
        Py_DECREF(req_op);
        if (line != NULL) {
            PyObject *rvalue = PyObject_GetAttr(request, S.value);
            if (rvalue == NULL)
                goto fail_addr;
            if (rvalue != Py_None &&
                txn_set_value(self->observer, line, taddr_obj, rvalue) < 0) {
                Py_DECREF(rvalue);
                goto fail_addr;
            }
            Py_DECREF(rvalue);
        }
    }
    else {
        Py_DECREF(req_op);
        PyObject *lvalue = NULL;
        if (line != NULL) {
            lvalue = PyObject_GetAttr(line, S.value);
            if (lvalue == NULL)
                goto fail_addr;
        }
        if (lvalue == NULL || lvalue == Py_None) {
            /* Late-invalidated load: the data satisfied the load but the
             * line was not retained. */
            Py_XDECREF(lvalue);
            lvalue = PyObject_GetAttr(txn, SN.value_hint);
            if (lvalue == NULL)
                goto fail_addr;
        }
        int rc = PyObject_SetAttr(request, S.value, lvalue);
        Py_DECREF(lvalue);
        if (rc < 0)
            goto fail_addr;
    }
    if (setattr_ll(request, TS.completed_at, self->sim->now) < 0)
        goto fail_addr;
    res = PyObject_CallOneArg(oc, request);
    Py_DECREF(oc);
    Py_DECREF(request);
    Py_DECREF(taddr_obj);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;

fail_addr:
    Py_DECREF(taddr_obj);
fail_oc:
    Py_DECREF(oc);
    Py_DECREF(request);
    return -1;
}

/* _install_line fast path: upgrade-in-place and fresh-allocate into a
 * non-full set; the full-set case (victim choice + eviction + retry)
 * falls back to the pure method. */
static int
snoop_install(CSnoopCore *self, PyObject *txn, PyObject *value,
              PyObject *addr_obj, long long addr)
{
    PyObject *op = PyObject_GetAttr(txn, TS.op);
    if (op == NULL)
        return -1;
    PyObject *target = (op == self->load_op) ? self->shared_state
                                             : self->modified_state;
    Py_DECREF(op);
    PyObject *set = snoop_set_for(self, addr);
    PyObject *existing = PyDict_GetItemWithError(set, addr_obj);
    if (existing == NULL && PyErr_Occurred())
        return -1;
    if (existing != NULL) {
        if (txn_set_state(self->observer, existing, addr_obj, target) < 0)
            return -1;
        return txn_set_value(self->observer, existing, addr_obj, value);
    }
    if (PyDict_GET_SIZE(set) >= (Py_ssize_t)self->assoc) {
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->pure_install, txn, value, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    /* CacheArray.allocate into a non-full set. */
    long long tick;
    if (getattr_ll(self->cache, TS.tick, &tick) < 0)
        return -1;
    tick += 1;
    if (setattr_ll(self->cache, TS.tick, tick) < 0)
        return -1;
    PyObject *tick_obj = PyLong_FromLongLong(tick);
    if (tick_obj == NULL)
        return -1;
    PyObject *line = PyObject_CallFunctionObjArgs(
        self->line_cls, addr_obj, target, value, tick_obj, NULL);
    Py_DECREF(tick_obj);
    if (line == NULL)
        return -1;
    int rc = PyDict_SetItem(set, addr_obj, line);
    Py_DECREF(line);
    if (rc < 0)
        return -1;
    if (txn_notify(self->observer, addr_obj, PS.state, self->invalid_state,
                   target) < 0)
        return -1;
    if (value != Py_None &&
        txn_notify(self->observer, addr_obj, S.value, Py_None, value) < 0)
        return -1;
    return 0;
}

/* receive_data(address, value): install + complete + pending forwards. */
static int
snoop_receive_impl(CSnoopCore *self, PyObject *addr_obj, PyObject *value)
{
    PyObject *txn = PyObject_GetAttr(self->ctrl, TS.transaction);
    if (txn == NULL)
        return -1;
    int stale = (txn == Py_None);
    if (!stale) {
        PyObject *taddr = PyObject_GetAttr(txn, PS.address);
        if (taddr == NULL)
            goto fail;
        int differs = PyObject_RichCompareBool(taddr, addr_obj, Py_NE);
        Py_DECREF(taddr);
        if (differs < 0)
            goto fail;
        stale = differs;
    }
    if (!stale) {
        PyObject *tmp = PyObject_GetAttr(txn, TS.completed);
        if (tmp == NULL)
            goto fail;
        stale = PyObject_IsTrue(tmp);
        Py_DECREF(tmp);
        if (stale < 0)
            goto fail;
    }
    if (stale) {
        Py_DECREF(txn);
        return comp_count(self->counters_dict, self->count_meth,
                          SN.stale_data);
    }
    PyObject *tmp = PyObject_GetAttr(txn, TS.data_received);
    if (tmp == NULL)
        goto fail;
    int dup = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (dup < 0)
        goto fail;
    if (dup) {
        Py_DECREF(txn);
        return comp_count(self->counters_dict, self->count_meth,
                          SN.duplicate_data);
    }
    if (PyObject_SetAttr(txn, TS.data_received, Py_True) < 0 ||
        PyObject_SetAttr(txn, SN.value_hint, value) < 0)
        goto fail;
    long long addr = PyLong_AsLongLong(addr_obj);
    if (addr == -1 && PyErr_Occurred())
        goto fail;
    if (snoop_install(self, txn, value, addr_obj, addr) < 0)
        goto fail;
    /* Late invalidate: keep the value for this one load, drop the line. */
    PyObject *flag = PyObject_GetAttr(txn, SN.invalidate_on_install);
    if (flag == NULL)
        goto fail;
    int inval = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    if (inval < 0)
        goto fail;
    if (inval) {
        PyObject *set = snoop_set_for(self, addr);
        PyObject *line = PyDict_GetItemWithError(set, addr_obj);
        if (line == NULL && PyErr_Occurred())
            goto fail;
        if (line != NULL && snoop_invalidate(self, set, line, addr_obj) < 0)
            goto fail;
    }
    /* Transaction.complete(). */
    tmp = PyObject_GetAttr(txn, TS.completed);
    if (tmp == NULL)
        goto fail;
    int done = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (done < 0)
        goto fail;
    if (!done) {
        if (PyObject_SetAttr(txn, TS.completed, Py_True) < 0)
            goto fail;
        PyObject *te = PyObject_GetAttr(txn, TS.timeout_event);
        if (te == NULL)
            goto fail;
        if (te != Py_None) {
            PyObject *res = PyObject_CallMethodNoArgs(te, TS.cancel);
            Py_DECREF(te);
            if (res == NULL)
                goto fail;
            Py_DECREF(res);
            if (PyObject_SetAttr(txn, TS.timeout_event, Py_None) < 0)
                goto fail;
        }
        else
            Py_DECREF(te);
        PyObject *oc = PyObject_GetAttr(txn, TS.on_complete_attr);
        if (oc == NULL)
            goto fail;
        if (oc == self->complete_cb) {
            Py_DECREF(oc);
            if (snoop_txn_done(self, txn) < 0)
                goto fail;
        }
        else if (oc != Py_None) {
            /* A transaction issued by the pure path (slow-start retry)
             * completes through its own bound _complete_current. */
            PyObject *res = PyObject_CallOneArg(oc, txn);
            Py_DECREF(oc);
            if (res == NULL)
                goto fail;
            Py_DECREF(res);
        }
        else
            Py_DECREF(oc);
    }
    /* _process_pending_forwards: the pure method pops + supplies; when
     * nothing is pending only the ownership-passed entry is dropped. */
    if (PyDict_GET_SIZE(self->forwards_dict) != 0) {
        PyObject *pending = PyDict_GetItemWithError(self->forwards_dict,
                                                    addr_obj);
        if (pending == NULL && PyErr_Occurred())
            goto fail;
        if (pending != NULL) {
            PyObject *res = PyObject_CallOneArg(self->forwards_meth,
                                                addr_obj);
            if (res == NULL)
                goto fail;
            Py_DECREF(res);
            Py_DECREF(txn);
            return 0;
        }
    }
    if (PySet_Discard(self->passed_set, addr_obj) < 0)
        goto fail;
    Py_DECREF(txn);
    return 0;

fail:
    Py_DECREF(txn);
    return -1;
}

/* _issue_transaction fast path.  Caller guarantees ctrl.transaction is
 * None (it routes to the pure method otherwise, which raises). */
static int
snoop_issue(CSnoopCore *self, PyObject *request, PyObject *on_complete,
            PyObject *addr_obj, int is_load)
{
    PyObject *gate = PyObject_CallOneArg(self->may_issue, self->node_obj);
    if (gate == NULL)
        return -1;
    int allowed = PyObject_IsTrue(gate);
    Py_DECREF(gate);
    if (allowed < 0)
        return -1;
    if (!allowed) {
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->retry_meth, request, on_complete, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    PyObject *now_obj = PyLong_FromLongLong(self->sim->now);
    if (now_obj == NULL)
        return -1;
    PyObject *op = PyObject_GetAttr(request, TS.op);
    if (op == NULL) {
        Py_DECREF(now_obj);
        return -1;
    }
    PyObject *txn = PyObject_CallFunctionObjArgs(
        self->txn_cls, self->node_obj, addr_obj, op, now_obj, NULL);
    Py_DECREF(op);
    Py_DECREF(now_obj);
    if (txn == NULL)
        return -1;
    if (PyObject_SetAttr(self->ctrl, TS.pending_request, request) < 0 ||
        PyObject_SetAttr(self->ctrl, TS.pending_on_complete,
                         on_complete) < 0 ||
        PyObject_SetAttr(txn, TS.on_complete_attr, self->complete_cb) < 0 ||
        PyObject_SetAttr(self->ctrl, TS.transaction, txn) < 0)
        goto fail;

    PyObject *tc = PyObject_GetAttr(self->ctrl, TS.timeout_cycles);
    if (tc == NULL)
        goto fail;
    if (tc != Py_None) {
        long long cycles = PyLong_AsLongLong(tc);
        Py_DECREF(tc);
        if (cycles == -1 && PyErr_Occurred())
            goto fail;
        CSnoopTimeoutThunk *tt = (CSnoopTimeoutThunk *)self->timeout_thunk;
        Py_INCREF(txn);
        Py_XSETREF(tt->txn, txn);
        PyObject *ev = queue_push_internal(self->cqueue,
                                           self->sim->now + cycles, 0,
                                           (PyObject *)tt, self->name_obj);
        if (ev == NULL)
            goto fail;
        int rc = PyObject_SetAttr(txn, TS.timeout_event, ev);
        Py_DECREF(ev);
        if (rc < 0)
            goto fail;
    }
    else
        Py_DECREF(tc);

    PyObject *busreq = PyObject_CallFunctionObjArgs(
        self->busreq_cls, self->node_obj, addr_obj,
        is_load ? self->gets_type : self->getx_type, NULL);
    if (busreq == NULL)
        goto fail;
    PyObject *res = PyObject_CallOneArg(self->bus_issue, busreq);
    Py_DECREF(busreq);
    if (res == NULL)
        goto fail;
    Py_DECREF(res);
    if (comp_count(self->counters_dict, self->count_meth,
                   TS.transactions_issued) < 0)
        goto fail;
    Py_DECREF(txn);
    return 0;

fail:
    Py_DECREF(txn);
    return -1;
}

/* access(request, on_complete): the snooping controller's entry point. */
static PyObject *
SnoopCore_access(CSnoopCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "access expects (request, on_complete)");
        return NULL;
    }
    PyObject *request = args[0];
    PyObject *on_complete = args[1];
    if (setattr_ll(request, PS.issued_at, self->sim->now) < 0)
        return NULL;
    PyObject *addr_obj = PyObject_GetAttr(request, PS.address);
    if (addr_obj == NULL)
        return NULL;
    long long addr = PyLong_AsLongLong(addr_obj);
    if (addr == -1 && PyErr_Occurred())
        goto fail;
    PyObject *set = snoop_set_for(self, addr);
    PyObject *line = PyDict_GetItemWithError(set, addr_obj);  /* borrowed */
    if (line == NULL && PyErr_Occurred())
        goto fail;
    PyObject *state = NULL;  /* new ref */
    if (line != NULL) {
        /* lookup() touches LRU state. */
        long long tick;
        if (getattr_ll(self->cache, TS.tick, &tick) < 0)
            goto fail;
        tick += 1;
        if (setattr_ll(self->cache, TS.tick, tick) < 0 ||
            setattr_ll(line, TS.last_used, tick) < 0)
            goto fail;
        state = PyObject_GetAttr(line, PS.state);
        if (state == NULL)
            goto fail;
    }
    else {
        state = self->invalid_state;
        Py_INCREF(state);
    }
    PyObject *op = PyObject_GetAttr(request, TS.op);
    if (op == NULL) {
        Py_DECREF(state);
        goto fail;
    }
    int is_load = (op == self->load_op);
    Py_DECREF(op);

    if (is_load && state != self->invalid_state) {
        /* Load hit: any valid state has readable data. */
        Py_DECREF(state);
        if (addattr_ll(self->cache, PS.hits, 1) < 0 ||
            comp_count(self->counters_dict, self->count_meth,
                       TS.load_hits) < 0)
            goto fail;
        PyObject *lvalue = PyObject_GetAttr(line, S.value);
        if (lvalue == NULL)
            goto fail;
        int rc = PyObject_SetAttr(request, S.value, lvalue);
        Py_DECREF(lvalue);
        if (rc < 0)
            goto fail;
        if (snoop_finish_schedule(self, request, on_complete) < 0)
            goto fail;
        Py_DECREF(addr_obj);
        Py_RETURN_NONE;
    }
    if (!is_load &&
        (state == self->modified_state || state == self->exclusive_state)) {
        /* Store hit with write permission. */
        if (addattr_ll(self->cache, PS.hits, 1) < 0 ||
            comp_count(self->counters_dict, self->count_meth,
                       TS.store_hits) < 0) {
            Py_DECREF(state);
            goto fail;
        }
        if (state == self->exclusive_state &&
            txn_set_state(self->observer, line, addr_obj,
                          self->modified_state) < 0) {
            Py_DECREF(state);
            goto fail;
        }
        Py_DECREF(state);
        PyObject *rvalue = PyObject_GetAttr(request, S.value);
        if (rvalue == NULL)
            goto fail;
        int rc = txn_set_value(self->observer, line, addr_obj, rvalue);
        Py_DECREF(rvalue);
        if (rc < 0)
            goto fail;
        if (snoop_finish_schedule(self, request, on_complete) < 0)
            goto fail;
        Py_DECREF(addr_obj);
        Py_RETURN_NONE;
    }
    Py_DECREF(state);

    /* Miss. */
    if (addattr_ll(self->cache, TS.misses, 1) < 0 ||
        comp_count(self->counters_dict, self->count_meth,
                   is_load ? TS.load_misses : TS.store_misses) < 0)
        goto fail;
    PyObject *txn = PyObject_GetAttr(self->ctrl, TS.transaction);
    if (txn == NULL)
        goto fail;
    if (txn != Py_None) {
        /* Busy controller: the pure method raises the protocol error. */
        Py_DECREF(txn);
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->pure_issue, request, on_complete, NULL);
        if (res == NULL)
            goto fail;
        Py_DECREF(res);
        Py_DECREF(addr_obj);
        Py_RETURN_NONE;
    }
    Py_DECREF(txn);
    if (snoop_issue(self, request, on_complete, addr_obj, is_load) < 0)
        goto fail;
    Py_DECREF(addr_obj);
    Py_RETURN_NONE;

fail:
    Py_DECREF(addr_obj);
    return NULL;
}

/* snoop(request) -> bool: own-request ordering + foreign MOESI snoops. */
static PyObject *
SnoopCore_snoop(CSnoopCore *self, PyObject *request)
{
    PyObject *req_node = PyObject_GetAttr(request, SN.requestor);
    if (req_node == NULL)
        return NULL;
    int own = PyObject_RichCompareBool(req_node, self->node_obj, Py_EQ);
    Py_DECREF(req_node);
    if (own < 0)
        return NULL;
    PyObject *rtype = PyObject_GetAttr(request, SN.rtype);
    if (rtype == NULL)
        return NULL;
    PyObject *addr_obj = PyObject_GetAttr(request, PS.address);
    if (addr_obj == NULL) {
        Py_DECREF(rtype);
        return NULL;
    }
    PyObject *result = NULL;

    if (own) {
        if (rtype == self->wb_type) {
            /* Own writeback ordered on the bus. */
            PyObject *record = PyDict_GetItemWithError(self->writebacks_dict,
                                                       addr_obj);
            if (record == NULL && PyErr_Occurred())
                goto done;
            if (record != NULL) {
                if (PyDict_DelItem(self->writebacks_dict, addr_obj) < 0)
                    goto done;
                if (comp_count(self->counters_dict, self->count_meth,
                               SN.writebacks_ordered) < 0)
                    goto done;
            }
            result = Py_False;
            goto done;
        }
        PyObject *txn = PyObject_GetAttr(self->ctrl, TS.transaction);
        if (txn == NULL)
            goto done;
        int matches = 0;
        if (txn != Py_None) {
            PyObject *taddr = PyObject_GetAttr(txn, PS.address);
            if (taddr == NULL) {
                Py_DECREF(txn);
                goto done;
            }
            matches = PyObject_RichCompareBool(taddr, addr_obj, Py_EQ);
            Py_DECREF(taddr);
            if (matches < 0) {
                Py_DECREF(txn);
                goto done;
            }
        }
        if (!matches) {
            Py_DECREF(txn);
            result = Py_False;
            goto done;
        }
        if (comp_count(self->counters_dict, self->count_meth,
                       SN.own_request_ordered) < 0 ||
            PyObject_SetAttr(txn, SN.bus_ordered, Py_True) < 0) {
            Py_DECREF(txn);
            goto done;
        }
        Py_DECREF(txn);
        long long addr = PyLong_AsLongLong(addr_obj);
        if (addr == -1 && PyErr_Occurred())
            goto done;
        PyObject *set = snoop_set_for(self, addr);
        PyObject *line = PyDict_GetItemWithError(set, addr_obj);
        if (line == NULL && PyErr_Occurred())
            goto done;
        if (line != NULL) {
            PyObject *state = PyObject_GetAttr(line, PS.state);
            if (state == NULL)
                goto done;
            int valid = (state != self->invalid_state);
            Py_DECREF(state);
            if (valid) {
                /* Hit own valid copy at order time: self-deliver at +1. */
                PyObject *lvalue = PyObject_GetAttr(line, S.value);
                if (lvalue == NULL)
                    goto done;
                if (lvalue == Py_None)
                    Py_SETREF(lvalue, Py_NewRef(self->zero_obj));
                CSnoopRecvThunk *rt = PyObject_GC_New(CSnoopRecvThunk,
                                                      &CSnoopRecvThunk_Type);
                if (rt == NULL) {
                    Py_DECREF(lvalue);
                    goto done;
                }
                Py_INCREF(self);
                rt->core = self;
                Py_INCREF(addr_obj);
                rt->addr = addr_obj;
                rt->value = lvalue;  /* steal */
                PyObject_GC_Track((PyObject *)rt);
                PyObject *ev = queue_push_internal(self->cqueue,
                                                   self->sim->now + 1, 0,
                                                   (PyObject *)rt,
                                                   self->name_obj);
                Py_DECREF(rt);
                if (ev == NULL)
                    goto done;
                Py_DECREF(ev);
                result = Py_True;
                goto done;
            }
        }
        result = Py_False;
        goto done;
    }

    /* Foreign request. */
    if (rtype == self->wb_type) {
        result = Py_False;
        goto done;
    }
    long long addr = PyLong_AsLongLong(addr_obj);
    if (addr == -1 && PyErr_Occurred())
        goto done;
    PyObject *set = snoop_set_for(self, addr);
    PyObject *line = PyDict_GetItemWithError(set, addr_obj);  /* borrowed */
    if (line == NULL && PyErr_Occurred())
        goto done;
    PyObject *state;  /* new ref */
    if (line != NULL) {
        Py_INCREF(line);  /* hold across invalidation */
        state = PyObject_GetAttr(line, PS.state);
        if (state == NULL) {
            Py_DECREF(line);
            goto done;
        }
    }
    else {
        state = self->invalid_state;
        Py_INCREF(state);
    }
    PyObject *record = PyDict_GetItemWithError(self->writebacks_dict,
                                               addr_obj);
    if (record == NULL && PyErr_Occurred()) {
        Py_XDECREF(line);
        Py_DECREF(state);
        goto done;
    }
    Py_XINCREF(record);
    int is_owner = (state == self->modified_state ||
                    state == self->owned_state ||
                    state == self->exclusive_state);

    if (rtype == self->gets_type) {
        if (is_owner) {
            if ((state == self->modified_state ||
                 state == self->exclusive_state) &&
                txn_set_state(self->observer, line, addr_obj,
                              self->owned_state) < 0)
                goto fail_foreign;
            PyObject *lvalue = PyObject_GetAttr(line, S.value);
            if (lvalue == NULL)
                goto fail_foreign;
            int rc = snoop_supply(self, request, lvalue);
            Py_DECREF(lvalue);
            if (rc < 0)
                goto fail_foreign;
            result = Py_True;
            goto done_foreign;
        }
        if (record != NULL) {
            PyObject *phase = PyObject_GetAttr(record, SN.phase);
            if (phase == NULL)
                goto fail_foreign;
            int waiting = (phase == self->waiting_phase);
            Py_DECREF(phase);
            if (waiting) {
                PyObject *rvalue = PyObject_GetAttr(record, S.value);
                if (rvalue == NULL)
                    goto fail_foreign;
                int rc = snoop_supply(self, request, rvalue);
                Py_DECREF(rvalue);
                if (rc < 0)
                    goto fail_foreign;
                result = Py_True;
                goto done_foreign;
            }
        }
        PyObject *txn = PyObject_GetAttr(self->ctrl, TS.transaction);
        if (txn == NULL)
            goto fail_foreign;
        int pending = snoop_pending_store(self, txn, addr_obj);
        Py_DECREF(txn);
        if (pending < 0)
            goto fail_foreign;
        if (pending) {
            if (snoop_defer_forward(self, addr_obj, request) < 0 ||
                comp_count(self->counters_dict, self->count_meth,
                           SN.forwards_deferred) < 0)
                goto fail_foreign;
            result = Py_True;
            goto done_foreign;
        }
        result = Py_False;
        goto done_foreign;
    }

    /* GETX */
    {
        int supplied = 0;
        if (is_owner) {
            PyObject *lvalue = PyObject_GetAttr(line, S.value);
            if (lvalue == NULL)
                goto fail_foreign;
            int rc = snoop_supply(self, request, lvalue);
            Py_DECREF(lvalue);
            if (rc < 0)
                goto fail_foreign;
            supplied = 1;
        }
        if (state != self->invalid_state) {
            if (snoop_invalidate(self, set, line, addr_obj) < 0)
                goto fail_foreign;
        }
        PyObject *txn = PyObject_GetAttr(self->ctrl, TS.transaction);
        if (txn == NULL)
            goto fail_foreign;
        int pending = snoop_pending_store(self, txn, addr_obj);
        if (pending < 0) {
            Py_DECREF(txn);
            goto fail_foreign;
        }
        if (pending) {
            /* Our pending store will win the line later; remember that
             * ownership already passed to this requestor. */
            if (snoop_defer_forward(self, addr_obj, request) < 0 ||
                PySet_Add(self->passed_set, addr_obj) < 0 ||
                comp_count(self->counters_dict, self->count_meth,
                           SN.forwards_deferred) < 0) {
                Py_DECREF(txn);
                goto fail_foreign;
            }
            supplied = 1;
        }
        else {
            int ordered_load = snoop_pending_ordered_load(self, txn,
                                                          addr_obj);
            if (ordered_load < 0) {
                Py_DECREF(txn);
                goto fail_foreign;
            }
            if (ordered_load) {
                if (PyObject_SetAttr(txn, SN.invalidate_on_install,
                                     Py_True) < 0 ||
                    comp_count(self->counters_dict, self->count_meth,
                               SN.late_invalidates) < 0) {
                    Py_DECREF(txn);
                    goto fail_foreign;
                }
            }
        }
        Py_DECREF(txn);
        if (record != NULL) {
            PyObject *phase = PyObject_GetAttr(record, SN.phase);
            if (phase == NULL)
                goto fail_foreign;
            if (phase == self->waiting_phase) {
                Py_DECREF(phase);
                PyObject *rvalue = PyObject_GetAttr(record, S.value);
                if (rvalue == NULL)
                    goto fail_foreign;
                int rc = snoop_supply(self, request, rvalue);
                Py_DECREF(rvalue);
                if (rc < 0)
                    goto fail_foreign;
                if (PyObject_SetAttr(record, SN.phase,
                                     self->lost_phase) < 0)
                    goto fail_foreign;
                PyObject *rreq = PyObject_GetAttr(record,
                                                  SN.record_request);
                if (rreq == NULL)
                    goto fail_foreign;
                rc = PyObject_SetAttr(rreq, S.value, Py_None);
                Py_DECREF(rreq);
                if (rc < 0)
                    goto fail_foreign;
                if (comp_count(self->counters_dict, self->count_meth,
                               SN.writeback_race_first_getx) < 0)
                    goto fail_foreign;
                supplied = 1;
            }
            else if (phase == self->lost_phase) {
                Py_DECREF(phase);
                PyObject *res = PyObject_CallOneArg(self->corner_meth,
                                                    request);
                if (res == NULL)
                    goto fail_foreign;
                Py_DECREF(res);
            }
            else
                Py_DECREF(phase);
        }
        result = supplied ? Py_True : Py_False;
        goto done_foreign;
    }

fail_foreign:
    Py_XDECREF(record);
    Py_XDECREF(line);
    Py_DECREF(state);
    goto done;
done_foreign:
    Py_XDECREF(record);
    Py_XDECREF(line);
    Py_DECREF(state);
done:
    Py_DECREF(rtype);
    Py_DECREF(addr_obj);
    if (result == NULL)
        return NULL;
    Py_INCREF(result);
    return result;
}

static PyObject *
SnoopCore_receive_data(CSnoopCore *self, PyObject *const *args,
                       Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "receive_data expects (address, value)");
        return NULL;
    }
    if (snoop_receive_impl(self, args[0], args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef SnoopCore_methods[] = {
    {"access", (PyCFunction)(void (*)(void))SnoopCore_access,
     METH_FASTCALL, "compiled SnoopingCacheController.access"},
    {"snoop", (PyCFunction)SnoopCore_snoop, METH_O,
     "compiled SnoopingCacheController.snoop"},
    {"receive_data", (PyCFunction)(void (*)(void))SnoopCore_receive_data,
     METH_FASTCALL, "compiled SnoopingCacheController.receive_data"},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject CSnoopCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.SnoopCore",
    .tp_basicsize = sizeof(CSnoopCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled snooping cache-controller transition handlers",
    .tp_new = SnoopCore_new,
    .tp_dealloc = (destructor)SnoopCore_dealloc,
    .tp_traverse = (traverseproc)SnoopCore_traverse,
    .tp_clear = (inquiry)SnoopCore_clear_gc,
    .tp_methods = SnoopCore_methods,
};

static PyMethodDef module_methods[] = {
    {NULL}
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._ckernel",
    .m_doc = "Compiled kernel tier (byte-identical to the pure-Python "
             "kernel; see repro.kernel for selection).",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *engine = PyImport_ImportModule("repro.sim.engine");
    if (engine == NULL)
        return NULL;
    SimulationError = PyObject_GetAttrString(engine, "SimulationError");
    Py_DECREF(engine);
    if (SimulationError == NULL)
        return NULL;
    empty_string = PyUnicode_InternFromString("");
    if (empty_string == NULL)
        return NULL;

    if (PyType_Ready(&CEvent_Type) < 0 ||
        PyType_Ready(&CEventQueue_Type) < 0 ||
        PyType_Ready(&CDrainIter_Type) < 0 ||
        PyType_Ready(&CSimulator_Type) < 0 ||
        PyType_Ready(&CSwitchCore_Type) < 0 ||
        PyType_Ready(&CForwardThunk_Type) < 0 ||
        PyType_Ready(&CDeliverThunk_Type) < 0 ||
        PyType_Ready(&CUndoRecord_Type) < 0 ||
        PyType_Ready(&CLogObserver_Type) < 0 ||
        PyType_Ready(&CProcCore_Type) < 0 ||
        PyType_Ready(&CSendCore_Type) < 0 ||
        PyType_Ready(&CRecvCore_Type) < 0 ||
        PyType_Ready(&CBusCore_Type) < 0 ||
        PyType_Ready(&CBusSnoopThunk_Type) < 0 ||
        PyType_Ready(&CTxnCore_Type) < 0 ||
        PyType_Ready(&CTxnFinishThunk_Type) < 0 ||
        PyType_Ready(&CTxnTimeoutThunk_Type) < 0 ||
        PyType_Ready(&CMemCore_Type) < 0 ||
        PyType_Ready(&CSnoopCore_Type) < 0 ||
        PyType_Ready(&CSnoopFinishThunk_Type) < 0 ||
        PyType_Ready(&CSnoopTimeoutThunk_Type) < 0 ||
        PyType_Ready(&CSupplyThunk_Type) < 0 ||
        PyType_Ready(&CSnoopRecvThunk_Type) < 0)
        return NULL;

    /* Interned attribute names for the switch-core hot paths. */
#define INTERN(field, text)                                             \
    do {                                                                \
        S.field = PyUnicode_InternFromString(text);                     \
        if (S.field == NULL)                                            \
            return NULL;                                                \
    } while (0)
    INTERN(reserved, "_reserved");
    INTERN(total_enqueued, "total_enqueued");
    INTERN(peak_occupancy, "peak_occupancy");
    INTERN(name, "name");
    INTERN(busy_until, "busy_until");
    INTERN(busy_cycles, "busy_cycles");
    INTERN(messages_carried, "messages_carried");
    INTERN(bytes_carried, "bytes_carried");
    INTERN(hops, "hops");
    INTERN(dst, "dst");
    INTERN(src, "src");
    INTERN(vnet, "vnet");
    INTERN(size_bytes, "size_bytes");
    INTERN(value, "value");
    INTERN(flush_epoch, "flush_epoch");
    INTERN(messages_forwarded, "messages_forwarded");
    INTERN(messages_ejected, "messages_ejected");
    INTERN(blocked_events, "blocked_events");
    INTERN(c_injected, "_c_injected");
    INTERN(c_ejected, "_c_ejected");
    INTERN(c_forwarded, "_c_forwarded");
    INTERN(queue_attr, "_queue");
    INTERN(popleft, "popleft");
    INTERN(append, "append");
    INTERN(core_attr, "_core");
    INTERN(capacity_attr, "capacity");
    INTERN(latency_cycles_attr, "latency_cycles");
    INTERN(delivered_at, "delivered_at");
    INTERN(injected_at, "injected_at");
    INTERN(messages_delivered, "messages_delivered");
    INTERN(total_message_latency, "total_message_latency");
    INTERN(delivered, "delivered");
    INTERN(receive, "receive");
    INTERN(ordering, "ordering");
    INTERN(note_delivery, "note_delivery");
    INTERN(deliver_label, "deliver");
    INTERN(squashed_net, "network.squashed_in_flight");
    INTERN(delivered_name, "delivered");
    INTERN(reordered_name, "reordered");
    INTERN(send_seq_name, "send_seq");
    INTERN(max_delivered_seq, "max_delivered_seq");
#undef INTERN
#define INTERN(field, text)                                             \
    do {                                                                \
        LS.field = PyUnicode_InternFromString(text);                    \
        if (LS.field == NULL)                                           \
            return NULL;                                                \
    } while (0)
    INTERN(seq, "seq");
    INTERN(tail_seq, "_tail_seq");
    INTERN(tail, "_tail");
    INTERN(total_logged, "total_logged");
    INTERN(occupancy, "_occupancy");
    INTERN(peak_occupancy, "peak_occupancy");
    INTERN(overflow_stalls, "overflow_stalls");
#undef INTERN
#define INTERN(field, text)                                             \
    do {                                                                \
        PS.field = PyUnicode_InternFromString(text);                    \
        if (PS.field == NULL)                                           \
            return NULL;                                                \
    } while (0)
    INTERN(issue_pending, "_issue_pending");
    INTERN(waiting, "_waiting_for_memory");
    INTERN(stalled_until, "stalled_until");
    INTERN(stream_index, "stream_index");
    INTERN(references, "references");
    INTERN(retired_instructions, "retired_instructions");
    INTERN(store_counter, "store_counter");
    INTERN(references_completed, "references_completed");
    INTERN(state, "state");
    INTERN(hits, "hits");
    INTERN(store_value_hook, "_store_value_hook");
    INTERN(counters_attr, "_counters");
    INTERN(l1_hits, "l1_hits");
    INTERN(gap, "gap");
    INTERN(next_send_seq, "next_send_seq");
    INTERN(send_seq, "send_seq");
    INTERN(messages_sent, "messages_sent");
    INTERN(injected, "injected");
    INTERN(sent_name, "sent");
    INTERN(msg_class, "msg_class");
    INTERN(payload, "payload");
    INTERN(address, "address");
    INTERN(issued_at, "issued_at");
    INTERN(ordered_at, "ordered_at");
    INTERN(requests_ordered, "requests_ordered");
    INTERN(busy, "_busy");
    INTERN(snoopers, "_snoopers");
    INTERN(memory_snooper, "_memory_snooper");
    INTERN(ordered_hooks, "_ordered_hooks");
    INTERN(requests_issued, "requests_issued");
    INTERN(arb_label, "bus.arbitrate");
    INTERN(snoop_label, "bus.snoop");
#undef INTERN
#define INTERN(field, text)                                             \
    do {                                                                \
        TS.field = PyUnicode_InternFromString(text);                    \
        if (TS.field == NULL)                                           \
            return NULL;                                                \
    } while (0)
    INTERN(transaction, "transaction");
    INTERN(timeout_cycles, "timeout_cycles");
    INTERN(pending_request, "_pending_request");
    INTERN(pending_on_complete, "_pending_on_complete");
    INTERN(data_received, "data_received");
    INTERN(acks_needed, "acks_needed");
    INTERN(acks_received, "acks_received");
    INTERN(acks_expected, "acks_expected");
    INTERN(completed, "completed");
    INTERN(on_complete_attr, "on_complete");
    INTERN(timeout_event, "timeout_event");
    INTERN(started_at, "started_at");
    INTERN(txn_id, "txn_id");
    INTERN(op, "op");
    INTERN(tick, "_tick");
    INTERN(last_used, "last_used");
    INTERN(misses, "misses");
    INTERN(evictions, "evictions");
    INTERN(completed_at, "completed_at");
    INTERN(miss_hist, "_miss_latency_hist");
    INTERN(mem_hist, "_mem_latency_hist");
    INTERN(buckets, "buckets");
    INTERN(count_name, "count");
    INTERN(total, "total");
    INTERN(min_name, "min");
    INTERN(max_name, "max");
    INTERN(bucket_width, "bucket_width");
    INTERN(cancel, "cancel");
    INTERN(load_hits, "load_hits");
    INTERN(store_hits, "store_hits");
    INTERN(load_misses, "load_misses");
    INTERN(store_misses, "store_misses");
    INTERN(transactions_issued, "transactions_issued");
    INTERN(transactions_completed, "transactions_completed");
    INTERN(stale_data, "stale_data_messages");
    INTERN(duplicate_data, "duplicate_data_messages");
    INTERN(stale_acks, "stale_acks");
    INTERN(memory_references, "memory_references");
#undef INTERN
#define INTERN(field, text)                                             \
    do {                                                                \
        SN.field = PyUnicode_InternFromString(text);                    \
        if (SN.field == NULL)                                           \
            return NULL;                                                \
    } while (0)
    INTERN(requestor, "requestor");
    INTERN(rtype, "rtype");
    INTERN(phase, "phase");
    INTERN(record_request, "request");
    INTERN(bus_ordered, "bus_ordered");
    INTERN(invalidate_on_install, "invalidate_on_install");
    INTERN(value_hint, "value_hint");
    INTERN(writebacks_ordered, "writebacks_ordered");
    INTERN(own_request_ordered, "own_request_ordered");
    INTERN(cache_to_cache_transfers, "cache_to_cache_transfers");
    INTERN(forwards_deferred, "forwards_deferred");
    INTERN(late_invalidates, "late_invalidates");
    INTERN(writeback_race_first_getx, "writeback_race_first_getx");
    INTERN(stale_data, "stale_data");
    INTERN(duplicate_data, "duplicate_data");
#undef INTERN
    delay_kwnames = Py_BuildValue("(s)", "delay");
    if (delay_kwnames == NULL)
        return NULL;

    /* Class constants mirrored from the pure tier (read by callers and
     * tests; the C code itself uses the compile-time macros). */
    if (PyDict_SetItemString(CEventQueue_Type.tp_dict, "COMPACT_MIN_ENTRIES",
                             PyLong_FromLong(COMPACT_MIN_ENTRIES)) < 0 ||
        PyDict_SetItemString(CEventQueue_Type.tp_dict, "FREELIST_MAX",
                             PyLong_FromLong(FREELIST_MAX)) < 0)
        return NULL;

    PyObject *mod = PyModule_Create(&ckernel_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddObjectRef(mod, "Event", (PyObject *)&CEvent_Type) < 0 ||
        PyModule_AddObjectRef(mod, "EventQueue",
                              (PyObject *)&CEventQueue_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Simulator",
                              (PyObject *)&CSimulator_Type) < 0 ||
        PyModule_AddObjectRef(mod, "SwitchCore",
                              (PyObject *)&CSwitchCore_Type) < 0 ||
        PyModule_AddObjectRef(mod, "UndoRecord",
                              (PyObject *)&CUndoRecord_Type) < 0 ||
        PyModule_AddObjectRef(mod, "LogObserver",
                              (PyObject *)&CLogObserver_Type) < 0 ||
        PyModule_AddObjectRef(mod, "ProcessorCore",
                              (PyObject *)&CProcCore_Type) < 0 ||
        PyModule_AddObjectRef(mod, "MessageSendCore",
                              (PyObject *)&CSendCore_Type) < 0 ||
        PyModule_AddObjectRef(mod, "DirectoryReceiveCore",
                              (PyObject *)&CRecvCore_Type) < 0 ||
        PyModule_AddObjectRef(mod, "BusCore",
                              (PyObject *)&CBusCore_Type) < 0 ||
        PyModule_AddObjectRef(mod, "TransactionCore",
                              (PyObject *)&CTxnCore_Type) < 0 ||
        PyModule_AddObjectRef(mod, "MemoryCompleteCore",
                              (PyObject *)&CMemCore_Type) < 0 ||
        PyModule_AddObjectRef(mod, "SnoopCore",
                              (PyObject *)&CSnoopCore_Type) < 0 ||
        PyModule_AddStringConstant(mod, "COMPILER", CKERNEL_COMPILER) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}

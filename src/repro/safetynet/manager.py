"""The SafetyNet coordinator.

One :class:`SafetyNet` instance manages the whole multiprocessor:

* it creates logical checkpoints periodically (every N cycles for the
  directory system, every N coherence requests for the snooping system —
  matching the two logical time bases of Table 2),
* it owns one :class:`~repro.safetynet.log.CheckpointLogBuffer` per node and
  hands out the observer callbacks that cache arrays / directory controllers
  install to log their state changes,
* it commits old checkpoints once they are past the validation window
  (three checkpoint intervals, the same number that bounds the deadlock
  timeout), and
* it performs system-wide recovery: undo the logs back to the recovery
  point, restore every checkpoint participant (processors), run the squash
  hooks (flush the network, drop transient protocol state) and stall
  execution for the recovery latency.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import kernel
from repro.core.events import MisspeculationEvent, RecoveryRecord
from repro.safetynet.checkpoint import Checkpoint, CheckpointParticipant
from repro.safetynet.log import CheckpointLogBuffer, UndoRecord
from repro.sim.config import CheckpointConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

#: Restore callback registered per logged target:
#: restore(address, field, old_value)
RestoreFn = Callable[[int, str, object], None]


class SafetyNet:
    """System-wide checkpoint/recovery mechanism."""

    def __init__(self, sim: Simulator, config: CheckpointConfig, *,
                 num_nodes: int, interval_cycles: Optional[int] = None,
                 interval_requests: Optional[int] = None,
                 stats: Optional[StatsRegistry] = None) -> None:
        if (interval_cycles is None) == (interval_requests is None):
            raise ValueError(
                "exactly one of interval_cycles / interval_requests must be set")
        self.sim = sim
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.num_nodes = num_nodes
        self.interval_cycles = interval_cycles
        self.interval_requests = interval_requests
        self.logs: Dict[int, CheckpointLogBuffer] = {
            node: CheckpointLogBuffer(
                f"sn.log{node}",
                capacity_bytes=config.log_buffer_bytes,
                entry_bytes=config.log_entry_bytes)
            for node in range(num_nodes)}
        self._restore_fns: Dict[str, RestoreFn] = {}
        self._participants: List[CheckpointParticipant] = []
        self._squash_hooks: List[Callable[[], None]] = []
        self._recovery_listeners: List[Callable[[RecoveryRecord], None]] = []
        self._checkpoints: List[Checkpoint] = []
        self._next_seq = 0
        self._requests_seen = 0
        self._active = False
        self.recoveries: List[RecoveryRecord] = []
        #: End of the most recent recovery (execution stalls until then).
        self.stalled_until = 0
        # The initial checkpoint (recovery can never go before time zero).
        self._create_checkpoint()

    # ------------------------------------------------------------------ wiring
    def start(self) -> None:
        """Begin periodic checkpointing (cycle-based systems)."""
        self._active = True
        if self.interval_cycles is not None:
            self.sim.schedule(self.interval_cycles, self._periodic_checkpoint,
                              label="safetynet.checkpoint")

    def register_store(self, target_id: str, node: int, restore: RestoreFn
                       ) -> Callable[[int, str, object, object], None]:
        """Register a logged state store and return its change observer.

        The returned callable has the signature expected by
        :meth:`repro.coherence.cache.CacheArray.set_observer` and
        :meth:`repro.coherence.directory.directory_controller.DirectoryController.set_observer`.
        """
        self._restore_fns[target_id] = restore
        log = self.logs[node]
        # Bind the hot-path lookups once: the observer fires for every
        # logged state change (millions per campaign).  ``checkpoints`` is
        # mutated in place (never reassigned), so [-1] is always current.
        append = log.append
        checkpoints = self._checkpoints
        sim = self.sim
        impl = kernel.engine_impl()
        if impl is not None and isinstance(sim, impl.Simulator):
            # Compiled tier: record construction + append run in C against
            # the same log buffer (commit/discard/queries stay pure).
            return impl.LogObserver(log, checkpoints, target_id, sim)

        def observer(address: int, field: str, old_value: object, new_value: object) -> None:
            append(UndoRecord(
                checkpoint_seq=checkpoints[-1].seq,
                target_id=target_id,
                address=address,
                field=field,
                old_value=old_value,
                logged_at=sim._now))

        return observer

    def register_participant(self, participant: CheckpointParticipant) -> None:
        self._participants.append(participant)
        # Backfill the participant into the initial checkpoint.
        for checkpoint in self._checkpoints:
            checkpoint.snapshots.setdefault(
                participant.participant_id, participant.checkpoint_snapshot())

    def add_squash_hook(self, hook: Callable[[], None]) -> None:
        self._squash_hooks.append(hook)

    def add_recovery_listener(self, listener: Callable[[RecoveryRecord], None]) -> None:
        """Register a callback invoked after every completed recovery.

        The speculation layer subscribes here so per-design accounting sees
        every rollback regardless of which path triggered it.  Listeners run
        after all state has been restored and must not schedule events.
        """
        self._recovery_listeners.append(listener)

    # -------------------------------------------------------------- checkpoints
    @property
    def current_checkpoint(self) -> Checkpoint:
        return self._checkpoints[-1]

    @property
    def checkpoints_taken(self) -> int:
        return self._next_seq

    def _create_checkpoint(self) -> Checkpoint:
        trigger = (self.sim.now if self.interval_cycles is not None
                   else self._requests_seen)
        checkpoint = Checkpoint(seq=self._next_seq, created_at=self.sim.now,
                                trigger_value=trigger)
        for participant in self._participants:
            checkpoint.snapshots[participant.participant_id] = (
                participant.checkpoint_snapshot())
        self._checkpoints.append(checkpoint)
        self._next_seq += 1
        self.stats.counter("safetynet.checkpoints").add()
        self._commit_old_checkpoints()
        return checkpoint

    def _periodic_checkpoint(self) -> None:
        if not self._active:
            return
        self._create_checkpoint()
        assert self.interval_cycles is not None
        self.sim.schedule(self.interval_cycles, self._periodic_checkpoint,
                          label="safetynet.checkpoint")

    def note_request(self) -> None:
        """Logical-time tick for request-based checkpointing (snooping)."""
        self._requests_seen += 1
        if (self.interval_requests is not None
                and self._requests_seen % self.interval_requests == 0):
            self._create_checkpoint()

    def _commit_old_checkpoints(self) -> None:
        """Commit checkpoints that have aged past the validation window."""
        keep = self.config.outstanding_checkpoints
        if len(self._checkpoints) <= keep:
            return
        to_commit = self._checkpoints[:-keep]
        last_seq = to_commit[-1].seq
        for checkpoint in to_commit:
            checkpoint.committed = True
        for log in self.logs.values():
            log.commit_through(last_seq)
        self.stats.counter("safetynet.commits").add(len(to_commit))
        # Committed checkpoints can no longer serve as recovery points.
        # In-place deletion: the registered observers hold a reference to
        # this list, so it must never be reassigned.
        del self._checkpoints[:-keep]

    # ----------------------------------------------------------------- recovery
    @property
    def recovery_point(self) -> Checkpoint:
        """The checkpoint a recovery would roll back to (most recent one)."""
        return self._checkpoints[-1]

    def recover(self, event: MisspeculationEvent, *,
                messages_squashed_hint: int = 0) -> RecoveryRecord:
        """Perform a system-wide recovery to the active recovery point."""
        started_at = self.sim.now
        target = self.recovery_point
        undone = 0

        # 1. Undo logged state changes back to the recovery point, newest first.
        for log in self.logs.values():
            records = log.records_since(target.seq)
            for record in reversed(records):
                restore = self._restore_fns.get(record.target_id)
                if restore is not None:
                    restore(record.address, record.field, record.old_value)
                undone += 1
            log.discard_since(target.seq)

        # 2. Squash in-flight state (network messages, transient controller
        #    state).  Hooks may return a squash count for accounting.
        squashed = messages_squashed_hint
        for hook in self._squash_hooks:
            result = hook()
            if isinstance(result, int):
                squashed += result

        # 3. Restore checkpoint participants (processors) and stall them for
        #    the recovery latency plus the register-restore latency.
        resume_at = (self.sim.now + self.config.recovery_latency_cycles
                     + self.config.register_checkpoint_latency_cycles)
        self.stalled_until = max(self.stalled_until, resume_at)
        for participant in self._participants:
            snapshot = target.snapshots.get(participant.participant_id)
            if snapshot is not None:
                participant.checkpoint_restore(snapshot, resume_at=resume_at)

        work_lost = max(0, started_at - target.created_at)
        record = RecoveryRecord(
            event=event,
            started_at=started_at,
            recovery_point=target.created_at,
            resumed_at=resume_at,
            work_lost_cycles=work_lost,
            messages_squashed=squashed,
            log_entries_undone=undone,
        )
        self.recoveries.append(record)
        self.stats.counter("safetynet.recoveries").add()
        self.stats.counter(f"safetynet.recoveries.{event.kind.value}").add()
        self.stats.counter("safetynet.work_lost_cycles").add(work_lost)
        for listener in self._recovery_listeners:
            listener(record)
        return record

    # ------------------------------------------------------------------- stats
    def recovery_count(self, kind=None) -> int:
        if kind is None:
            return len(self.recoveries)
        return sum(1 for r in self.recoveries if r.event.kind == kind)

    def total_log_occupancy_bytes(self) -> int:
        return sum(log.occupancy_bytes for log in self.logs.values())

    def peak_log_occupancy_entries(self) -> int:
        return max((log.peak_occupancy for log in self.logs.values()), default=0)

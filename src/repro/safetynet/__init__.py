"""SafetyNet: system-wide checkpoint/recovery (Sorin et al., ISCA 2002).

The paper leverages SafetyNet as the recovery mechanism behind all three
speculative designs.  This package is a functional + timing model of it:

* :mod:`repro.safetynet.log` — per-node checkpoint log buffers that record
  incremental *undo* information (old values) for every change to cache,
  directory and memory state;
* :mod:`repro.safetynet.checkpoint` — logical checkpoints taken every N
  cycles (directory systems) or every N coherence requests (snooping
  systems), carrying per-processor execution snapshots;
* :mod:`repro.safetynet.manager` — the :class:`SafetyNet` coordinator that
  creates/commits checkpoints, performs system-wide recovery (undoing the
  log, squashing in-flight protocol/network state, rolling processors back)
  and accounts for the cost of each recovery.
"""

from repro.safetynet.log import CheckpointLogBuffer, UndoRecord
from repro.safetynet.checkpoint import Checkpoint, CheckpointParticipant
from repro.safetynet.manager import SafetyNet

__all__ = [
    "CheckpointLogBuffer",
    "UndoRecord",
    "Checkpoint",
    "CheckpointParticipant",
    "SafetyNet",
]

"""Logical checkpoints and checkpoint participants.

A checkpoint captures, at a consistent logical point, everything that cannot
be reconstructed from the undo logs: primarily the execution position of
each processor (program counter / workload stream index in this model) and
its retired-work counters.  Components that need this treatment implement
:class:`CheckpointParticipant`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict


class CheckpointParticipant(ABC):
    """A component whose execution state is snapshotted at each checkpoint."""

    @property
    @abstractmethod
    def participant_id(self) -> str:
        """Stable identifier used to key snapshots."""

    @abstractmethod
    def checkpoint_snapshot(self) -> Any:
        """Return an opaque snapshot of the participant's execution state."""

    @abstractmethod
    def checkpoint_restore(self, snapshot: Any, *, resume_at: int) -> None:
        """Restore the snapshot; the participant must not issue new work
        before simulation cycle ``resume_at`` (the end of the recovery)."""


@dataclass
class Checkpoint:
    """One logical checkpoint of the whole system."""

    seq: int
    created_at: int
    #: Logical trigger value at creation (cycle count for directory systems,
    #: request count for snooping systems).
    trigger_value: int
    snapshots: Dict[str, Any] = field(default_factory=dict)
    committed: bool = False

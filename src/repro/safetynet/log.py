"""Checkpoint log buffers.

SafetyNet checkpoints the memory system *incrementally*: every change to
cache/memory/directory state appends an undo record (the old value) to the
node's checkpoint log buffer.  Recovery walks the log backwards re-applying
old values; committing a checkpoint frees its records.

The paper's Table 2 sizes the buffer at 512 KB with 72-byte entries; the log
model tracks occupancy against that budget so experiments can report
pressure, but it never silently drops records (a real implementation stalls
the system instead — we count those would-be stalls).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class UndoRecord:
    """One logged state change (stored so it can be undone)."""

    checkpoint_seq: int
    target_id: str
    address: int
    field: str
    old_value: object
    logged_at: int


class CheckpointLogBuffer:
    """Per-node log of undo records, organised by checkpoint sequence number."""

    def __init__(self, name: str, *, capacity_bytes: int, entry_bytes: int) -> None:
        if capacity_bytes <= 0 or entry_bytes <= 0:
            raise ValueError("log sizes must be positive")
        self.name = name
        self.capacity_entries = capacity_bytes // entry_bytes
        self.entry_bytes = entry_bytes
        self._records: Dict[int, List[UndoRecord]] = {}
        self.total_logged = 0
        self.peak_occupancy = 0
        self.overflow_stalls = 0

    # ----------------------------------------------------------------- writing
    def append(self, record: UndoRecord) -> None:
        self._records.setdefault(record.checkpoint_seq, []).append(record)
        self.total_logged += 1
        occupancy = self.occupancy_entries
        self.peak_occupancy = max(self.peak_occupancy, occupancy)
        if occupancy > self.capacity_entries:
            # A real SafetyNet implementation would stall the node until a
            # checkpoint commits; the timing impact is negligible at the
            # paper's parameters, so we only count the event.
            self.overflow_stalls += 1

    # ----------------------------------------------------------------- queries
    @property
    def occupancy_entries(self) -> int:
        return sum(len(records) for records in self._records.values())

    @property
    def occupancy_bytes(self) -> int:
        return self.occupancy_entries * self.entry_bytes

    def records_since(self, checkpoint_seq: int) -> List[UndoRecord]:
        """All records belonging to checkpoints >= ``checkpoint_seq``, oldest first."""
        result: List[UndoRecord] = []
        for seq in sorted(self._records):
            if seq >= checkpoint_seq:
                result.extend(self._records[seq])
        return result

    # ------------------------------------------------------------------ commit
    def commit_through(self, checkpoint_seq: int) -> int:
        """Free the records of every checkpoint <= ``checkpoint_seq``."""
        freed = 0
        for seq in [s for s in self._records if s <= checkpoint_seq]:
            freed += len(self._records.pop(seq))
        return freed

    def discard_since(self, checkpoint_seq: int) -> int:
        """Drop records for checkpoints >= ``checkpoint_seq`` (after recovery)."""
        dropped = 0
        for seq in [s for s in self._records if s >= checkpoint_seq]:
            dropped += len(self._records.pop(seq))
        return dropped

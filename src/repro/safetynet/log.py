"""Checkpoint log buffers.

SafetyNet checkpoints the memory system *incrementally*: every change to
cache/memory/directory state appends an undo record (the old value) to the
node's checkpoint log buffer.  Recovery walks the log backwards re-applying
old values; committing a checkpoint frees its records.

The paper's Table 2 sizes the buffer at 512 KB with 72-byte entries; the log
model tracks occupancy against that budget so experiments can report
pressure, but it never silently drops records (a real implementation stalls
the system instead — we count those would-be stalls).

This module is on the hottest write path of the simulator: one record per
logged state change, millions per campaign.  :class:`UndoRecord` is
therefore a ``__slots__`` class (no per-instance dict, no dataclass
machinery), records live in per-checkpoint append-only lists, and occupancy
is a running counter maintained on append/commit/discard — O(1) per
operation, never a recount.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class UndoRecord:
    """One logged state change (stored so it can be undone)."""

    __slots__ = ("checkpoint_seq", "target_id", "address", "field",
                 "old_value", "logged_at")

    def __init__(self, checkpoint_seq: int, target_id: str, address: int,
                 field: str, old_value: object, logged_at: int) -> None:
        self.checkpoint_seq = checkpoint_seq
        self.target_id = target_id
        self.address = address
        self.field = field
        self.old_value = old_value
        self.logged_at = logged_at

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UndoRecord):
            return NotImplemented
        return (self.checkpoint_seq == other.checkpoint_seq
                and self.target_id == other.target_id
                and self.address == other.address
                and self.field == other.field
                and self.old_value == other.old_value
                and self.logged_at == other.logged_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"UndoRecord(seq={self.checkpoint_seq}, "
                f"target={self.target_id!r}, addr={self.address:#x}, "
                f"field={self.field!r}, old={self.old_value!r})")


class CheckpointLogBuffer:
    """Per-node log of undo records, organised by checkpoint sequence number.

    Records for one checkpoint form an append-only list; the dict of lists
    is keyed by checkpoint sequence.  ``occupancy_entries`` is a running
    counter kept consistent by ``append`` / ``commit_through`` /
    ``discard_since`` — reading it is O(1).
    """

    def __init__(self, name: str, *, capacity_bytes: int, entry_bytes: int) -> None:
        if capacity_bytes <= 0 or entry_bytes <= 0:
            raise ValueError("log sizes must be positive")
        self.name = name
        self.capacity_entries = capacity_bytes // entry_bytes
        self.entry_bytes = entry_bytes
        self._records: Dict[int, List[UndoRecord]] = {}
        self._occupancy = 0
        # Appends come overwhelmingly for the newest checkpoint; cache its
        # list so the common case skips the dict lookup.
        self._tail_seq: Optional[int] = None
        self._tail: List[UndoRecord] = []
        self.total_logged = 0
        self.peak_occupancy = 0
        self.overflow_stalls = 0

    # ----------------------------------------------------------------- writing
    def append(self, record: UndoRecord) -> None:
        seq = record.checkpoint_seq
        if seq != self._tail_seq:
            tail = self._records.get(seq)
            if tail is None:
                tail = []
                self._records[seq] = tail
            self._tail_seq = seq
            self._tail = tail
        self._tail.append(record)
        self.total_logged += 1
        occupancy = self._occupancy + 1
        self._occupancy = occupancy
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        if occupancy > self.capacity_entries:
            # A real SafetyNet implementation would stall the node until a
            # checkpoint commits; the timing impact is negligible at the
            # paper's parameters, so we only count the event (one per
            # over-capacity append, matching the stall the hardware would
            # take for that entry).
            self.overflow_stalls += 1

    # ----------------------------------------------------------------- queries
    @property
    def occupancy_entries(self) -> int:
        return self._occupancy

    @property
    def occupancy_bytes(self) -> int:
        return self._occupancy * self.entry_bytes

    def records_since(self, checkpoint_seq: int) -> List[UndoRecord]:
        """All records belonging to checkpoints >= ``checkpoint_seq``, oldest first."""
        result: List[UndoRecord] = []
        for seq in sorted(self._records):
            if seq >= checkpoint_seq:
                result.extend(self._records[seq])
        return result

    # ------------------------------------------------------------------ commit
    def commit_through(self, checkpoint_seq: int) -> int:
        """Free the records of every checkpoint <= ``checkpoint_seq``."""
        freed = 0
        for seq in [s for s in self._records if s <= checkpoint_seq]:
            freed += len(self._records.pop(seq))
            if seq == self._tail_seq:
                self._tail_seq = None
                self._tail = []
        self._occupancy -= freed
        return freed

    def discard_since(self, checkpoint_seq: int) -> int:
        """Drop records for checkpoints >= ``checkpoint_seq`` (after recovery)."""
        dropped = 0
        for seq in [s for s in self._records if s >= checkpoint_seq]:
            dropped += len(self._records.pop(seq))
            if seq == self._tail_seq:
                self._tail_seq = None
                self._tail = []
        self._occupancy -= dropped
        return dropped

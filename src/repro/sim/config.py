"""System configuration (Table 2 of the paper, plus reproduction knobs).

The paper's target system is a 16-node shared-memory multiprocessor:

==============================  =============================================
L1 cache (I and D)              128 KB, 4-way set associative
L2 cache                        4 MB, 4-way set associative
Memory                          2 GB, 64-byte blocks
Miss from memory                180 ns (uncontended, 2-hop)
Interconnect link bandwidth     400 MB/s to 3.2 GB/s
Checkpoint log buffer           512 KB total, 72-byte entries
Checkpoint interval             100,000 cycles (directory), 3,000 requests
                                (snooping)
Register checkpoint latency     100 cycles
==============================  =============================================

Reproduction-specific knobs (documented in DESIGN.md):

* ``cycles_per_second`` maps simulated cycles onto the "seconds" used by the
  recovery-rate experiments; the paper's nominal value is 4e9 (a 4 GHz core),
  the benchmark default is 1e6 so sweeps finish in laptop time.  Performance
  *ratios* — which is what Figure 4 plots — are preserved under this scaling.
* Cache/memory sizes may be scaled down for tests; the defaults below follow
  Table 2 and the scaled presets are provided by :func:`SystemConfig.small`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Optional


class RoutingPolicy(str, Enum):
    """Interconnect routing policy."""

    STATIC = "static"          #: deterministic dimension-order routing
    ADAPTIVE = "adaptive"      #: minimal adaptive routing (queue-length based)


class ProtocolKind(str, Enum):
    """Which coherence protocol the system is built with."""

    DIRECTORY = "directory"
    SNOOPING = "snooping"


class ProtocolVariant(str, Enum):
    """Full (corner cases handled) vs. speculative (corner cases detected)."""

    FULL = "full"
    SPECULATIVE = "speculative"


@dataclass
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.block_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        if self.size_bytes % (self.associativity * self.block_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity * block size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes


@dataclass
class ProcessorConfig:
    """Simple blocking, in-order processor model (Section 5.1)."""

    frequency_hz: float = 4.0e9
    instructions_per_cycle: float = 1.0
    #: Non-memory instructions executed between two memory references; used
    #: to convert a memory-reference stream into elapsed "compute" cycles.
    mean_instructions_between_refs: float = 3.0
    l1_hit_cycles: int = 1
    l2_hit_cycles: int = 12


@dataclass
class InterconnectConfig:
    """2D torus interconnect parameters."""

    #: Torus dimensions; 4x4 gives the 16-node target system.
    mesh_width: int = 4
    mesh_height: int = 4
    link_bandwidth_bytes_per_sec: float = 400e6
    link_latency_cycles: int = 8
    #: Per-input-port buffer capacity in messages (the buffer-sweep knob).
    switch_buffer_capacity: int = 16
    endpoint_buffer_capacity: int = 64
    #: Number of virtual networks (message classes); the directory protocol
    #: uses four: Request, ForwardedRequest, Response, FinalAck.
    virtual_networks: int = 4
    #: Virtual channels per virtual network; 2 suffice for static routing on
    #: a torus, adaptive routing needs one extra escape channel.  0 means the
    #: speculative no-VC design.
    virtual_channels_per_network: int = 2
    routing: RoutingPolicy = RoutingPolicy.STATIC
    #: Control/coherence message size and data message size in bytes.
    control_message_bytes: int = 8
    data_message_bytes: int = 72
    #: When True the network is the speculatively simplified design of
    #: Section 4: no virtual channels/networks, all classes share buffers.
    speculative_no_vc: bool = False
    #: In the no-VC design, a network interface stops ingesting messages
    #: while its own outbound queue is this deep (it has nowhere to put the
    #: replies the ingested messages would generate).  This is the coupling
    #: that makes endpoint/switch deadlock reachable when buffering is
    #: insufficient; virtual networks remove it by construction, so the
    #: limit is ignored when virtual channels are enabled.
    nic_injection_limit: int = 8

    def link_cycles_per_byte(self, frequency_hz: float) -> float:
        """Cycles needed to serialise one byte on a link."""
        return frequency_hz / self.link_bandwidth_bytes_per_sec

    def serialization_cycles(self, message_bytes: int, frequency_hz: float) -> int:
        """Cycles to push ``message_bytes`` through one link.

        Same explicit floor+half-up rounding as
        :func:`repro.interconnect.link.serialization_cycles_for` (banker's
        rounding would make .5-cycle boundaries alternate by parity).
        """
        return max(1, int(message_bytes * self.link_cycles_per_byte(frequency_hz) + 0.5))


@dataclass
class CheckpointConfig:
    """SafetyNet parameters (Table 2)."""

    log_buffer_bytes: int = 512 * 1024
    log_entry_bytes: int = 72
    #: Checkpoint interval for the directory system, in cycles.
    directory_interval_cycles: int = 100_000
    #: Checkpoint interval for the snooping system, in requests.
    snooping_interval_requests: int = 3_000
    register_checkpoint_latency_cycles: int = 100
    #: Fixed latency of a system-wide recovery, on top of re-executing the
    #: work lost since the recovery point.
    recovery_latency_cycles: int = 20_000
    #: Number of checkpoints kept outstanding (un-committed).
    outstanding_checkpoints: int = 3

    @property
    def log_entries(self) -> int:
        return self.log_buffer_bytes // self.log_entry_bytes


@dataclass
class SpeculationConfig:
    """Knobs of the speculation-for-simplicity framework."""

    #: Speculate on point-to-point ordering in the directory protocol (S1).
    directory_p2p_speculation: bool = True
    #: Leave the snooping corner case unhandled and detect it instead (S2).
    snooping_corner_case_speculation: bool = True
    #: Remove virtual channels and recover from deadlock (S3).
    interconnect_no_vc_speculation: bool = False
    #: Transaction timeout for deadlock detection, in checkpoint intervals.
    timeout_checkpoint_intervals: int = 3
    #: Forward progress: cycles for which adaptive routing stays disabled
    #: after a recovery caused by a reordering mis-speculation.
    adaptive_routing_disable_cycles: int = 200_000
    #: Forward progress: maximum outstanding coherence transactions while in
    #: slow-start mode.
    slow_start_max_outstanding: int = 1
    #: Cycles spent in slow-start after a recovery before returning to full
    #: concurrency.
    slow_start_cycles: int = 100_000


@dataclass
class WorkloadConfig:
    """Parameters of a synthetic workload run."""

    name: str = "jbb"
    #: Memory references issued per processor for one measured run.
    references_per_processor: int = 20_000
    #: Root seed for the deterministic RNG tree.
    seed: int = 1
    #: Number of perturbed runs per design point (paper uses several).
    runs: int = 1
    #: Std-dev (in cycles) of the pseudo-random memory-latency perturbation.
    latency_jitter_cycles: int = 2


@dataclass
class SystemConfig:
    """Complete configuration of one simulated target system."""

    num_processors: int = 16
    protocol: ProtocolKind = ProtocolKind.DIRECTORY
    variant: ProtocolVariant = ProtocolVariant.SPECULATIVE
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(128 * 1024, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(4 * 1024 * 1024, 4))
    memory_bytes: int = 2 * 1024 ** 3
    block_bytes: int = 64
    memory_latency_cycles: int = 180 * 4  # 180 ns at 4 GHz
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    speculation: SpeculationConfig = field(default_factory=SpeculationConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Simulated cycles per "second" for recovery-rate style experiments.
    cycles_per_second: float = 4.0e9

    def __post_init__(self) -> None:
        if self.num_processors <= 0:
            raise ValueError("num_processors must be positive")
        if self.block_bytes != self.l1.block_bytes or self.block_bytes != self.l2.block_bytes:
            raise ValueError("block size must match across memory and caches")
        grid = self.interconnect.mesh_width * self.interconnect.mesh_height
        if grid < self.num_processors:
            raise ValueError(
                f"torus {self.interconnect.mesh_width}x{self.interconnect.mesh_height} "
                f"cannot host {self.num_processors} nodes")

    # ------------------------------------------------------------------ presets
    @classmethod
    def paper_defaults(cls) -> "SystemConfig":
        """The Table 2 target system."""
        return cls()

    @classmethod
    def small(cls, num_processors: int = 4, references: int = 2_000,
              seed: int = 1) -> "SystemConfig":
        """A scaled-down system for unit tests and quick examples."""
        width = 2 if num_processors <= 4 else 4
        height = max(1, (num_processors + width - 1) // width)
        cfg = cls(
            num_processors=num_processors,
            l1=CacheConfig(8 * 1024, 2),
            l2=CacheConfig(64 * 1024, 4),
            memory_bytes=16 * 1024 * 1024,
            memory_latency_cycles=100,
            interconnect=InterconnectConfig(
                mesh_width=width, mesh_height=height,
                link_latency_cycles=4,
                switch_buffer_capacity=16,
            ),
            checkpoint=CheckpointConfig(
                directory_interval_cycles=5_000,
                snooping_interval_requests=200,
                recovery_latency_cycles=2_000,
            ),
            workload=WorkloadConfig(references_per_processor=references, seed=seed),
            cycles_per_second=1.0e6,
        )
        return cfg

    # --------------------------------------------------------------- mutation
    def with_updates(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)

    def table2_rows(self) -> Dict[str, str]:
        """Render this configuration as the rows of Table 2."""
        ic = self.interconnect
        cp = self.checkpoint
        return {
            "L1 Cache (I and D)": f"{self.l1.size_bytes // 1024} KB, "
                                   f"{self.l1.associativity}-way set associative",
            "L2 Cache": f"{self.l2.size_bytes // (1024 * 1024)} MB, "
                        f"{self.l2.associativity}-way set-associative",
            "Memory": f"{self.memory_bytes // 1024 ** 3} GB, {self.block_bytes} byte blocks",
            "Miss From Memory": f"{self.memory_latency_cycles} cycles (uncontended, 2-hop)",
            "Interconnection Networks": "link bandwidth = "
                                         f"{ic.link_bandwidth_bytes_per_sec / 1e6:.0f} MB/sec",
            "Checkpoint Log Buffer": f"{cp.log_buffer_bytes // 1024} kbytes total, "
                                      f"{cp.log_entry_bytes} byte entries",
            "Checkpoint Interval": f"{cp.directory_interval_cycles} cycles (directory), "
                                    f"{cp.snooping_interval_requests} requests (snooping)",
            "Register Checkpointing Latency": f"{cp.register_checkpoint_latency_cycles} cycles",
        }

"""System configuration (Table 2 of the paper, plus reproduction knobs).

The paper's target system is a 16-node shared-memory multiprocessor:

==============================  =============================================
L1 cache (I and D)              128 KB, 4-way set associative
L2 cache                        4 MB, 4-way set associative
Memory                          2 GB, 64-byte blocks
Miss from memory                180 ns (uncontended, 2-hop)
Interconnect link bandwidth     400 MB/s to 3.2 GB/s
Checkpoint log buffer           512 KB total, 72-byte entries
Checkpoint interval             100,000 cycles (directory), 3,000 requests
                                (snooping)
Register checkpoint latency     100 cycles
==============================  =============================================

Reproduction-specific knobs (documented in DESIGN.md):

* ``cycles_per_second`` maps simulated cycles onto the "seconds" used by the
  recovery-rate experiments; the paper's nominal value is 4e9 (a 4 GHz core),
  the benchmark default is 1e6 so sweeps finish in laptop time.  Performance
  *ratios* — which is what Figure 4 plots — are preserved under this scaling.
* Cache/memory sizes may be scaled down for tests; the defaults below follow
  Table 2 and the scaled presets are provided by :func:`SystemConfig.small`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Dict, Mapping, Optional, Tuple

#: Coherence block size in bytes (Table 2).  The single source of truth for
#: every default that must agree on it: cache geometry, system memory layout
#: and synthetic workload address generation
#: (:func:`repro.workloads.registry.make_workload`).
DEFAULT_BLOCK_BYTES = 64

#: Root seed of the deterministic RNG tree when a caller does not choose one.
#: Shared by :class:`WorkloadConfig` and
#: :func:`repro.workloads.registry.make_workload` so the two entry points can
#: never drift apart.
DEFAULT_WORKLOAD_SEED = 1


class RoutingPolicy(str, Enum):
    """Interconnect routing policy."""

    STATIC = "static"          #: deterministic dimension-order routing
    ADAPTIVE = "adaptive"      #: minimal adaptive routing (queue-length based)


class ProtocolKind(str, Enum):
    """Which coherence protocol the system is built with."""

    DIRECTORY = "directory"
    SNOOPING = "snooping"


class ProtocolVariant(str, Enum):
    """Full (corner cases handled) vs. speculative (corner cases detected)."""

    FULL = "full"
    SPECULATIVE = "speculative"


@dataclass
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int = DEFAULT_BLOCK_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.block_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        if self.size_bytes % (self.associativity * self.block_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity * block size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes


@dataclass
class ProcessorConfig:
    """Simple blocking, in-order processor model (Section 5.1)."""

    frequency_hz: float = 4.0e9
    instructions_per_cycle: float = 1.0
    #: Non-memory instructions executed between two memory references; used
    #: to convert a memory-reference stream into elapsed "compute" cycles.
    mean_instructions_between_refs: float = 3.0
    l1_hit_cycles: int = 1
    l2_hit_cycles: int = 12


@dataclass
class TopologyConfig:
    """Which interconnect geometry to build: a registry kind plus dimensions.

    ``kind`` names a class registered in
    :mod:`repro.interconnect.topology` (``torus``, ``mesh``, ``ring``);
    ``dims`` is its dimension vector — ``(width, height)`` for the 2D
    geometries, ``(num_nodes,)`` for the ring.  By registry convention the
    switch count is always ``product(dims)``, which lets this module
    validate node counts without importing geometry code.
    """

    kind: str = "torus"
    dims: Tuple[int, ...] = (4, 4)

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ValueError("topology kind must be a non-empty string")
        dims = tuple(int(d) for d in self.dims)  # normalise JSON lists
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"topology dims must be positive, got {self.dims!r}")
        self.dims = dims

    @property
    def num_switches(self) -> int:
        return math.prod(self.dims)

    def describe(self) -> str:
        return f"{'x'.join(str(d) for d in self.dims)} {self.kind}"

    @classmethod
    def preset(cls, kind: str, num_nodes: int) -> "TopologyConfig":
        """A ``kind`` geometry of ``num_nodes`` switches.

        2D kinds get the most-square factorisation (4 -> 2x2, 16 -> 4x4,
        64 -> 8x8, 12 -> 3x4; primes degrade to a 1-wide grid); the ring
        gets exactly ``num_nodes`` switches.
        """
        if num_nodes < 1:
            raise ValueError(f"topology preset needs num_nodes >= 1, "
                             f"got {num_nodes}")
        if kind == "ring":
            return cls(kind="ring", dims=(num_nodes,))
        width = math.isqrt(num_nodes)
        while num_nodes % width:
            width -= 1
        return cls(kind=kind, dims=(width, num_nodes // width))


@dataclass
class InterconnectConfig:
    """Interconnect parameters (geometry, bandwidth, buffering, routing).

    The geometry is chosen by ``topology``; when it is left as ``None`` the
    legacy ``mesh_width``/``mesh_height`` fields select the paper's 2D torus
    (the default 4x4 gives the 16-node target system).  Existing
    configurations therefore keep their meaning *and* their campaign content
    hashes — ``topology=None`` is omitted from the canonical spec encoding
    (see :func:`repro.campaign.spec.config_to_dict`).
    """

    #: Torus dimensions used when ``topology`` is None (back-compat path).
    mesh_width: int = 4
    mesh_height: int = 4
    #: Explicit geometry selection; None means "torus of mesh_width x
    #: mesh_height" (the paper's machine).
    topology: Optional[TopologyConfig] = None
    link_bandwidth_bytes_per_sec: float = 400e6
    link_latency_cycles: int = 8
    #: Per-input-port buffer capacity in messages (the buffer-sweep knob).
    switch_buffer_capacity: int = 16
    endpoint_buffer_capacity: int = 64
    #: Number of virtual networks (message classes); the directory protocol
    #: uses four: Request, ForwardedRequest, Response, FinalAck.
    virtual_networks: int = 4
    #: Virtual channels per virtual network; 2 suffice for static routing on
    #: a torus, adaptive routing needs one extra escape channel.  0 means the
    #: speculative no-VC design.
    virtual_channels_per_network: int = 2
    routing: RoutingPolicy = RoutingPolicy.STATIC
    #: Control/coherence message size and data message size in bytes.
    control_message_bytes: int = 8
    data_message_bytes: int = 72
    #: When True the network is the speculatively simplified design of
    #: Section 4: no virtual channels/networks, all classes share buffers.
    speculative_no_vc: bool = False
    #: In the no-VC design, a network interface stops ingesting messages
    #: while its own outbound queue is this deep (it has nowhere to put the
    #: replies the ingested messages would generate).  This is the coupling
    #: that makes endpoint/switch deadlock reachable when buffering is
    #: insufficient; virtual networks remove it by construction, so the
    #: limit is ignored when virtual channels are enabled.
    nic_injection_limit: int = 8

    def resolved_topology(self) -> TopologyConfig:
        """The effective geometry: ``topology`` or the legacy torus fields."""
        if self.topology is not None:
            return self.topology
        return TopologyConfig(kind="torus",
                              dims=(self.mesh_width, self.mesh_height))

    @property
    def num_switches(self) -> int:
        """Switch count of the effective geometry (``product(dims)``)."""
        return self.resolved_topology().num_switches

    def link_cycles_per_byte(self, frequency_hz: float) -> float:
        """Cycles needed to serialise one byte on a link."""
        return frequency_hz / self.link_bandwidth_bytes_per_sec

    def serialization_cycles(self, message_bytes: int, frequency_hz: float) -> int:
        """Cycles to push ``message_bytes`` through one link.

        Same explicit floor+half-up rounding as
        :func:`repro.interconnect.link.serialization_cycles_for` (banker's
        rounding would make .5-cycle boundaries alternate by parity).
        """
        return max(1, int(message_bytes * self.link_cycles_per_byte(frequency_hz) + 0.5))


@dataclass
class CheckpointConfig:
    """SafetyNet parameters (Table 2)."""

    log_buffer_bytes: int = 512 * 1024
    log_entry_bytes: int = 72
    #: Checkpoint interval for the directory system, in cycles.
    directory_interval_cycles: int = 100_000
    #: Checkpoint interval for the snooping system, in requests.
    snooping_interval_requests: int = 3_000
    register_checkpoint_latency_cycles: int = 100
    #: Fixed latency of a system-wide recovery, on top of re-executing the
    #: work lost since the recovery point.
    recovery_latency_cycles: int = 20_000
    #: Number of checkpoints kept outstanding (un-committed).
    outstanding_checkpoints: int = 3

    @property
    def log_entries(self) -> int:
        return self.log_buffer_bytes // self.log_entry_bytes


@dataclass
class SpeculationConfig:
    """Knobs of the speculation-for-simplicity framework.

    The three ``*_speculation`` flags name the paper's Table 1 designs and
    select which registered :class:`repro.speculation.base.Speculation`
    implementations a built system arms (the registry names are the
    :class:`repro.core.events.SpeculationKind` values — see
    :meth:`enabled_speculations`).  ``detectors`` overrides the derived set
    with an explicit list of registry names; it defaults to ``None`` and is
    omitted from the canonical campaign encoding in that case, so design
    points that predate the speculation layer keep byte-identical canonical
    forms — and therefore stable content hashes / cache keys.
    """

    #: Speculate on point-to-point ordering in the directory protocol (S1).
    directory_p2p_speculation: bool = True
    #: Leave the snooping corner case unhandled and detect it instead (S2).
    snooping_corner_case_speculation: bool = True
    #: Remove virtual channels and recover from deadlock (S3).  Building a
    #: system with this flag set forces the Section 4 no-VC network design
    #: even when ``InterconnectConfig.speculative_no_vc`` is left False
    #: (the two knobs are OR-ed; the interconnect flag predates this one).
    interconnect_no_vc_speculation: bool = False
    #: Explicit speculation selection: a tuple of registry names from
    #: :mod:`repro.speculation`.  ``None`` derives the set from the flags.
    detectors: Optional[Tuple[str, ...]] = None
    #: Transaction timeout for deadlock detection, in checkpoint intervals.
    timeout_checkpoint_intervals: int = 3
    #: Forward progress: cycles for which adaptive routing stays disabled
    #: after a recovery caused by a reordering mis-speculation.
    adaptive_routing_disable_cycles: int = 200_000
    #: Forward progress: maximum outstanding coherence transactions while in
    #: slow-start mode.
    slow_start_max_outstanding: int = 1
    #: Cycles spent in slow-start after a recovery before returning to full
    #: concurrency.
    slow_start_cycles: int = 100_000

    def __post_init__(self) -> None:
        if self.detectors is not None:
            self.detectors = tuple(str(name) for name in self.detectors)

    def enabled_speculations(self) -> Tuple[str, ...]:
        """Registry names of the speculations a built system should arm.

        With ``detectors=None`` the set derives from the design flags; the
        deadlock watchdog (``interconnect-deadlock``) is always included —
        the transaction timeout doubles as the safety net that keeps even a
        conventionally designed network from wedging a run silently, which
        matches the repository's historical wiring.  Each name is further
        filtered by the registered class's ``applies_to`` (protocol and
        variant), so one configuration can describe the complete design
        space and each built system arms only what exists in it.
        """
        if self.detectors is not None:
            return self.detectors
        names = []
        if self.directory_p2p_speculation:
            names.append(SpeculationName.DIRECTORY_P2P_ORDER)
        if self.snooping_corner_case_speculation:
            names.append(SpeculationName.SNOOPING_CORNER_CASE)
        names.append(SpeculationName.INTERCONNECT_DEADLOCK)
        return tuple(names)

    def speculates(self, name: str) -> bool:
        """Whether the named speculative design is enabled."""
        return name in self.enabled_speculations()

    def with_designs(self, *, s1: Optional[bool] = None,
                     s2: Optional[bool] = None,
                     s3: Optional[bool] = None) -> "SpeculationConfig":
        """Copy with the Table 1 design flags replaced (None = keep)."""
        return replace(
            self,
            directory_p2p_speculation=(
                self.directory_p2p_speculation if s1 is None else s1),
            snooping_corner_case_speculation=(
                self.snooping_corner_case_speculation if s2 is None else s2),
            interconnect_no_vc_speculation=(
                self.interconnect_no_vc_speculation if s3 is None else s3),
        )


class SpeculationName:
    """The registry names of :mod:`repro.speculation` (one per design).

    These equal the :class:`repro.core.events.SpeculationKind` values;
    duplicated here as plain strings so this bottom-layer module does not
    import the framework package.
    """

    DIRECTORY_P2P_ORDER = "directory-p2p-order"
    SNOOPING_CORNER_CASE = "snooping-corner-case"
    INTERCONNECT_DEADLOCK = "interconnect-deadlock"
    INJECTED = "injected"


@dataclass
class WorkloadConfig:
    """Parameters of a synthetic workload run.

    ``name`` selects a family registered in :mod:`repro.workloads.registry`
    (the five paper profiles plus the parameterized scenario families);
    construction fails fast — listing the registered names — so a typo'd
    campaign axis dies before any simulation starts rather than mid-run
    inside ``load_workload``.  ``params`` optionally overrides the family's
    default parameters; ``None`` (the default) means "family defaults" and
    is omitted from the canonical campaign encoding
    (:func:`repro.campaign.spec.config_to_dict`), exactly like
    ``topology=None`` and ``detectors=None``, so every pre-params design
    point keeps a byte-identical canonical form and a stable content hash.
    """

    name: str = "jbb"
    #: Memory references issued per processor for one measured run.
    references_per_processor: int = 20_000
    #: Root seed for the deterministic RNG tree.
    seed: int = DEFAULT_WORKLOAD_SEED
    #: Number of perturbed runs per design point (paper uses several).
    runs: int = 1
    #: Std-dev (in cycles) of the pseudo-random memory-latency perturbation.
    latency_jitter_cycles: int = 2
    #: Family-specific parameter overrides; ``None`` means the registered
    #: family's defaults (and is omitted from the canonical spec encoding).
    params: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.params is not None:
            if not isinstance(self.params, Mapping):
                raise ValueError(
                    f"workload params must be a mapping, got {self.params!r}")
            # An empty mapping means "family defaults" — the same design
            # point as None; normalise so the two cannot hash apart.
            self.params = ({str(k): v for k, v in self.params.items()}
                           or None)
        # Imported lazily: this bottom-layer module must stay importable
        # without the workload package, and the registry imports the
        # defaults defined above.
        from repro.workloads.registry import validate_workload

        validate_workload(self.name, self.params)


@dataclass
class SystemConfig:
    """Complete configuration of one simulated target system."""

    num_processors: int = 16
    protocol: ProtocolKind = ProtocolKind.DIRECTORY
    variant: ProtocolVariant = ProtocolVariant.SPECULATIVE
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(128 * 1024, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(4 * 1024 * 1024, 4))
    memory_bytes: int = 2 * 1024 ** 3
    block_bytes: int = DEFAULT_BLOCK_BYTES
    memory_latency_cycles: int = 180 * 4  # 180 ns at 4 GHz
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    speculation: SpeculationConfig = field(default_factory=SpeculationConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Simulated cycles per "second" for recovery-rate style experiments.
    cycles_per_second: float = 4.0e9

    def __post_init__(self) -> None:
        if self.num_processors <= 0:
            raise ValueError("num_processors must be positive")
        if self.block_bytes != self.l1.block_bytes or self.block_bytes != self.l2.block_bytes:
            raise ValueError("block size must match across memory and caches")
        topo = self.interconnect.resolved_topology()
        if topo.num_switches < self.num_processors:
            raise ValueError(
                f"{topo.describe()} cannot host {self.num_processors} nodes")

    # ------------------------------------------------------------------ presets
    @classmethod
    def paper_defaults(cls) -> "SystemConfig":
        """The Table 2 target system."""
        return cls()

    @classmethod
    def small(cls, num_processors: int = 4, references: int = 2_000,
              seed: int = 1) -> "SystemConfig":
        """A scaled-down system for unit tests and quick examples.

        The rule: this preset builds a torus with **exactly** one switch per
        processor (width 2 up to four processors, width 4 beyond).  A
        ``num_processors`` that does not tile that grid used to silently
        produce a torus with idle extra switches — geometry the experiments
        never asked for; it now raises.  Callers who want a non-square node
        count should pass an explicit :class:`TopologyConfig` (e.g. a
        ``ring`` of exactly ``num_processors`` switches) via
        ``with_updates``.
        """
        width = 2 if num_processors <= 4 else 4
        if num_processors % width:
            raise ValueError(
                f"SystemConfig.small: {num_processors} processors do not tile a "
                f"{width}-wide torus; pass an explicit TopologyConfig (e.g. "
                f"ring of {num_processors}) instead of relying on the preset grid")
        height = num_processors // width
        cfg = cls(
            num_processors=num_processors,
            l1=CacheConfig(8 * 1024, 2),
            l2=CacheConfig(64 * 1024, 4),
            memory_bytes=16 * 1024 * 1024,
            memory_latency_cycles=100,
            interconnect=InterconnectConfig(
                mesh_width=width, mesh_height=height,
                link_latency_cycles=4,
                switch_buffer_capacity=16,
            ),
            checkpoint=CheckpointConfig(
                directory_interval_cycles=5_000,
                snooping_interval_requests=200,
                recovery_latency_cycles=2_000,
            ),
            workload=WorkloadConfig(references_per_processor=references, seed=seed),
            cycles_per_second=1.0e6,
        )
        return cfg

    # --------------------------------------------------------------- mutation
    def with_updates(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)

    def table2_rows(self) -> Dict[str, str]:
        """Render this configuration as the rows of Table 2."""
        ic = self.interconnect
        cp = self.checkpoint
        return {
            "L1 Cache (I and D)": f"{self.l1.size_bytes // 1024} KB, "
                                   f"{self.l1.associativity}-way set associative",
            "L2 Cache": f"{self.l2.size_bytes // (1024 * 1024)} MB, "
                        f"{self.l2.associativity}-way set-associative",
            "Memory": f"{self.memory_bytes // 1024 ** 3} GB, {self.block_bytes} byte blocks",
            # The paper's Table 2 states this in nanoseconds (180 ns); render
            # both the simulator's native cycles and the derived ns at the
            # configured core frequency.
            "Miss From Memory": f"{self.memory_latency_cycles} cycles / "
                                 f"{self.memory_latency_cycles / self.processor.frequency_hz * 1e9:g} ns "
                                 "(uncontended, 2-hop)",
            "Interconnection Networks": f"{ic.resolved_topology().describe()}, "
                                         "link bandwidth = "
                                         f"{ic.link_bandwidth_bytes_per_sec / 1e6:.0f} MB/sec",
            "Checkpoint Log Buffer": f"{cp.log_buffer_bytes // 1024} kbytes total, "
                                      f"{cp.log_entry_bytes} byte entries",
            "Checkpoint Interval": f"{cp.directory_interval_cycles} cycles (directory), "
                                    f"{cp.snooping_interval_requests} requests (snooping)",
            "Register Checkpointing Latency": f"{cp.register_checkpoint_latency_cycles} cycles",
        }

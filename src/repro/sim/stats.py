"""Statistics collection.

Every experiment in the paper reduces to a handful of aggregate statistics:
message counts per virtual network, reordering counts, recovery counts, link
utilisation, and end-to-end runtime.  The classes here are deliberately
simple (counters, histograms, interval samplers) and are aggregated through a
:class:`StatsRegistry` that the system builder shares across components so
reports can be produced from one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically growing named counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A bucketed histogram for latency-like quantities."""

    def __init__(self, name: str, bucket_width: int = 16) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        bucket = value // self.bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Approximate percentile using bucket upper bounds."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.count == 0:
            return 0
        target = max(1, math.ceil(self.count * fraction))
        running = 0
        for bucket in sorted(self.buckets):
            running += self.buckets[bucket]
            if running >= target:
                return (bucket + 1) * self.bucket_width - 1
        return (max(self.buckets) + 1) * self.bucket_width - 1


@dataclass
class Sample:
    """One interval sample produced by :class:`IntervalSampler`."""

    time: int
    value: float


class IntervalSampler:
    """Records a time series of point samples (e.g. instantaneous link load)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Sample] = []

    def record(self, time: int, value: float) -> None:
        self.samples.append(Sample(time=time, value=value))

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.value for s in self.samples) / len(self.samples)

    @property
    def peak(self) -> float:
        if not self.samples:
            return 0.0
        return max(s.value for s in self.samples)


class StatsRegistry:
    """A flat namespace of counters/histograms/samplers shared by a system."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._samplers: Dict[str, IntervalSampler] = {}

    # -------------------------------------------------------------- factories
    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str, bucket_width: int = 16) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bucket_width=bucket_width)
        return self._histograms[name]

    def sampler(self, name: str) -> IntervalSampler:
        if name not in self._samplers:
            self._samplers[name] = IntervalSampler(name)
        return self._samplers[name]

    # ---------------------------------------------------------------- queries
    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Return ``{name: value}`` for all counters whose name has ``prefix``."""
        return {name: counter.value
                for name, counter in self._counters.items()
                if name.startswith(prefix)}

    def total(self, prefix: str) -> int:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(c.value for name, c in self._counters.items()
                   if name.startswith(prefix))

    def histograms(self, prefix: str = "") -> Dict[str, Histogram]:
        return {name: hist for name, hist in self._histograms.items()
                if name.startswith(prefix)}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        self._histograms.clear()
        self._samplers.clear()

    # --------------------------------------------------------------- reporting
    def as_rows(self, prefix: str = "") -> List[Tuple[str, int]]:
        """Sorted (name, value) rows for report printing."""
        return sorted(self.counters(prefix).items())

    def merge_from(self, other: "StatsRegistry") -> None:
        """Fold another registry's counters into this one (used by sweeps)."""
        for name, counter in other._counters.items():
            self.counter(name).add(counter.value)


def weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Weighted mean of ``(value, weight)`` pairs; 0.0 for empty input."""
    total_weight = 0.0
    total = 0.0
    for value, weight in pairs:
        total += value * weight
        total_weight += weight
    return total / total_weight if total_weight else 0.0

"""Event-driven simulation kernel.

The kernel is a classic calendar-of-events scheduler built on ``heapq``.  All
timing in the reproduction is expressed in *cycles* of the (nominally 4 GHz)
system clock; the mapping from cycles to wall-clock "seconds" used by the
paper's recovery-rate experiments is configurable (see
:class:`repro.sim.config.SystemConfig.cycles_per_second`).

Design notes
------------
* Events are ordered by ``(time, priority, sequence)``.  The sequence number
  makes ordering of same-cycle events deterministic and FIFO with respect to
  scheduling order, which keeps every simulation run reproducible for a fixed
  seed.
* The scheduler never uses wall-clock time or global randomness; components
  that need randomness draw from :class:`repro.sim.rng.DeterministicRng`
  streams handed to them at construction time.
* Callbacks are plain callables.  A callback may schedule further events and
  may cancel events it owns.

Hot-path structure (see DESIGN.md §5 for the full performance model):

* **Fused dispatch loop** — :meth:`Simulator.run` owns the heap directly:
  it discards cancelled heads lazily and pops-and-executes events with no
  per-event ``peek``/``pop`` function calls, tallying ``events_executed``
  once at the end.  Execution order is the heap's ``(time, priority,
  seq)`` order, identical to the classic pop-one-dispatch-one loop.
  :meth:`EventQueue.pop_batch` / :meth:`EventQueue.unpop` expose
  same-``(time, priority)`` bulk extraction to external drivers.  (A
  calendar-bucket variant — one FIFO bucket per key, heap of keys — was
  measured and rejected: at this simulator's typical batch size of 1-3 the
  per-key dict/deque overhead exceeds the saved heap sifts.)
* **Event pool** — fired events are recycled through a bounded freelist
  instead of being reallocated.  The lifecycle rule this imposes on callers:
  an :class:`Event` handle is dead once the event has fired (or been
  cancelled); holding it past that point and calling :meth:`Event.cancel`
  later may touch an unrelated recycled event.  A callback that stores its
  own event handle must clear it when it fires.
* **Heap compaction** — cancelled events stay in the heap (the classic lazy
  -deletion scheme), but when they outnumber live events the queue rebuilds
  the heap from the live entries only.  Compaction preserves dispatch order
  (the ``(time, priority, seq)`` keys are untouched) and bounds both memory
  and the cancelled-entry skip loops.
* **Reference hygiene** — ``callback`` (and the queue backref) are nulled
  the moment an event is cancelled or recycled, so the heap never keeps
  closures alive for the remainder of a long campaign run.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for fatal inconsistencies inside the simulation kernel."""


class Event:
    """A single scheduled event.

    A plain ``__slots__`` class rather than a dataclass: millions of events
    are created per simulated run, so per-instance dict overhead and
    generated ``__lt__`` calls are measurable.  Heap ordering lives in the
    queue's ``(time, priority, seq)`` tuple keys, not on the event itself.

    Attributes
    ----------
    time:
        Absolute cycle at which the event fires.
    priority:
        Tie-breaker within a cycle; lower fires first.  The kernel reserves
        no priorities — subsystems pick their own conventions.
    seq:
        Monotonic sequence number assigned by the queue; guarantees FIFO
        ordering among events with equal ``(time, priority)``.
    callback:
        Zero-argument callable invoked when the event fires.  Nulled once
        the event is cancelled or recycled so the heap retains no closures.
    label:
        Optional human-readable tag (used in traces and error messages).
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.

    Lifecycle: a handle returned by :meth:`EventQueue.push` /
    :meth:`Simulator.schedule` is valid until the event fires or is
    cancelled, after which the kernel may recycle the object for a new
    event.  Do not retain fired events (DESIGN.md §5).
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled",
                 "static", "_queue")

    def __init__(self, time: int, priority: int, seq: int,
                 callback: Callable[[], None], label: str = "",
                 queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        #: Static events are owned by their scheduler (e.g. a switch's scan
        #: event) and re-enter the queue via :meth:`EventQueue.push_static`;
        #: the dispatch loop must never recycle them — the owner may have
        #: already re-pushed the same object from inside its own callback.
        self.static = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be dropped when reached.

        Equivalent to :meth:`EventQueue.cancel` — the owning queue's live
        count is kept consistent either way.  The callback reference is
        released immediately so a cancelled entry parked deep in the heap
        cannot keep a closure (and everything it captures) alive.
        """
        if not self.cancelled:
            self.cancelled = True
            self.callback = None
            queue = self._queue
            if queue is not None:
                # Inlined queue bookkeeping — cancels are a hot path in
                # timeout-heavy protocols.
                self._queue = None
                live = queue._live - 1
                queue._live = live
                heap_size = len(queue._heap)
                if (heap_size >= queue.COMPACT_MIN_ENTRIES
                        and live < (heap_size >> 1)):
                    queue._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} p={self.priority} {self.label!r}{state}>"


#: Heap entries: the ``(time, priority, seq)`` tuple key plus the event.
#: ``seq`` is unique, so comparisons never fall through to the event object.
_HeapEntry = Tuple[int, int, int, Event]


class EventQueue:
    """Priority queue of :class:`Event` objects keyed by time."""

    #: Heaps smaller than this are never compacted (rebuild cost would
    #: exceed the skip cost it saves).  Read by :meth:`Event.cancel`.
    COMPACT_MIN_ENTRIES = 512
    #: Upper bound on pooled Event objects kept for reuse.
    FREELIST_MAX = 8192

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._live = 0
        self._free: List[Event] = []
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, callback: Callable[[], None],
             priority: int = 0, label: str = "") -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` and return the event.

        ``priority``/``label`` are positional-or-keyword: the hottest callers
        (switch scan scheduling, message forwarding) pass them positionally
        to skip keyword-argument unpacking.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.label = label
            event.cancelled = False
            event._queue = self
        else:
            event = Event(time, priority, seq, callback, label, queue=self)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def push_static(self, event: Event, time: int) -> None:
        """Re-queue a caller-owned permanent event at absolute cycle ``time``.

        The fast path for events that fire millions of times and are never
        cancelled (switch scans): only the time and sequence number change,
        the callback/label/priority are fixed at construction, and the pool
        is bypassed entirely.  The caller guarantees the event is not
        currently queued (one pending instance at a time) and has set
        ``event.static`` so the dispatch loop leaves the object alone after
        firing it.
        """
        seq = self._seq
        self._seq = seq + 1
        event.time = time
        event.seq = seq
        event.cancelled = False
        event._queue = self
        heapq.heappush(self._heap, (time, event.priority, seq, event))
        self._live += 1

    def new_static_event(self, callback: Callable[[], None], label: str = "",
                         priority: int = 0) -> Event:
        """Create a caller-owned static event compatible with this queue.

        Static events (e.g. a switch's scan event) are re-queued via
        :meth:`push_static` and never recycled by the dispatch loop.  Both
        kernel tiers provide this factory so owners never construct events
        of the wrong tier (a compiled queue only accepts compiled events).
        """
        event = Event(0, priority, 0, callback, label)
        event.static = True
        return event

    def _recycle_cancelled(self, event: Event) -> None:
        """Pool a cancelled entry skimmed off the heap.

        Cancellation already nulled the callback and disowned the queue, and
        the handle is dead by the lifecycle rule (DESIGN.md §5), so the
        object is free for reuse the moment its heap entry is discarded.
        Without this, timeout-heavy patterns (schedule + cancel per
        transaction) allocate a fresh ``Event`` per timeout even though the
        freelist exists — the ``event_churn`` regression fixed in PR 7.
        """
        event.label = ""
        free = self._free
        if len(free) < self.FREELIST_MAX:
            free.append(event)

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                self._recycle_cancelled(event)
                continue
            self._live -= 1
            # Disown the event: a later cancel() on an already-fired event
            # (e.g. clearing a transaction timeout after it went off) must
            # not decrement the live count again.
            event._queue = None
            return event
        return None

    def pop_batch(self, batch: List[Event],
                  max_count: Optional[int] = None) -> int:
        """Pop every live event sharing the minimal ``(time, priority)``.

        Appends the events to ``batch`` in ``seq`` (FIFO) order and returns
        how many were appended (0 when the queue is empty).  ``max_count``
        caps the batch; leftover same-key events simply stay queued and come
        out first on the next call.
        """
        heap = self._heap
        heappop = heapq.heappop
        count = 0
        batch_time = -1
        batch_priority = 0
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heappop(heap)
                self._recycle_cancelled(event)
                continue
            if count == 0:
                batch_time = entry[0]
                batch_priority = entry[1]
            elif entry[0] != batch_time or entry[1] != batch_priority:
                break
            heappop(heap)
            event._queue = None
            batch.append(event)
            count += 1
            if max_count is not None and count >= max_count:
                break
        self._live -= count
        return count

    def unpop(self, events: List[Event]) -> None:
        """Return popped-but-unexecuted events to the queue (stop() mid-batch).

        Heap keys are reconstructed from the events' unchanged
        ``(time, priority, seq)``, so dispatch order is exactly preserved.
        """
        for event in events:
            if event.cancelled:
                continue
            event._queue = self
            heapq.heappush(self._heap,
                           (event.time, event.priority, event.seq, event))
            self._live += 1

    def recycle(self, event: Event) -> None:
        """Return a fired event to the pool (kernel use only).

        Any handle to the event becomes dead: the object may be handed out
        again by the next :meth:`push`.
        """
        event.callback = None
        event.label = ""
        event._queue = None
        event.cancelled = True
        free = self._free
        if len(free) < self.FREELIST_MAX:
            free.append(event)

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event without popping it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            self._recycle_cancelled(heapq.heappop(heap)[3])
        if not heap:
            return None
        return heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap from live ones.

        Keys are untouched, so the total dispatch order is identical — only
        the heap's internal arrangement changes.  Dropped (cancelled)
        entries feed the freelist: they are exactly the objects a
        cancel-heavy pattern would otherwise reallocate.
        """
        live: List[_HeapEntry] = []
        free = self._free
        freelist_max = self.FREELIST_MAX
        for entry in self._heap:
            event = entry[3]
            if event.cancelled:
                event.label = ""
                if len(free) < freelist_max:
                    free.append(event)
            else:
                live.append(entry)
        self._heap = live
        heapq.heapify(self._heap)
        self.compactions += 1

    def drain(self) -> Iterator[Event]:
        """Yield and remove every remaining live event (used at teardown).

        Drained events are handed to the caller for inspection and are *not*
        recycled into the pool.
        """
        while True:
            event = self.pop()
            if event is None:
                return
            yield event


class Simulator:
    """The simulation clock plus the event queue.

    Every component holds a reference to one :class:`Simulator` and uses
    :meth:`schedule` / :meth:`schedule_at` to advance its own state machines.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self._now = 0
        self._running = False
        self._stop_requested = False
        self.events_executed = 0
        self._quiesce_hooks: List[Callable[[], None]] = []

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], None], *,
                 priority: int = 0, label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.push(self._now + delay, callback,
                               priority=priority, label=label)

    def schedule_at(self, time: int, callback: Callable[[], None], *,
                    priority: int = 0, label: str = "") -> Event:
        """Schedule ``callback`` at an absolute cycle (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self._now}, time={time})")
        return self.queue.push(time, callback, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self.queue.cancel(event)

    def add_quiesce_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked whenever the event queue drains.

        Workload drivers use this to inject the next batch of work so that
        long simulations do not need every future event pre-scheduled.
        """
        self._quiesce_hooks.append(hook)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` cycles, or ``max_events``.

        Returns the simulation time at which execution stopped.

        The dispatch loop is fused with the queue (direct heap access, no
        per-event ``peek``/``pop`` calls): events come off the heap in
        ``(time, priority, seq)`` order and execute immediately, so the
        order is identical to the classic pop-one-dispatch-one loop —
        including events a callback schedules for the current cycle, whose
        higher sequence numbers place them after the already-queued ones.
        """
        self._running = True
        self._stop_requested = False
        executed = 0
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        freelist = queue._free
        freelist_max = queue.FREELIST_MAX
        # Sentinel bounds: one int compare per event instead of a None check
        # plus a compare.  Simulation times and event counts stay far below
        # 2**62 (a 4 GHz machine would need ~36 years of simulated time).
        until_bound = until if until is not None else 1 << 62
        events_bound = max_events if max_events is not None else 1 << 62
        heappush = heapq.heappush
        try:
            while True:
                if self._stop_requested:
                    break
                if executed >= events_bound:
                    break
                if not heap:
                    made_progress = False
                    for hook in self._quiesce_hooks:
                        hook()
                    heap = queue._heap
                    if queue.peek_time() is not None:
                        made_progress = True
                    if not made_progress:
                        break
                    continue
                # Pop first, discard cancelled entries lazily (compaction
                # keeps their number short) — one heap access per event
                # instead of a peek-then-pop pair.
                entry = heappop(heap)
                event = entry[3]
                if event.cancelled:
                    # Recycle the skimmed entry (cancel already nulled the
                    # callback and disowned the queue; the handle is dead).
                    event.label = ""
                    if len(freelist) < freelist_max:
                        freelist.append(event)
                    # Compaction may have replaced the heap list.
                    heap = queue._heap
                    continue
                next_time = entry[0]
                if next_time > until_bound:
                    # Out of the window: put the event back (same tuple, so
                    # ordering is untouched) and stop at the bound.
                    heappush(heap, entry)
                    self._now = until
                    break
                queue._live -= 1
                event._queue = None
                self._now = next_time
                event.callback()
                executed += 1
                # Inline of queue.recycle() — this is the single hottest
                # statement sequence in the simulator.  Static events are
                # owner-managed and skipped: the callback may have already
                # re-pushed the same object (scan rescheduling itself), and
                # recycling it here would corrupt the queued entry.
                if not event.static:
                    event.callback = None
                    event.label = ""
                    event.cancelled = True
                    if len(freelist) < freelist_max:
                        freelist.append(event)
                # A callback may compact the queue (via cancel); re-read.
                heap = queue._heap
        finally:
            self._running = False
            # Deferred tally (one attribute increment per event saved);
            # additive, so a nested run() inside a callback stays correct.
            self.events_executed += executed
        return self._now

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (ignoring quiesce hooks)."""
        saved = self._quiesce_hooks
        self._quiesce_hooks = []
        try:
            return self.run(max_events=max_events)
        finally:
            self._quiesce_hooks = saved

"""Event-driven simulation kernel.

The kernel is a classic calendar-of-events scheduler built on ``heapq``.  All
timing in the reproduction is expressed in *cycles* of the (nominally 4 GHz)
system clock; the mapping from cycles to wall-clock "seconds" used by the
paper's recovery-rate experiments is configurable (see
:class:`repro.sim.config.SystemConfig.cycles_per_second`).

Design notes
------------
* Events are ordered by ``(time, priority, sequence)``.  The sequence number
  makes ordering of same-cycle events deterministic and FIFO with respect to
  scheduling order, which keeps every simulation run reproducible for a fixed
  seed.
* The scheduler never uses wall-clock time or global randomness; components
  that need randomness draw from :class:`repro.sim.rng.DeterministicRng`
  streams handed to them at construction time.
* Callbacks are plain callables.  A callback may schedule further events and
  may cancel events it owns.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for fatal inconsistencies inside the simulation kernel."""


class Event:
    """A single scheduled event.

    A plain ``__slots__`` class rather than a dataclass: millions of events
    are created per simulated run, so per-instance dict overhead and
    generated ``__lt__`` calls are measurable.  Heap ordering lives in the
    queue's ``(time, priority, seq)`` tuple keys, not on the event itself.

    Attributes
    ----------
    time:
        Absolute cycle at which the event fires.
    priority:
        Tie-breaker within a cycle; lower fires first.  The kernel reserves
        no priorities — subsystems pick their own conventions.
    seq:
        Monotonic sequence number assigned by the queue; guarantees FIFO
        ordering among events with equal ``(time, priority)``.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag (used in traces and error messages).
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled",
                 "_queue")

    def __init__(self, time: int, priority: int, seq: int,
                 callback: Callable[[], None], label: str = "",
                 queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be dropped when reached.

        Equivalent to :meth:`EventQueue.cancel` — the owning queue's live
        count is kept consistent either way.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} p={self.priority} {self.label!r}{state}>"


#: Heap entries: the ``(time, priority, seq)`` tuple key plus the event.
#: ``seq`` is unique, so comparisons never fall through to the event object.
_HeapEntry = Tuple[int, int, int, Event]


class EventQueue:
    """Priority queue of :class:`Event` objects keyed by time."""

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, callback: Callable[[], None], *,
             priority: int = 0, label: str = "") -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, label, queue=self)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            # Disown the event: a later cancel() on an already-fired event
            # (e.g. clearing a transaction timeout after it went off) must
            # not decrement the live count again.
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event without popping it."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    def drain(self) -> Iterator[Event]:
        """Yield and remove every remaining live event (used at teardown)."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event


class Simulator:
    """The simulation clock plus the event queue.

    Every component holds a reference to one :class:`Simulator` and uses
    :meth:`schedule` / :meth:`schedule_at` to advance its own state machines.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self._now = 0
        self._running = False
        self._stop_requested = False
        self.events_executed = 0
        self._quiesce_hooks: List[Callable[[], None]] = []

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], None], *,
                 priority: int = 0, label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.push(self._now + delay, callback,
                               priority=priority, label=label)

    def schedule_at(self, time: int, callback: Callable[[], None], *,
                    priority: int = 0, label: str = "") -> Event:
        """Schedule ``callback`` at an absolute cycle (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self._now}, time={time})")
        return self.queue.push(time, callback, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self.queue.cancel(event)

    def add_quiesce_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked whenever the event queue drains.

        Workload drivers use this to inject the next batch of work so that
        long simulations do not need every future event pre-scheduled.
        """
        self._quiesce_hooks.append(hook)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` cycles, or ``max_events``.

        Returns the simulation time at which execution stopped.
        """
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.queue.peek_time()
                if next_time is None:
                    made_progress = False
                    for hook in self._quiesce_hooks:
                        hook()
                    if self.queue.peek_time() is not None:
                        made_progress = True
                    if not made_progress:
                        break
                    continue
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self.queue.pop()
                assert event is not None
                self._now = event.time
                event.callback()
                executed += 1
                self.events_executed += 1
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (ignoring quiesce hooks)."""
        saved = self._quiesce_hooks
        self._quiesce_hooks = []
        try:
            return self.run(max_events=max_events)
        finally:
            self._quiesce_hooks = saved

"""Component and port abstractions.

All hardware structures in the reproduction (cache controllers, directory
controllers, switches, network interfaces, the SafetyNet log, processors)
derive from :class:`Component`.  A component owns statistics counters, has a
stable ``name`` used in reports, and communicates with other components
through :class:`Port` objects, which deliver messages with a per-port latency
after the sending cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import StatsRegistry


class Component:
    """Base class for every simulated hardware structure."""

    def __init__(self, name: str, sim: Simulator, stats: Optional[StatsRegistry] = None) -> None:
        self.name = name
        self.sim = sim
        self.stats = stats if stats is not None else StatsRegistry()
        self._ports: Dict[str, "Port"] = {}
        #: Cache of this component's counters, keyed by the *short* stat
        #: name; avoids an f-string + registry lookup per count() call.
        self._counters: Dict[str, Any] = {}

    # ------------------------------------------------------------------ ports
    def add_port(self, port_name: str, latency: int = 1) -> "Port":
        """Create (or return) an outbound port with a fixed delivery latency."""
        if port_name in self._ports:
            return self._ports[port_name]
        port = Port(owner=self, name=port_name, latency=latency)
        self._ports[port_name] = port
        return port

    def port(self, port_name: str) -> "Port":
        """Look up a previously created port."""
        return self._ports[port_name]

    # ------------------------------------------------------------- conveniences
    def schedule(self, delay: int, callback: Callable[[], None], *,
                 priority: int = 0, label: str = "") -> Any:
        """Schedule a callback relative to the current cycle.

        Pushes straight onto the simulator's queue (one call layer less
        than ``sim.schedule``; this is called once or more per event).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        sim = self.sim
        return sim.queue.push(sim._now + delay, callback, priority,
                              label or self.name)

    def count(self, stat: str, amount: int = 1) -> None:
        """Increment a named counter on this component's stats registry."""
        counter = self._counters.get(stat)
        if counter is None:
            counter = self.stats.counter(f"{self.name}.{stat}")
            self._counters[stat] = counter
        counter.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Port:
    """A unidirectional, latency-annotated message channel between components.

    A port is *bound* to a receiver callback.  Sending through an unbound
    port raises immediately — silent message loss is one of the corner cases
    this codebase is explicitly not allowed to have.
    """

    def __init__(self, owner: Component, name: str, latency: int = 1) -> None:
        self.owner = owner
        self.name = name
        self.latency = latency
        self._receiver: Optional[Callable[[Any], None]] = None
        self.messages_sent = 0
        self._label = f"{owner.name}.{name}"

    def bind(self, receiver: Callable[[Any], None]) -> None:
        """Attach the receiving callback (one receiver per port)."""
        self._receiver = receiver

    @property
    def bound(self) -> bool:
        return self._receiver is not None

    def send(self, payload: Any, extra_delay: int = 0) -> None:
        """Deliver ``payload`` to the bound receiver after the port latency."""
        if self._receiver is None:
            raise RuntimeError(
                f"port {self.owner.name}.{self.name} is not bound to a receiver")
        self.messages_sent += 1
        receiver = self._receiver
        self.owner.sim.schedule(self.latency + extra_delay,
                                lambda: receiver(payload),
                                label=self._label)

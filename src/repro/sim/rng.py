"""Deterministic random-number streams.

The paper's methodology (Alameldeen et al.) perturbs memory latencies with
small pseudo-random jitter and runs each design point several times to cope
with the non-determinism of commercial workloads.  We reproduce that with
named, independently seeded streams so that (a) two components never share a
stream (which would couple their behaviour to scheduling order) and (b) an
entire run is reproducible from a single root seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Sequence, Tuple

import numpy as np


class BufferedIntegers:
    """Chunked prefetch of ``Generator.integers(low, high)`` draws.

    numpy fills ``integers(low, high, size=n)`` element by element with the
    same bounded-rejection routine as ``n`` scalar calls, consuming the bit
    stream in the same order — so prefetching a chunk yields a sequence
    *bit-identical* to per-draw scalar calls (pinned by
    ``test_stats_rng_config``).  The only requirement is that the underlying
    stream is consumed exclusively through this buffer: interleaving other
    draws on the same stream would consume the same bits in a different
    order.
    """

    __slots__ = ("_stream", "_low", "_high", "_chunk", "_buf", "_pos")

    def __init__(self, stream: np.random.Generator, low: int, high: int,
                 chunk: int = 4096) -> None:
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        self._stream = stream
        self._low = low
        self._high = high
        self._chunk = chunk
        self._buf: Sequence[int] = ()
        self._pos = 0

    def next(self) -> int:
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            # .tolist() converts the whole chunk to plain ints once, which
            # is far cheaper than one numpy-scalar __int__ per draw.
            buf = self._stream.integers(self._low, self._high,
                                        size=self._chunk).tolist()
            self._buf = buf
            pos = 0
        self._pos = pos + 1
        return buf[pos]


class DeterministicRng:
    """Root of a tree of named, independent random streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._int_buffers: Dict[Tuple[str, int, int], BufferedIntegers] = {}

    def _seed_for(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._seed_for(name))
        return self._streams[name]

    def spawn(self, name: str) -> "DeterministicRng":
        """Create a child RNG tree rooted at a derived seed."""
        return DeterministicRng(self._seed_for(name))

    # ------------------------------------------------------------ conveniences
    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)`` drawn from the named stream."""
        return int(self.stream(name).integers(low, high))

    def buffered_randint(self, name: str, low: int, high: int) -> int:
        """Like :meth:`randint` but prefetched in chunks — bit-identical to
        the scalar call sequence for a stream consumed only through this
        method with fixed bounds (see :class:`BufferedIntegers`).  Use for
        per-event hot paths (e.g. the processor's compute-gap jitter)."""
        key = (name, low, high)
        buf = self._int_buffers.get(key)
        if buf is None:
            buf = BufferedIntegers(self.stream(name), low, high)
            self._int_buffers[key] = buf
        return buf.next()

    def random(self, name: str) -> float:
        """Uniform float in ``[0, 1)`` from the named stream."""
        return float(self.stream(name).random())

    def choice(self, name: str, options: Sequence):
        """Uniform choice from a non-empty sequence."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        idx = self.randint(name, 0, len(options))
        return options[idx]

    def geometric(self, name: str, p: float) -> int:
        """Geometric variate (number of trials, >= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        return int(self.stream(name).geometric(p))

    def zipf_index(self, name: str, n: int, alpha: float = 1.1) -> int:
        """Zipf-distributed index in ``[0, n)`` (used for hot-set workloads)."""
        if n <= 0:
            raise ValueError("n must be positive")
        if alpha <= 1.0:
            # Fall back to uniform for degenerate exponents.
            return self.randint(name, 0, n)
        while True:
            value = int(self.stream(name).zipf(alpha)) - 1
            if value < n:
                return value

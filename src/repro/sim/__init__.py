"""Discrete-event simulation substrate.

This package provides the simulation kernel used by every other subsystem of
the reproduction: an event-driven scheduler (:mod:`repro.sim.engine`), the
component/port abstractions (:mod:`repro.sim.component`), statistics
collection (:mod:`repro.sim.stats`), deterministic random-number helpers
(:mod:`repro.sim.rng`) and the system configuration dataclasses that mirror
Table 2 of the paper (:mod:`repro.sim.config`).
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.component import Component, Port
from repro.sim.stats import Counter, Histogram, IntervalSampler, StatsRegistry
from repro.sim.config import (
    CacheConfig,
    CheckpointConfig,
    InterconnectConfig,
    ProcessorConfig,
    SpeculationConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.sim.rng import DeterministicRng

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Component",
    "Port",
    "Counter",
    "Histogram",
    "IntervalSampler",
    "StatsRegistry",
    "CacheConfig",
    "CheckpointConfig",
    "InterconnectConfig",
    "ProcessorConfig",
    "SpeculationConfig",
    "SystemConfig",
    "WorkloadConfig",
    "DeterministicRng",
]

"""Kernel tier selection: pure-Python vs the optional compiled extension.

The simulation kernel ships in two interchangeable implementations:

* the **pure** tier — the ordinary Python modules (``repro.sim.engine``,
  ``repro.interconnect.switch``, ``repro.safetynet.log``), always present;
* the **compiled** tier — ``repro._ckernel``, a hand-written CPython
  extension that reimplements the event queue, the fused dispatch loop, the
  switch scan/forward hot path and the undo-record append path in C.

The two tiers are **byte-identical**: every dispatch decision is a pure
function of the ``(time, priority, seq)`` ordering keys and every counter is
maintained with the same lazy-creation semantics, so reports, golden digests
and content hashes never depend on which tier executed a run.  The parity is
gated by ``tests/test_kernel_tier.py`` (fig4 ``--quick --json`` byte-compat,
golden workload digests, a randomized design-point sweep).

Selection
---------
``REPRO_KERNEL`` picks the tier per process:

* ``auto`` (default) — use the compiled tier when the extension imports,
  silently fall back to pure otherwise.  Building the extension
  (``python tools/build_kernel.py``) is the opt-in act; nothing in the
  repository requires a C toolchain.
* ``pure`` — force the pure tier even when the extension is available.
* ``compiled`` — require the compiled tier; raise with build instructions
  when the extension is missing (used by the CI compiled-tier job so a
  broken build can never silently regress to measuring pure Python).

:func:`set_kernel_tier` overrides the environment for the current process
(the ``--kernel-tier`` runner flag and the benchmark ``--tier`` axis use
it).  Selection is consulted at *system construction time*, not at import
time, so one process can run both tiers back to back — which is exactly how
the parity tests compare them.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

#: Environment variable that selects the kernel tier for the process.
ENV_VAR = "REPRO_KERNEL"

#: Recognised tier requests.
TIERS = ("auto", "pure", "compiled")

_UNSET = object()

#: Cached import of :mod:`repro._ckernel` (``_UNSET`` until first probed,
#: then the module or ``None``).
_compiled_module: Any = _UNSET

#: Process-level override installed by :func:`set_kernel_tier`.
_override: Optional[str] = None


class KernelTierError(RuntimeError):
    """Raised when ``REPRO_KERNEL=compiled`` but the extension is missing."""


def _validate(tier: str) -> str:
    tier = tier.strip().lower()
    if tier not in TIERS:
        raise ValueError(
            f"unknown kernel tier {tier!r}; expected one of {', '.join(TIERS)}")
    return tier


def compiled_module() -> Optional[Any]:
    """The ``repro._ckernel`` extension module, or ``None`` if not built."""
    global _compiled_module
    if _compiled_module is _UNSET:
        try:
            from repro import _ckernel  # type: ignore[attr-defined]
        except ImportError:
            _compiled_module = None
        else:
            _compiled_module = _ckernel
    return _compiled_module


def compiled_available() -> bool:
    """Whether the compiled extension can be imported in this process."""
    return compiled_module() is not None


def requested_tier() -> str:
    """The tier asked for: the override if set, else ``REPRO_KERNEL``."""
    if _override is not None:
        return _override
    return _validate(os.environ.get(ENV_VAR, "auto") or "auto")


def set_kernel_tier(tier: Optional[str]) -> None:
    """Override the environment selection (``None`` restores it).

    Takes effect for systems/simulators built *after* the call; already
    -constructed simulators keep the implementation they were built with.
    """
    global _override
    _override = None if tier is None else _validate(tier)


def active_tier() -> str:
    """Resolve the request to the tier that will actually execute.

    Returns ``"pure"`` or ``"compiled"``.  ``auto`` degrades silently;
    an explicit ``compiled`` request raises :class:`KernelTierError` when
    the extension is absent.
    """
    requested = requested_tier()
    if requested == "pure":
        return "pure"
    if compiled_available():
        return "compiled"
    if requested == "compiled":
        raise KernelTierError(
            "REPRO_KERNEL=compiled but the repro._ckernel extension is not "
            "built for this interpreter; run `python tools/build_kernel.py` "
            "(requires a C compiler) or select the pure tier")
    return "pure"


def engine_impl() -> Optional[Any]:
    """The compiled engine namespace for new simulators, or ``None`` (pure)."""
    return compiled_module() if active_tier() == "compiled" else None


def new_simulator() -> Any:
    """Construct a simulator on the currently selected tier.

    This is the single seam through which the tier choice reaches the
    simulation: everything else (events, the queue, static scan events)
    hangs off the simulator the system was built with.
    """
    impl = engine_impl()
    if impl is not None:
        return impl.Simulator()
    from repro.sim.engine import Simulator
    return Simulator()


def compiler_tag() -> Optional[str]:
    """Identifying string of the compiler that built the extension."""
    module = compiled_module()
    return getattr(module, "COMPILER", None) if module is not None else None


def kernel_info() -> Dict[str, Any]:
    """Tier provenance for benchmark documents and diagnostics."""
    info: Dict[str, Any] = {
        "requested": requested_tier(),
        "compiled_available": compiled_available(),
    }
    # Resolve without raising so diagnostics work on broken setups too.
    try:
        info["tier"] = active_tier()
    except KernelTierError:
        info["tier"] = "unavailable"
    compiler = compiler_tag()
    if compiler is not None:
        info["compiler"] = compiler
    return info

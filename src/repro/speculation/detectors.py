"""The paper's three speculative designs plus the Figure 4 injector.

Each class implements the :class:`repro.speculation.base.Speculation`
lifecycle for one row of Table 1.  The *detection sites* stay where the
paper puts them — inside the protocol controllers ("one specific invalid
transition") and the per-transaction timeout — but everything around a
site that the two system classes used to duplicate now lives here: which
configurations arm the design, the timeout calculation, the
forward-progress policy construction, and the per-design accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import MisspeculationEvent, SpeculationKind
from repro.core.forward_progress import (
    CombinedPolicy,
    DisableAdaptiveRoutingPolicy,
    SlowStartPolicy,
)
from repro.sim.config import (
    CheckpointConfig,
    ProtocolKind,
    ProtocolVariant,
    SpeculationConfig,
    SystemConfig,
)
from repro.sim.engine import Simulator
from repro.speculation.base import Speculation
from repro.speculation.registry import register_speculation


def transaction_timeout_cycles(checkpoint: CheckpointConfig,
                               speculation: SpeculationConfig, *,
                               checkpoint_interval_cycles: Optional[int] = None) -> int:
    """Timeout used by the deadlock detector.

    The paper chooses a timeout of three checkpoint intervals: long enough to
    avoid false positives, short enough not to delay SafetyNet commitment
    (which must wait out the detection latency before declaring an interval
    mis-speculation-free).
    """
    interval = (checkpoint_interval_cycles if checkpoint_interval_cycles is not None
                else checkpoint.directory_interval_cycles)
    return max(1, speculation.timeout_checkpoint_intervals) * interval


@register_speculation(SpeculationKind.DIRECTORY_P2P_ORDER.value)
class DirectoryP2POrderSpeculation(Speculation):
    """S1 — the directory protocol speculates on point-to-point ordering.

    Detection lives in
    :class:`repro.coherence.directory.cache_controller.DirectoryCacheController`
    (a ForwardedRequest arriving for a block the controller cannot supply);
    forward progress selectively disables adaptive routing so the
    re-execution window is order-preserving.
    """

    kind = SpeculationKind.DIRECTORY_P2P_ORDER
    paper_section = "3.1"

    @classmethod
    def applies_to(cls, config: SystemConfig) -> bool:
        return (config.protocol == ProtocolKind.DIRECTORY
                and config.variant == ProtocolVariant.SPECULATIVE)

    def arm(self, system) -> None:
        spec = system.config.speculation
        self.network = system.network
        self.policy = DisableAdaptiveRoutingPolicy(
            system.network.disable_adaptive_routing,
            spec.adaptive_routing_disable_cycles)
        self.manager.set_policy(self.kind, self.policy)

    def stats(self):
        payload = super().stats()
        if self.armed_on is not None:
            payload["routing_windows_applied"] = self.policy.applications
            payload["adaptive_routing_disabled"] = (
                self.network.adaptive_routing_disabled)
        return payload


@register_speculation(SpeculationKind.SNOOPING_CORNER_CASE.value)
class SnoopingCornerCaseSpeculation(Speculation):
    """S2 — the snooping protocol leaves a writeback corner case unhandled.

    Detection lives in
    :class:`repro.coherence.snooping.cache_controller.SnoopingCacheController`
    (a second foreign RequestReadWrite observed in the LOST_OWNERSHIP
    transient); forward progress is slow-start, which with one outstanding
    transaction makes the two-transaction race impossible.
    """

    kind = SpeculationKind.SNOOPING_CORNER_CASE
    paper_section = "3.2"

    @classmethod
    def applies_to(cls, config: SystemConfig) -> bool:
        return (config.protocol == ProtocolKind.SNOOPING
                and config.variant == ProtocolVariant.SPECULATIVE)

    def arm(self, system) -> None:
        spec = system.config.speculation
        self.policy = SlowStartPolicy(
            system.slow_start_gate,
            max_outstanding=spec.slow_start_max_outstanding,
            duration_cycles=spec.slow_start_cycles)
        self.manager.set_policy(self.kind, self.policy)


@register_speculation(SpeculationKind.INTERCONNECT_DEADLOCK.value)
class InterconnectDeadlockSpeculation(Speculation):
    """S3 — deadlock detection by coherence-transaction timeout (Section 4).

    The *design* being speculated on is the no-virtual-channel interconnect
    (selected by ``InterconnectConfig.speculative_no_vc`` or the
    ``interconnect_no_vc_speculation`` flag); the timeout watchdog itself is
    armed on every system that enables this speculation — it is also the
    safety net that keeps a conventionally designed network from wedging a
    run silently, exactly as in the repository's pre-refactor wiring.
    """

    kind = SpeculationKind.INTERCONNECT_DEADLOCK
    paper_section = "4"

    @classmethod
    def applies_to(cls, config: SystemConfig) -> bool:
        return True

    def arm(self, system) -> None:
        config = system.config
        spec = config.speculation
        self.timeout_cycles = transaction_timeout_cycles(
            config.checkpoint, spec,
            checkpoint_interval_cycles=system.checkpoint_interval_cycles())
        for controller in system.cache_controllers():
            controller.timeout_cycles = self.timeout_cycles
        slow_start = SlowStartPolicy(
            system.slow_start_gate,
            max_outstanding=spec.slow_start_max_outstanding,
            duration_cycles=spec.slow_start_cycles)
        if system.kind == ProtocolKind.DIRECTORY:
            # The directory system escalates: the first recovery just
            # perturbs timing, repeats within the window enter slow-start.
            self.policy = CombinedPolicy(
                system.sim, slow_start, free_retries=1,
                window_cycles=max(spec.slow_start_cycles,
                                  4 * config.checkpoint.directory_interval_cycles))
        else:
            self.policy = slow_start
        self.manager.set_policy(self.kind, self.policy)

    def ground_truth_report(self, system):
        """Wait-for-graph scan of the system's network (tests/diagnostics).

        The production detector is the timeout; this exposes the explicit
        :func:`repro.interconnect.deadlock.detect_network_deadlock` scan for
        systems that have a packet-switched network (None otherwise).
        """
        network = getattr(system, "network", None)
        if network is None:
            return None
        from repro.interconnect.deadlock import detect_network_deadlock

        return detect_network_deadlock(network)

    def stats(self):
        payload = super().stats()
        if self.armed_on is not None:
            payload["timeout_cycles"] = self.timeout_cycles
        return payload


@register_speculation(SpeculationKind.INJECTED.value)
class PeriodicInjectionSpeculation(Speculation):
    """The Figure 4 stress test: recoveries at a fixed rate per "second".

    Not armed from configuration (``applies_to`` is always False); it is
    attached explicitly through
    :meth:`repro.speculation.manager.SpeculationManager.attach_injector`
    with the requested rate.  The injector converts the rate into a period
    in cycles using the system's ``cycles_per_second`` scale and reports an
    ``INJECTED`` mis-speculation every period.
    """

    kind = SpeculationKind.INJECTED
    paper_section = "5.3"

    def __init__(self, manager, *, rate_per_second: float,
                 cycles_per_second: float) -> None:
        if rate_per_second < 0:
            raise ValueError("rate must be non-negative")
        if cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")
        super().__init__(manager)
        self.rate_per_second = rate_per_second
        self.cycles_per_second = cycles_per_second
        self.injections = 0
        self._active = False

    @classmethod
    def applies_to(cls, config: SystemConfig) -> bool:
        return False  # attached explicitly with a rate, never from config

    def arm(self, system) -> None:
        """Nothing to wire: injection is driven by :meth:`start`."""

    @property
    def period_cycles(self) -> Optional[int]:
        if self.rate_per_second == 0:
            return None
        return max(1, int(round(self.cycles_per_second / self.rate_per_second)))

    def start(self) -> None:
        """Begin injecting (no-op for a zero rate)."""
        period = self.period_cycles
        if period is None or self._active:
            return
        self._active = True
        self.sim.schedule(period, self._fire, label="recovery-injector")

    def stop(self) -> None:
        self._active = False

    def _fire(self) -> None:
        if not self._active:
            return
        self.injections += 1
        self.manager.report(MisspeculationEvent(
            kind=SpeculationKind.INJECTED,
            detected_at=self.sim.now,
            description=(f"injected recovery #{self.injections} "
                         f"({self.rate_per_second}/s stress test)")))
        period = self.period_cycles
        assert period is not None
        self.sim.schedule(period, self._fire, label="recovery-injector")

    def stats(self):
        payload = super().stats()
        payload["injections"] = self.injections
        payload["rate_per_second"] = self.rate_per_second
        return payload


class _CallbackHost:
    """Minimal manager stand-in: a simulator plus a report callback."""

    def __init__(self, sim: Simulator, report) -> None:
        self.sim = sim
        self.report = report


class RecoveryRateInjector(PeriodicInjectionSpeculation):
    """Legacy standalone injector (simulator + callback, no manager).

    Kept for callers that drive injection outside a built system; new code
    should go through ``System.attach_recovery_injector`` /
    :meth:`SpeculationManager.attach_injector`.
    """

    def __init__(self, sim: Simulator, report, *, rate_per_second: float,
                 cycles_per_second: float) -> None:
        super().__init__(_CallbackHost(sim, report),
                         rate_per_second=rate_per_second,
                         cycles_per_second=cycles_per_second)

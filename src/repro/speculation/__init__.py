"""The unified speculation subsystem.

The paper's thesis — speculation as a *single reusable design pattern*
(detect a rare corner case, recover via SafetyNet, guarantee forward
progress) applied three times — is rendered here as a pluggable layer,
mirroring the experiment registry (:mod:`repro.campaign`) and the topology
registry (:mod:`repro.interconnect.topology`):

* :class:`Speculation` — the ABC capturing the arm / detect / on_recovery /
  stats lifecycle (:mod:`repro.speculation.base`);
* :func:`register_speculation` — the registry keyed by the stable names of
  :class:`repro.core.events.SpeculationKind`
  (:mod:`repro.speculation.registry`);
* the paper's S1/S2/S3 designs plus the Figure 4 injector as concrete
  implementations (:mod:`repro.speculation.detectors`);
* :class:`SpeculationManager` — one per system; owns the SafetyNet
  interaction, coalesces concurrent detections into a single rollback,
  keeps per-kind accounting and arms whatever the configuration enables
  (:mod:`repro.speculation.manager`).
"""

from repro.speculation.base import Speculation
from repro.speculation.detectors import (
    DirectoryP2POrderSpeculation,
    InterconnectDeadlockSpeculation,
    PeriodicInjectionSpeculation,
    RecoveryRateInjector,
    SnoopingCornerCaseSpeculation,
    transaction_timeout_cycles,
)
from repro.speculation.manager import FrameworkStats, SpeculationManager
from repro.speculation.registry import (
    get_speculation,
    register_speculation,
    speculation_names,
)

__all__ = [
    "Speculation",
    "SpeculationManager",
    "FrameworkStats",
    "register_speculation",
    "get_speculation",
    "speculation_names",
    "DirectoryP2POrderSpeculation",
    "SnoopingCornerCaseSpeculation",
    "InterconnectDeadlockSpeculation",
    "PeriodicInjectionSpeculation",
    "RecoveryRateInjector",
    "transaction_timeout_cycles",
]

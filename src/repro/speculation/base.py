"""The :class:`Speculation` abstract base class.

The paper's central claim is that *speculation is one reusable design
pattern* applied three times: choose not to design for a rare corner case,
detect it cheaply when it happens, recover with SafetyNet, and guarantee
forward progress.  This module captures that pattern as an object with an
explicit lifecycle:

``applies_to(config)``
    Class-level predicate: does this speculative design exist in the system
    a given :class:`~repro.sim.config.SystemConfig` describes?  (S1 only
    exists in a speculative-variant directory system, S2 only in a
    speculative-variant snooping system, the deadlock watchdog in every
    system that enables it.)

``arm(system)``
    Wire the detection mechanism into the built system (set controller
    detection flags, install transaction timeouts) and register the
    design's forward-progress policy with the manager.

``on_detection(event, coalesced=...)`` / ``on_recovery(record)``
    Accounting callbacks driven by the
    :class:`~repro.speculation.manager.SpeculationManager` — every
    speculation keeps its own detection/coalesce/recovery counters, which
    replaces the per-controller counters that previously had to be summed
    by hand.

``stats()``
    A JSON-safe snapshot of the above, surfaced through
    :meth:`SpeculationManager.summary`.

Concrete implementations of the paper's three designs plus the Figure 4
injector live in :mod:`repro.speculation.detectors`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, Optional, TYPE_CHECKING

from repro.core.events import MisspeculationEvent, RecoveryRecord, SpeculationKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SystemConfig
    from repro.speculation.manager import SpeculationManager


class Speculation(ABC):
    """One speculative design: detect / recover / forward-progress / account."""

    #: Registry handle; assigned by :func:`register_speculation`.
    name: ClassVar[str] = "abstract"
    #: The event kind this design raises and accounts under.
    kind: ClassVar[SpeculationKind]
    #: Paper section implementing the design (documentation surfaced in stats).
    paper_section: ClassVar[str] = ""

    def __init__(self, manager: "SpeculationManager") -> None:
        self.manager = manager
        self.sim = manager.sim
        self.detections = 0
        self.coalesced = 0
        self.recoveries = 0
        #: Label of the system this instance was armed on (None until armed).
        self.armed_on: Optional[str] = None

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def applies_to(cls, config: "SystemConfig") -> bool:
        """Whether the configured system contains this speculative design."""
        return False

    @abstractmethod
    def arm(self, system) -> None:
        """Install detection hooks and the forward-progress policy."""

    # ------------------------------------------------------------- detection
    def report(self, *, node: Optional[int] = None,
               address: Optional[int] = None, description: str = "",
               details: Optional[Dict[str, Any]] = None
               ) -> Optional[RecoveryRecord]:
        """Raise a mis-speculation of this design's kind via the manager."""
        return self.manager.report(MisspeculationEvent(
            kind=self.kind, detected_at=self.sim.now, node=node,
            address=address, description=description,
            details=details if details is not None else {}))

    # ------------------------------------------------------------ accounting
    def on_detection(self, event: MisspeculationEvent, *,
                     coalesced: bool) -> None:
        """Manager callback: one detection of this kind was reported."""
        self.detections += 1
        if coalesced:
            self.coalesced += 1

    def on_recovery(self, record: RecoveryRecord) -> None:
        """Manager callback: a recovery attributed to this kind completed."""
        self.recoveries += 1

    def stats(self) -> Dict[str, Any]:
        """JSON-safe accounting snapshot."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "paper_section": self.paper_section,
            "armed_on": self.armed_on,
            "detections": self.detections,
            "coalesced": self.coalesced,
            "recoveries": self.recoveries,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"detections={self.detections}, recoveries={self.recoveries})")

"""The speculation registry.

Mirrors the experiment registry (:mod:`repro.campaign.registry`) and the
topology registry (:mod:`repro.interconnect.topology`): a speculative
design is registered under a stable string name and looked up by the
:class:`repro.speculation.manager.SpeculationManager` when it arms a
system.  By convention the registry name of each of the paper's designs is
the ``value`` of its :class:`repro.core.events.SpeculationKind` member, so
configuration (:class:`repro.sim.config.SpeculationConfig`), accounting
(``recoveries_by_kind``) and the registry all speak the same vocabulary:

==========================  ============================  =============
registry name               paper design                  section
==========================  ============================  =============
``directory-p2p-order``     S1 point-to-point ordering    3.1
``snooping-corner-case``    S2 snooping corner case       3.2
``interconnect-deadlock``   S3 no-VC interconnect         4
``injected``                Figure 4 stress injector      5.3
==========================  ============================  =============
"""

from __future__ import annotations

from typing import Dict, List, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.speculation.base import Speculation

_REGISTRY: Dict[str, Type["Speculation"]] = {}


def register_speculation(name: str):
    """Class decorator registering a :class:`Speculation` implementation.

    ``name`` is the stable handle used by
    :meth:`repro.sim.config.SpeculationConfig.enabled_speculations` and the
    per-kind accounting; registering the same name twice is an error.
    """
    def decorate(cls: Type["Speculation"]) -> Type["Speculation"]:
        if name in _REGISTRY:
            raise ValueError(f"speculation {name!r} registered twice")
        cls.name = name
        _REGISTRY[name] = cls
        return cls
    return decorate


def get_speculation(name: str) -> Type["Speculation"]:
    """Look up a registered speculation class by name."""
    # Import for the side effect of running the @register_speculation
    # decorators on first use (same lazy pattern as topology discovery).
    import repro.speculation.detectors  # noqa: F401

    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none registered>"
        raise KeyError(f"unknown speculation {name!r}; known: {known}") from None


def speculation_names() -> List[str]:
    """Every registered speculation name, sorted for stable output."""
    import repro.speculation.detectors  # noqa: F401

    return sorted(_REGISTRY)

"""The speculation manager (one per system).

:class:`SpeculationManager` is the coordinator the rest of the system
reports mis-speculations to; it owns the interaction with SafetyNet.  For
every report it:

1. arbitrates concurrency — recoveries already in progress absorb
   concurrent detections of the same broken state (e.g. several processors
   timing out on the same deadlock), so overlapping mis-speculations
   coalesce into a *single* rollback,
2. asks SafetyNet to perform the system-wide recovery,
3. applies the forward-progress policy registered for the event's
   speculation kind, and
4. accounts for everything per :class:`~repro.core.events.SpeculationKind`
   (counts, rates per scaled second, cost in cycles) so the evaluation
   section's questions — how often do we mis-speculate, and what does each
   recovery cost — can be answered directly.

It is also the uniform attach point for the pluggable speculation layer:
:meth:`arm` instantiates every registered :class:`Speculation` the
configuration enables and lets each wire itself into the built system,
which replaces the injector/timeout plumbing the two system classes used
to duplicate.

Historical note: this class subsumes ``repro.core.framework
.SpeculationFramework``; that module now re-exports it under the old name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.events import MisspeculationEvent, RecoveryRecord, SpeculationKind
from repro.core.forward_progress import ForwardProgressPolicy, NoOpPolicy
from repro.safetynet.manager import SafetyNet
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.speculation.base import Speculation
from repro.speculation.registry import get_speculation


@dataclass
class FrameworkStats:
    """Aggregate accounting of detections and recoveries."""

    detections: int = 0
    coalesced: int = 0
    recoveries: int = 0
    detections_by_kind: Dict[SpeculationKind, int] = field(default_factory=dict)
    recoveries_by_kind: Dict[SpeculationKind, int] = field(default_factory=dict)
    total_recovery_cost_cycles: int = 0


class SpeculationManager:
    """Binds detection, recovery, forward progress and accounting together."""

    def __init__(self, sim: Simulator, safetynet: SafetyNet, *,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.sim = sim
        self.safetynet = safetynet
        self.stats = stats if stats is not None else StatsRegistry()
        self._policies: Dict[SpeculationKind, ForwardProgressPolicy] = {}
        self._default_policy: ForwardProgressPolicy = NoOpPolicy()
        self._attached: Dict[SpeculationKind, Speculation] = {}
        self.events: List[MisspeculationEvent] = []
        self.records: List[RecoveryRecord] = []
        self.framework_stats = FrameworkStats()
        # Every SafetyNet recovery — whoever triggered it — notifies the
        # speculation of the recovered kind, so per-design accounting stays
        # correct even for recoveries initiated outside this manager.
        safetynet.add_recovery_listener(self._notify_recovery)

    # ------------------------------------------------------------------ wiring
    def set_policy(self, kind: SpeculationKind, policy: ForwardProgressPolicy) -> None:
        """Register the forward-progress policy for one speculation kind."""
        self._policies[kind] = policy

    def policy_for(self, kind: SpeculationKind) -> ForwardProgressPolicy:
        return self._policies.get(kind, self._default_policy)

    def attach(self, speculation: Speculation) -> Speculation:
        """Attach a speculation instance (one per kind; latest wins)."""
        self._attached[speculation.kind] = speculation
        return speculation

    def speculation_for(self, kind: SpeculationKind) -> Optional[Speculation]:
        return self._attached.get(kind)

    @property
    def speculations(self) -> List[Speculation]:
        """The attached speculation instances, in attach order."""
        return list(self._attached.values())

    def arm(self, system) -> None:
        """Instantiate and arm every speculation the configuration enables.

        The enabled set comes from
        :meth:`repro.sim.config.SpeculationConfig.enabled_speculations`;
        each class additionally filters itself through ``applies_to`` (S1
        never arms on a snooping system, detection never arms on a FULL
        variant), so one configuration can name the complete Table 1 design
        space and each built system picks what exists in it.
        """
        config = system.config
        for name in config.speculation.enabled_speculations():
            cls = get_speculation(name)
            if not cls.applies_to(config):
                continue
            speculation = self.attach(cls(self))
            speculation.arm(system)
            speculation.armed_on = system.label

    def attach_injector(self, *, rate_per_second: float,
                        cycles_per_second: float):
        """Attach the Figure 4 periodic-recovery injector (uniform entry
        point used by ``System.attach_recovery_injector``)."""
        from repro.speculation.detectors import PeriodicInjectionSpeculation

        injector = PeriodicInjectionSpeculation(
            self, rate_per_second=rate_per_second,
            cycles_per_second=cycles_per_second)
        return self.attach(injector)

    # ---------------------------------------------------------------- reporting
    def report(self, event: MisspeculationEvent) -> Optional[RecoveryRecord]:
        """Handle a detected mis-speculation; returns the recovery performed.

        Returns ``None`` when the event was coalesced into a recovery that is
        already in progress (the rolled-back state it observed no longer
        exists).
        """
        fs = self.framework_stats
        fs.detections += 1
        fs.detections_by_kind[event.kind] = fs.detections_by_kind.get(event.kind, 0) + 1
        self.stats.counter(f"speculation.detected.{event.kind.value}").add()
        self.events.append(event)
        speculation = self._attached.get(event.kind)

        if self.sim.now < self.safetynet.stalled_until:
            # A recovery is in flight; this detection observed state that has
            # already been (or is being) rolled back.
            fs.coalesced += 1
            self.stats.counter("speculation.coalesced").add()
            if speculation is not None:
                speculation.on_detection(event, coalesced=True)
            return None

        if speculation is not None:
            speculation.on_detection(event, coalesced=False)
        record = self.safetynet.recover(event)
        self.policy_for(event.kind).apply(event)
        fs.recoveries += 1
        fs.recoveries_by_kind[event.kind] = fs.recoveries_by_kind.get(event.kind, 0) + 1
        fs.total_recovery_cost_cycles += record.total_cost_cycles
        self.records.append(record)
        return record

    def _notify_recovery(self, record: RecoveryRecord) -> None:
        """SafetyNet listener: route the record to the recovered design."""
        speculation = self._attached.get(record.kind)
        if speculation is not None:
            speculation.on_recovery(record)

    # ------------------------------------------------------------------- stats
    def recovery_count(self, kind: Optional[SpeculationKind] = None) -> int:
        if kind is None:
            return self.framework_stats.recoveries
        return self.framework_stats.recoveries_by_kind.get(kind, 0)

    def detection_count(self, kind: Optional[SpeculationKind] = None) -> int:
        if kind is None:
            return self.framework_stats.detections
        return self.framework_stats.detections_by_kind.get(kind, 0)

    def recoveries_per_second(self, elapsed_cycles: int,
                              cycles_per_second: float) -> float:
        """Observed recovery rate in recoveries per (scaled) second."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles / cycles_per_second
        return self.framework_stats.recoveries / seconds if seconds > 0 else 0.0

    def total_recovery_cost_cycles(self) -> int:
        return self.framework_stats.total_recovery_cost_cycles

    def summary(self) -> Dict[str, object]:
        fs = self.framework_stats
        return {
            "detections": fs.detections,
            "coalesced": fs.coalesced,
            "recoveries": fs.recoveries,
            "detections_by_kind": {k.value: v
                                   for k, v in fs.detections_by_kind.items()},
            "recoveries_by_kind": {k.value: v for k, v in fs.recoveries_by_kind.items()},
            "total_recovery_cost_cycles": fs.total_recovery_cost_cycles,
            "speculations": [s.stats() for s in self._attached.values()],
        }

"""Network messages, message classes and virtual networks.

The directory protocol of Section 3.1 defines four classes of messages —
Request, ForwardedRequest, Response and FinalAck — and each class travels on
a logically separate *virtual network*.  The network layer only cares about
the class (for virtual-network separation), the size (for serialisation
delay) and the endpoints; the coherence payload is opaque to it.
"""

from __future__ import annotations

import itertools
from enum import Enum, IntEnum
from typing import Any, Optional, Tuple


class VirtualNetwork(IntEnum):
    """The four virtual networks of the directory protocol."""

    REQUEST = 0
    FORWARDED_REQUEST = 1
    RESPONSE = 2
    FINAL_ACK = 3


class MessageClass(str, Enum):
    """Coherence message types carried over the network.

    The enum mirrors Section 3.1 of the paper:

    * Requests (processor -> directory): ``REQUEST_READ_ONLY``,
      ``REQUEST_READ_WRITE``, ``WRITEBACK``.
    * Forwarded requests (directory -> processor):
      ``FORWARDED_REQUEST_READ_ONLY``, ``FORWARDED_REQUEST_READ_WRITE``,
      ``INVALIDATION``, ``WRITEBACK_ACK``.
    * Responses (processor/directory -> requestor): ``DATA``, ``ACK``,
      ``NACK``.
    * ``FINAL_ACK`` coordinates SafetyNet checkpoints.
    """

    REQUEST_READ_ONLY = "RequestReadOnly"
    REQUEST_READ_WRITE = "RequestReadWrite"
    WRITEBACK = "Writeback"
    FORWARDED_REQUEST_READ_ONLY = "ForwardedRequestReadOnly"
    FORWARDED_REQUEST_READ_WRITE = "ForwardedRequestReadWrite"
    INVALIDATION = "Invalidation"
    WRITEBACK_ACK = "WritebackAck"
    DATA = "Data"
    ACK = "Ack"
    NACK = "Nack"
    FINAL_ACK = "FinalAck"

    @property
    def virtual_network(self) -> VirtualNetwork:
        """Virtual network this message class travels on."""
        return _CLASS_TO_VNET[self]

    @property
    def carries_data(self) -> bool:
        """True for messages that carry a 64-byte data block."""
        return self in DATA_CLASSES


_CLASS_TO_VNET = {
    MessageClass.REQUEST_READ_ONLY: VirtualNetwork.REQUEST,
    MessageClass.REQUEST_READ_WRITE: VirtualNetwork.REQUEST,
    MessageClass.WRITEBACK: VirtualNetwork.REQUEST,
    MessageClass.FORWARDED_REQUEST_READ_ONLY: VirtualNetwork.FORWARDED_REQUEST,
    MessageClass.FORWARDED_REQUEST_READ_WRITE: VirtualNetwork.FORWARDED_REQUEST,
    MessageClass.INVALIDATION: VirtualNetwork.FORWARDED_REQUEST,
    MessageClass.WRITEBACK_ACK: VirtualNetwork.FORWARDED_REQUEST,
    MessageClass.DATA: VirtualNetwork.RESPONSE,
    MessageClass.ACK: VirtualNetwork.RESPONSE,
    MessageClass.NACK: VirtualNetwork.RESPONSE,
    MessageClass.FINAL_ACK: VirtualNetwork.FINAL_ACK,
}

#: Message classes that carry a 64-byte data block (everything else is a
#: header-sized control message).
DATA_CLASSES = frozenset((MessageClass.DATA, MessageClass.WRITEBACK))

_MESSAGE_IDS = itertools.count()


class NetworkMessage:
    """One message in flight through the interconnection network.

    The network layer fills in the bookkeeping fields (``msg_id``,
    ``send_seq``, ``injected_at``, ``hops``); callers supply the endpoints,
    the class, the size and the opaque coherence payload.  Slotted and
    hand-rolled because hundreds of thousands of messages are allocated per
    simulated run.
    """

    __slots__ = ("src", "dst", "msg_class", "size_bytes", "payload", "address",
                 "msg_id", "send_seq", "injected_at", "delivered_at", "hops",
                 "vnet")

    def __init__(self, src: int, dst: int, msg_class: MessageClass,
                 size_bytes: int, payload: Any = None,
                 address: Optional[int] = None) -> None:
        self.src = src
        self.dst = dst
        self.msg_class = msg_class
        self.size_bytes = size_bytes
        self.payload = payload
        #: Memory block address the message concerns (None for e.g. FinalAck).
        self.address = address
        self.msg_id = next(_MESSAGE_IDS)
        #: Per (src, dst, virtual network) sequence number assigned at
        #: injection.
        self.send_seq = -1
        self.injected_at = -1
        self.delivered_at = -1
        self.hops = 0
        #: Virtual network, resolved once from ``msg_class`` at construction —
        #: the network layer reads it on every hop.
        self.vnet = _CLASS_TO_VNET[msg_class]

    @property
    def virtual_network(self) -> VirtualNetwork:
        return self.vnet

    def ordering_key(self) -> Tuple[int, int, VirtualNetwork]:
        """Key under which point-to-point ordering is defined."""
        return (self.src, self.dst, self.vnet)

    @property
    def latency(self) -> int:
        """End-to-end latency in cycles (valid once delivered)."""
        if self.delivered_at < 0 or self.injected_at < 0:
            raise ValueError("message has not been delivered yet")
        return self.delivered_at - self.injected_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Msg {self.msg_id} {self.msg_class.value} "
                f"{self.src}->{self.dst} addr={self.address}>")


def control_message(src: int, dst: int, msg_class: MessageClass, *,
                    address: Optional[int] = None, payload: Any = None,
                    size_bytes: int = 8) -> NetworkMessage:
    """Convenience constructor for a small control message."""
    return NetworkMessage(src=src, dst=dst, msg_class=msg_class,
                          size_bytes=size_bytes, payload=payload, address=address)


def data_message(src: int, dst: int, msg_class: MessageClass, *,
                 address: Optional[int] = None, payload: Any = None,
                 size_bytes: int = 72) -> NetworkMessage:
    """Convenience constructor for a data-carrying message (block + header)."""
    return NetworkMessage(src=src, dst=dst, msg_class=msg_class,
                          size_bytes=size_bytes, payload=payload, address=address)

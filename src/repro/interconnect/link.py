"""Point-to-point links between switches.

A link serialises one message at a time.  Its occupancy statistics feed the
link-utilisation numbers the paper quotes (mean utilisation 13-35% for static
routing at 400 MB/s) and the adaptive-routing decisions (which prefer less
congested outputs).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class Link:
    """A unidirectional link with a bandwidth-derived serialisation delay."""

    def __init__(self, name: str, sim: Simulator, *, latency_cycles: int,
                 cycles_per_byte: float, stats: Optional[StatsRegistry] = None) -> None:
        if latency_cycles < 0:
            raise ValueError("latency must be non-negative")
        if cycles_per_byte <= 0:
            raise ValueError("cycles_per_byte must be positive")
        self.name = name
        self.sim = sim
        self.latency_cycles = latency_cycles
        self.cycles_per_byte = cycles_per_byte
        self.stats = stats if stats is not None else StatsRegistry()
        self.busy_until = 0
        self.busy_cycles = 0
        self.messages_carried = 0
        self.bytes_carried = 0

    def serialization_cycles(self, size_bytes: int) -> int:
        """Cycles to push ``size_bytes`` onto the wire."""
        return max(1, int(round(size_bytes * self.cycles_per_byte)))

    @property
    def is_busy(self) -> bool:
        return self.sim.now < self.busy_until

    def next_free_time(self) -> int:
        """Earliest cycle at which a new message could start serialising."""
        return max(self.sim.now, self.busy_until)

    def occupy(self, size_bytes: int) -> int:
        """Claim the link for one message.

        Returns the cycle at which the message has fully arrived at the far
        end (serialisation + propagation).  The caller is responsible for
        only calling this when it has decided to transmit.
        """
        start = self.next_free_time()
        ser = self.serialization_cycles(size_bytes)
        self.busy_until = start + ser
        self.busy_cycles += ser
        self.messages_carried += 1
        self.bytes_carried += size_bytes
        return self.busy_until + self.latency_cycles

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` the link spent serialising data."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset_stats(self) -> None:
        self.busy_cycles = 0
        self.messages_carried = 0
        self.bytes_carried = 0

"""Point-to-point links between switches.

A link serialises one message at a time.  Its occupancy statistics feed the
link-utilisation numbers the paper quotes (mean utilisation 13-35% for static
routing at 400 MB/s) and the adaptive-routing decisions (which prefer less
congested outputs).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


def serialization_cycles_for(size_bytes: int, cycles_per_byte: float) -> int:
    """Cycles to push ``size_bytes`` onto a wire at ``cycles_per_byte``.

    Rounding is explicit floor+half-up (``floor(x + 0.5)``), *not* Python's
    ``round``: banker's rounding resolves exact .5 boundaries toward the
    nearest even integer, which makes adjacent message sizes alternate
    between rounding up and down (e.g. 2.5 -> 2 but 3.5 -> 4 cycles at a
    half-cycle-per-byte link) — a bandwidth model artifact, not physics.
    """
    return max(1, int(size_bytes * cycles_per_byte + 0.5))


class Link:
    """A unidirectional link with a bandwidth-derived serialisation delay."""

    def __init__(self, name: str, sim: Simulator, *, latency_cycles: int,
                 cycles_per_byte: float, stats: Optional[StatsRegistry] = None) -> None:
        if latency_cycles < 0:
            raise ValueError("latency must be non-negative")
        if cycles_per_byte <= 0:
            raise ValueError("cycles_per_byte must be positive")
        self.name = name
        self.sim = sim
        self.latency_cycles = latency_cycles
        self.cycles_per_byte = cycles_per_byte
        self.stats = stats if stats is not None else StatsRegistry()
        self.busy_until = 0
        self.busy_cycles = 0
        self.messages_carried = 0
        self.bytes_carried = 0
        #: Message sizes are drawn from a handful of values (control header,
        #: data block + header), so the serialisation delay per size is
        #: memoised instead of recomputed per occupancy.
        self._ser_cache: Dict[int, int] = {}

    def serialization_cycles(self, size_bytes: int) -> int:
        """Cycles to push ``size_bytes`` onto the wire (memoised per size)."""
        cycles = self._ser_cache.get(size_bytes)
        if cycles is None:
            cycles = serialization_cycles_for(size_bytes, self.cycles_per_byte)
            self._ser_cache[size_bytes] = cycles
        return cycles

    @property
    def is_busy(self) -> bool:
        return self.sim._now < self.busy_until

    def next_free_time(self) -> int:
        """Earliest cycle at which a new message could start serialising."""
        now = self.sim._now
        busy_until = self.busy_until
        return now if now > busy_until else busy_until

    def occupy(self, size_bytes: int) -> int:
        """Claim the link for one message.

        Returns the cycle at which the message has fully arrived at the far
        end (serialisation + propagation).  The caller is responsible for
        only calling this when it has decided to transmit.
        """
        now = self.sim._now
        start = self.busy_until
        if now > start:
            start = now
        ser = self._ser_cache.get(size_bytes)
        if ser is None:
            ser = serialization_cycles_for(size_bytes, self.cycles_per_byte)
            self._ser_cache[size_bytes] = ser
        busy_until = start + ser
        self.busy_until = busy_until
        self.busy_cycles += ser
        self.messages_carried += 1
        self.bytes_carried += size_bytes
        return busy_until + self.latency_cycles

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` the link spent serialising data."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset_stats(self) -> None:
        self.busy_cycles = 0
        self.messages_carried = 0
        self.bytes_carried = 0

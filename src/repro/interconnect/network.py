"""The network front-end used by coherence controllers.

:class:`InterconnectNetwork` builds the switches and links for whatever
geometry the configuration selects (torus, mesh, ring — anything in the
topology registry), owns the routing algorithm, provides the endpoint API
(``attach`` / ``send``), tracks point-to-point ordering violations per
virtual network, and supports the system-wide flush that a SafetyNet
recovery performs (all in-flight messages are squashed together with the
memory-system state they belong to).  ``TorusNetwork`` remains as an alias
for existing callers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro import kernel
from repro.interconnect.link import Link
from repro.interconnect.message import (DATA_CLASSES, MessageClass,
                                         NetworkMessage, VirtualNetwork)
from repro.interconnect.routing import (
    AdaptiveMinimalRouting,
    DimensionOrderRouting,
    RoutingAlgorithm,
)
from repro.interconnect.switch import Switch
from repro.interconnect.topology import Direction, Topology, shared_topology
from repro.sim.config import InterconnectConfig, RoutingPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import Counter, StatsRegistry


@dataclass
class OrderingRecord:
    """Bookkeeping for one (src, dst, virtual network) ordered stream."""

    next_send_seq: int = 0
    max_delivered_seq: int = -1
    delivered: int = 0
    reordered: int = 0


class OrderingTracker:
    """Detects violations of point-to-point ordering per virtual network.

    A message is counted as *reordered* when it is delivered after a message
    of the same (source, destination, virtual network) stream that was sent
    later.  The tracker is measurement-only: the speculative directory
    protocol does not consult it (detection happens at the cache controller),
    it exists to reproduce the reordering-rate numbers of Section 5.3.
    """

    def __init__(self) -> None:
        self._records: Dict[Tuple[int, int, VirtualNetwork], OrderingRecord] = {}
        self.per_vnet_delivered: Dict[VirtualNetwork, int] = {vn: 0 for vn in VirtualNetwork}
        self.per_vnet_reordered: Dict[VirtualNetwork, int] = {vn: 0 for vn in VirtualNetwork}

    def _record(self, key: Tuple[int, int, VirtualNetwork]) -> OrderingRecord:
        record = self._records.get(key)
        if record is None:
            record = self._records[key] = OrderingRecord()
        return record

    def assign_send_seq(self, message: NetworkMessage) -> None:
        # Inline of _record: this runs once per injected message.
        records = self._records
        key = (message.src, message.dst, message.vnet)
        record = records.get(key)
        if record is None:
            record = records[key] = OrderingRecord()
        message.send_seq = record.next_send_seq
        record.next_send_seq += 1

    def note_delivery(self, message: NetworkMessage) -> bool:
        """Record a delivery; returns True if the message was reordered."""
        # Inline of _record: this runs once per delivered message.
        records = self._records
        key = (message.src, message.dst, message.vnet)
        record = records.get(key)
        if record is None:
            record = records[key] = OrderingRecord()
        record.delivered += 1
        vnet = message.vnet
        self.per_vnet_delivered[vnet] += 1
        send_seq = message.send_seq
        reordered = send_seq < record.max_delivered_seq
        if reordered:
            record.reordered += 1
            self.per_vnet_reordered[vnet] += 1
        else:
            record.max_delivered_seq = send_seq
        return reordered

    def reorder_rate(self, vnet: Optional[VirtualNetwork] = None) -> float:
        """Fraction of delivered messages that were reordered."""
        if vnet is None:
            delivered = sum(self.per_vnet_delivered.values())
            reordered = sum(self.per_vnet_reordered.values())
        else:
            delivered = self.per_vnet_delivered[vnet]
            reordered = self.per_vnet_reordered[vnet]
        return reordered / delivered if delivered else 0.0

    def reset(self) -> None:
        self._records.clear()
        for vn in VirtualNetwork:
            self.per_vnet_delivered[vn] = 0
            self.per_vnet_reordered[vn] = 0


class _Endpoint:
    """Network-interface state for one attached node."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.receive: Optional[Callable[[NetworkMessage], None]] = None
        self.pending_injection: Deque[NetworkMessage] = deque()
        self.injected = 0
        self.delivered = 0


class InterconnectNetwork:
    """A complete interconnection network over a pluggable topology.

    Parameters
    ----------
    sim:
        The simulation kernel.
    config:
        Interconnect parameters (topology kind and dimensions, bandwidth,
        buffering, routing policy, virtual-channel organisation, speculative
        no-VC switch).
    frequency_hz:
        Clock frequency used to convert link bandwidth into cycles/byte.
    rng:
        Deterministic RNG tree (adaptive routing tie-breaks).
    stats:
        Shared statistics registry.
    """

    def __init__(self, sim: Simulator, config: InterconnectConfig, *,
                 frequency_hz: float = 4.0e9,
                 rng: Optional[DeterministicRng] = None,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.sim = sim
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.rng = rng if rng is not None else DeterministicRng(0)
        topo_cfg = config.resolved_topology()
        # Shared read-only geometry: identical (kind, dims) networks reuse
        # one topology instance with its routing tables already built.
        self.topology: Topology = shared_topology(topo_cfg.kind, topo_cfg.dims)
        self.ordering = OrderingTracker()
        self.routing = self._make_routing(config.routing)
        self.frequency_hz = frequency_hz
        self._endpoints: Dict[int, _Endpoint] = {}
        self._switches: Dict[int, Switch] = {}
        self._links: Dict[Tuple[int, Direction], Link] = {}
        self.messages_delivered = 0
        self.messages_sent = 0
        self.total_message_latency = 0
        self.flushes = 0
        #: Incremented on every flush; in-flight deliveries scheduled under an
        #: older epoch are dropped when they land (they belong to protocol
        #: state that a recovery has rolled back).
        self.flush_epoch = 0
        #: Lazily filled per-virtual-network counter caches; indexed by the
        #: vnet value.  Entries stay None until first use so the registry
        #: only ever contains counters that actually counted something
        #: (exactly the lazy behaviour of ``stats.counter(name)``).
        n_vnets = len(VirtualNetwork)
        self._sent_counters: List[Optional[Counter]] = [None] * n_vnets
        self._delivered_counters: List[Optional[Counter]] = [None] * n_vnets
        self._reordered_counters: List[Optional[Counter]] = [None] * n_vnets
        self._build()

    def _vnet_counter(self, cache: List[Optional["Counter"]], prefix: str,
                      vnet: int) -> "Counter":
        counter = cache[vnet]
        if counter is None:
            # int() deliberately: IntEnum.__str__ only renders as the bare
            # number from Python 3.11 on, and stat names must not depend on
            # the interpreter version.
            counter = self.stats.counter(f"network.{prefix}.vn{int(vnet)}")
            cache[vnet] = counter
        return counter

    # ------------------------------------------------------------------ build
    def _make_routing(self, policy: RoutingPolicy) -> RoutingAlgorithm:
        if policy == RoutingPolicy.ADAPTIVE:
            router = AdaptiveMinimalRouting(self.topology, rng=self.rng)
            router.bind_clock(lambda: self.sim.now)
            return router
        return DimensionOrderRouting(self.topology)

    def _build(self) -> None:
        cfg = self.config
        cycles_per_byte = cfg.link_cycles_per_byte(self.frequency_hz)
        shared = cfg.speculative_no_vc
        vcs = 0 if shared else cfg.virtual_channels_per_network
        for sid in range(self.topology.num_switches):
            self._switches[sid] = Switch(
                sid, self.sim, self, self.topology,
                buffer_capacity=cfg.switch_buffer_capacity,
                virtual_networks=cfg.virtual_networks,
                virtual_channels=max(1, vcs),
                shared_buffers=shared,
                stats=self.stats,
            )
        for sid, switch in self._switches.items():
            for direction, _neighbor in switch.neighbors.items():
                link = Link(
                    f"link.{sid}.{direction.value}", self.sim,
                    latency_cycles=cfg.link_latency_cycles,
                    cycles_per_byte=cycles_per_byte,
                    stats=self.stats,
                )
                self._links[(sid, direction)] = link
                switch.attach_output_link(direction, link)
        for switch in self._switches.values():
            switch._finalize_wiring()
        self._install_compiled_cores()

    def _install_compiled_cores(self) -> None:
        """Swap every switch's hot path for its compiled core (no-op on the
        pure tier).

        Cores are installed network-wide or not at all: the credit-release
        and forwarding paths wake *peer* cores directly, so a mixed network
        would desynchronise the scan bookkeeping.  Installation happens once
        the wiring is final and before any traffic exists, so no state has
        to migrate — the cores read the same buffers, links and counters the
        pure methods use, and `_scan_event` is replaced before anything can
        have scheduled it.
        """
        impl = kernel.engine_impl()
        if impl is None or not hasattr(impl, "SwitchCore"):
            return
        if not isinstance(self.sim, impl.Simulator):
            return
        switches = list(self._switches.values())
        # The core's occupancy mask is a 64-bit word; geometries with more
        # scan slots per switch stay on the pure methods.
        if any(len(s._scan_slots) > 64 for s in switches):
            return
        for switch in switches:
            switch._core = impl.SwitchCore(switch)
        for switch in switches:
            switch._core.bind()
        for switch in switches:
            core = switch._core
            switch.inject = core.inject
            switch.receive_from_link = core.receive_from_link
            switch.schedule_scan = core.schedule_scan
            switch._scan_event = core.scan_event

    # ----------------------------------------------------------------- lookup
    def switch(self, switch_id: int) -> Switch:
        return self._switches[switch_id]

    @property
    def switches(self) -> List[Switch]:
        return list(self._switches.values())

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    @property
    def adaptive_router(self) -> Optional[AdaptiveMinimalRouting]:
        """The adaptive router if the network uses one, else None."""
        return self.routing if isinstance(self.routing, AdaptiveMinimalRouting) else None

    # -------------------------------------------------------------- endpoints
    def attach(self, node_id: int, receive: Callable[[NetworkMessage], None]) -> None:
        """Attach a node's receive callback to its switch."""
        if not 0 <= node_id < self.topology.num_switches:
            raise ValueError(
                f"node {node_id} has no switch on this {self.topology.describe()}")
        endpoint = self._endpoints.setdefault(node_id, _Endpoint(node_id))
        endpoint.receive = receive
        self._switches[node_id]._local_endpoint = endpoint

    def send(self, message: NetworkMessage) -> None:
        """Inject a message; queues at the NIC if the switch buffer is full."""
        endpoint = self._endpoints.get(message.src)
        if endpoint is None or message.dst not in self._endpoints:
            raise ValueError(
                f"both endpoints must be attached before sending ({message!r})")
        self.ordering.assign_send_seq(message)
        message.injected_at = self.sim._now
        self.messages_sent += 1
        vnet = message.vnet
        counter = self._sent_counters[vnet]
        if counter is None:
            counter = self._vnet_counter(self._sent_counters, "sent", vnet)
        counter.value += 1
        # Inline of _drain_injection_queue (one call + two dict lookups per
        # protocol message saved; injection almost always succeeds at once).
        pending = endpoint.pending_injection
        pending.append(message)
        inject = self._switches[message.src].inject
        while pending:
            if not inject(pending[0]):
                break
            pending.popleft()
            endpoint.injected += 1

    def _drain_injection_queue(self, node_id: int) -> None:
        endpoint = self._endpoints[node_id]
        switch = self._switches[node_id]
        while endpoint.pending_injection:
            head = endpoint.pending_injection[0]
            if not switch.inject(head):
                break
            endpoint.pending_injection.popleft()
            endpoint.injected += 1

    def notify_injection_space(self, node_id: int) -> None:
        """A local injection slot freed at ``node_id``'s switch."""
        # Inline of _drain_injection_queue: this runs once per freed slot
        # (several times per delivered message) and the queue is almost
        # always empty.
        endpoint = self._endpoints.get(node_id)
        if endpoint is None:
            return
        switch = self._switches[node_id]
        pending = endpoint.pending_injection
        while pending:
            if not switch.inject(pending[0]):
                break
            pending.popleft()
            endpoint.injected += 1
        # Draining the outbound queue may re-enable ejection at this
        # node's switch (see :meth:`can_eject`).
        switch.schedule_scan(delay=1)

    def can_eject(self, node_id: int) -> bool:
        """May the switch hand another message to this node right now?

        With virtual networks (the baseline design) the answer is always
        yes: reply traffic has its own buffers, so ingesting a request can
        never be blocked by the node's own backed-up replies.  In the
        speculatively simplified no-VC design all classes share one queue,
        so a node whose outbound queue is full stops ingesting — the
        message-dependent coupling that makes deadlock reachable (Figures 2
        and 3) and that the Section 4 design recovers from instead of
        designing away.
        """
        if not self.config.speculative_no_vc:
            return True
        endpoint = self._endpoints.get(node_id)
        if endpoint is None:
            return True
        return len(endpoint.pending_injection) < self.config.nic_injection_limit

    def deliver_to_endpoint(self, node_id: int, message: NetworkMessage,
                            delay: int = 1) -> None:
        """Called by a switch when a message reaches its destination switch."""
        endpoint = self._endpoints.get(node_id)
        if endpoint is None or endpoint.receive is None:
            raise RuntimeError(f"message delivered to unattached node {node_id}: {message!r}")
        epoch = self.flush_epoch

        def _deliver() -> None:
            if epoch != self.flush_epoch:
                self.stats.counter("network.squashed_in_flight").add()
                return
            now = self.sim._now
            message.delivered_at = now
            self.messages_delivered += 1
            endpoint.delivered += 1
            self.total_message_latency += now - message.injected_at
            # Inline of OrderingTracker.note_delivery — one call per
            # delivered message, and the vnet/counter work merges with the
            # per-vnet tallies below.
            vn = message.vnet
            ordering = self.ordering
            records = ordering._records
            key = (message.src, message.dst, vn)
            record = records.get(key)
            if record is None:
                record = records[key] = OrderingRecord()
            record.delivered += 1
            ordering.per_vnet_delivered[vn] += 1
            send_seq = message.send_seq
            reordered = send_seq < record.max_delivered_seq
            if reordered:
                record.reordered += 1
                ordering.per_vnet_reordered[vn] += 1
            else:
                record.max_delivered_seq = send_seq
            counter = self._delivered_counters[vn]
            if counter is None:
                counter = self._vnet_counter(self._delivered_counters,
                                             "delivered", vn)
            counter.value += 1
            if reordered:
                self._vnet_counter(self._reordered_counters, "reordered", vn).value += 1
            endpoint.receive(message)

        sim = self.sim
        sim.queue.push(sim._now + delay, _deliver, 0, "deliver")

    # ------------------------------------------------------------- measurement
    def mean_message_latency(self) -> float:
        if self.messages_delivered == 0:
            return 0.0
        return self.total_message_latency / self.messages_delivered

    def mean_link_utilization(self, elapsed_cycles: Optional[int] = None) -> float:
        elapsed = elapsed_cycles if elapsed_cycles is not None else max(1, self.sim.now)
        links = self.links
        if not links:
            return 0.0
        return sum(link.utilization(elapsed) for link in links) / len(links)

    def peak_link_utilization(self, elapsed_cycles: Optional[int] = None) -> float:
        elapsed = elapsed_cycles if elapsed_cycles is not None else max(1, self.sim.now)
        return max((link.utilization(elapsed) for link in self.links), default=0.0)

    def in_flight_messages(self) -> int:
        """Messages buffered in switches or waiting at NIC injection queues."""
        buffered = sum(len(s.queued_messages()) for s in self.switches)
        pending = sum(len(e.pending_injection) for e in self._endpoints.values())
        return buffered + pending

    # ----------------------------------------------------------------- recovery
    def flush(self) -> int:
        """Drop every in-flight message (part of a system-wide recovery).

        Returns the number of messages squashed.  Link busy state is left
        alone (it resolves within a few cycles) but buffered and
        pending-injection messages are discarded because the protocol state
        they belong to has been rolled back.
        """
        dropped = 0
        for switch in self.switches:
            dropped += len(switch.drain_all())
        for endpoint in self._endpoints.values():
            dropped += len(endpoint.pending_injection)
            endpoint.pending_injection.clear()
        self.flush_epoch += 1
        self.flushes += 1
        self.stats.counter("network.flushes").add()
        self.stats.counter("network.flushed_messages").add(dropped)
        return dropped

    def disable_adaptive_routing(self, cycles: int) -> None:
        """Forward-progress hook: disable adaptivity for ``cycles`` cycles."""
        router = self.adaptive_router
        if router is not None:
            router.disable_until(self.sim.now + cycles)

    @property
    def adaptive_routing_disabled(self) -> bool:
        """Whether the adaptive router is currently in its disabled window
        (always False for static routing).  Surfaced so the S1 speculation
        can report forward-progress state in its stats."""
        router = self.adaptive_router
        return router is not None and not router.currently_adaptive


def make_message(src: int, dst: int, msg_class: MessageClass, *,
                 address: Optional[int] = None, payload=None,
                 config: Optional[InterconnectConfig] = None) -> NetworkMessage:
    """Build a message with the configured control/data sizes."""
    cfg = config if config is not None else InterconnectConfig()
    size = (cfg.data_message_bytes if msg_class in DATA_CLASSES
            else cfg.control_message_bytes)
    return NetworkMessage(src=src, dst=dst, msg_class=msg_class,
                          size_bytes=size, payload=payload, address=address)


#: Back-compat alias from when the only supported geometry was the torus.
TorusNetwork = InterconnectNetwork

"""Network switch with finite input buffering and credit-style backpressure.

Each switch owns:

* one input :class:`~repro.interconnect.virtual_channel.ChannelSet` per input
  port (the topology's neighbour directions plus the local injection port —
  a torus switch has four cardinal ports, a ring switch two, a mesh edge
  switch only the inward ones),
* one outgoing :class:`~repro.interconnect.link.Link` per neighbour
  direction,
* a routing algorithm shared by the whole network.

Forwarding is event-driven: a switch scans its input buffers when a message
arrives, when one of its output links frees up, or when a downstream buffer
returns a credit.  A head-of-line message that cannot make progress because
the downstream buffer is full simply waits — there is no dropping and no
retry traffic — which is exactly the condition under which the speculative
no-virtual-channel network of Section 4 can deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.interconnect.buffers import FiniteBuffer
from repro.interconnect.link import Link
from repro.interconnect.message import NetworkMessage
from repro.interconnect.routing import DimensionOrderRouting
from repro.interconnect.topology import Direction, Topology
from repro.interconnect.virtual_channel import ChannelId, ChannelSet
from repro.sim.component import Component
from repro.sim.engine import Event, Simulator
from repro.sim.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.interconnect.network import InterconnectNetwork



@dataclass
class BlockedHead:
    """Describes a head-of-line message that cannot currently advance."""

    message: NetworkMessage
    input_port: Direction
    channel: ChannelId
    #: Switch id and port whose buffer the message is waiting on, or None if
    #: the message is waiting on a busy link rather than buffer space.
    waiting_on: Optional[Tuple[int, Direction]]


class Switch(Component):
    """One switch of the interconnection network."""

    EJECTION_LATENCY = 1

    def __init__(self, switch_id: int, sim: Simulator, network: "InterconnectNetwork",
                 topology: Topology, *, buffer_capacity: int,
                 virtual_networks: int, virtual_channels: int, shared_buffers: bool,
                 stats: Optional[StatsRegistry] = None) -> None:
        super().__init__(f"switch{switch_id}", sim, stats)
        self.switch_id = switch_id
        self.network = network
        self.topology = topology
        #: The network endpoint attached at this switch (set by
        #: InterconnectNetwork.attach); lets the credit-release hot path
        #: skip the cross-object notify call while the injection queue is
        #: empty, which it almost always is.
        self._local_endpoint = None
        self.neighbors = topology.neighbors(switch_id)
        self.input_channels: Dict[Direction, ChannelSet] = {}
        # Port-indexed geometry: only the ports this topology actually
        # wires at this switch get input buffers (plus LOCAL injection).
        for port in (*topology.ports(), Direction.LOCAL):
            if port != Direction.LOCAL and port not in self.neighbors:
                continue
            self.input_channels[port] = ChannelSet(
                f"{self.name}.in.{port.value}",
                virtual_networks=virtual_networks,
                virtual_channels=virtual_channels,
                capacity_per_channel=buffer_capacity,
                shared=shared_buffers,
            )
        self.output_links: Dict[Direction, Link] = {}
        #: Flattened (port, channel, buffer, queue, mask bit) scan order.
        #: The channel layout is fixed at construction, so the nested dict
        #: walk per scan is precomputed once; the deque is captured directly
        #: for the emptiness test — a FiniteBuffer never replaces its deque.
        #: Order matches the original nested iteration (insertion order of
        #: input ports, then of channels) — forwarding order is unchanged.
        self._scan_entries: List[Tuple[Direction, ChannelId, FiniteBuffer, object, int]] = [
            (port, cid, buf, buf._queue, 1 << index)
            for index, (port, cid, buf) in enumerate(
                (port, cid, buf)
                for port, channels in self.input_channels.items()
                for cid, buf in channels.buffers())
        ]
        #: (buffer, deque, mask bit) per port, laid out as a [vn][vc] grid
        #: mirroring the port's ChannelSet — the push sites index by the
        #: channel's integer coordinates instead of hashing a ChannelId
        #: dataclass, and get the deque without an attribute load.
        slot = {(port, cid): (buf, queue, bit)
                for port, cid, buf, queue, bit in self._scan_entries}
        #: Compact (port, deque, mask bit) view of the scan entries — the
        #: mask walk unpacks three fields per visited buffer, not five.
        self._scan_slots: List[Tuple[Direction, object, int]] = [
            (port, queue, bit)
            for port, _cid, _buf, queue, bit in self._scan_entries]
        self._slot_grid: Dict[Direction, List[List[Tuple[FiniteBuffer, object, int]]]] = {
            port: [[slot[(port, cid)] for cid in row] for row in channels._cids]
            for port, channels in self.input_channels.items()}
        self._local_slot_grid = self._slot_grid[Direction.LOCAL]
        self._scan_scheduled = False
        self._scan_label = f"{self.name}.scan"
        #: Permanent scan event: scans fire constantly (one per message-move
        #: wave per switch), are never cancelled, and at most one is pending
        #: (``_scan_scheduled``), so the switch owns a single static Event
        #: that the kernel re-pushes without touching the freelist.
        #: Created by the queue itself so the event matches the kernel tier
        #: the simulator was built with (a compiled queue only accepts
        #: compiled events).
        self._scan_event = sim.queue.new_static_event(self._scan,
                                                      self._scan_label)
        #: Bitmask of scan entries whose buffer is non-empty — maintained at
        #: the (only) push/pop sites below, so a scan visits exactly the
        #: occupied buffers (ascending entry order, i.e. the original scan
        #: order) instead of testing all ~5 ports x channels per pass, and an
        #: empty switch's scan is O(1).  Credit wakeups routinely land on
        #: switches with nothing queued.
        self._active_mask = 0
        #: Forwarding labels per output direction (f-string per message is
        #: measurable at millions of forwards).
        self._fwd_labels: Dict[Direction, str] = {
            direction: f"{self.name}->switch{neighbor}"
            for direction, neighbor in self.neighbors.items()}
        self.messages_forwarded = 0
        self.messages_ejected = 0
        self.blocked_events = 0
        # Hot counters, bound lazily on first increment (same creation
        # semantics as Component.count — a counter that never fires must not
        # appear in results).
        self._c_injected: Optional[object] = None
        self._c_ejected: Optional[object] = None
        self._c_forwarded: Optional[object] = None
        self._local_channels = self.input_channels[Direction.LOCAL]
        # Channel-selection constants of the local injection port, hoisted
        # so inject() can fuse reserve_for() + push_reserved() into direct
        # deque operations.
        self._local_shared = self._local_channels.shared
        self._local_vns = self._local_channels.virtual_networks
        self._local_vcc = self._local_channels._vc_count
        # Bound fast-path callees, completed by _finalize_wiring() once the
        # whole network exists (routing and peer switches are then fixed for
        # the life of the network — nothing rebinds them).
        self._route = network.routing.route
        #: Static routing only: this switch's row of the precomputed
        #: ``[src][dst] -> Direction`` table, letting the scan do a plain
        #: list index instead of a route() call per head (None when the
        #: routing decision genuinely needs the algorithm, i.e. adaptive).
        self._route_row: Optional[List[Direction]] = None
        self._can_eject = network.can_eject
        self._deliver = network.deliver_to_endpoint
        #: Compiled hot path (repro._ckernel.SwitchCore) when the network
        #: installed one — None on the pure tier.  The core owns the
        #: occupancy mask and scan flag from then on; inject /
        #: receive_from_link / schedule_scan are rebound to it.
        self._core = None
        self._out: Dict[Direction, Optional[tuple]] = {}
        #: Upstream switch feeding each input port (None for LOCAL): the
        #: credit-release path wakes it directly.
        self._credit_wake: Dict[Direction, Optional["Switch"]] = {
            Direction.LOCAL: None}

    # ----------------------------------------------------------------- wiring
    def attach_output_link(self, direction: Direction, link: Link) -> None:
        """Connect the outgoing link toward ``direction``."""
        self.output_links[direction] = link

    def _finalize_wiring(self) -> None:
        """Precompute per-direction forwarding targets (network build hook).

        Called by :class:`~repro.interconnect.network.InterconnectNetwork`
        after every switch and link exists: the (link, downstream switch,
        downstream port, downstream channel set, label) tuple per output
        direction and the per-input-port credit wake target are all fixed
        from then on, so the forwarding path does plain dict lookups instead
        of chained attribute/registry walks.
        """
        for direction, neighbor_id in self.neighbors.items():
            downstream = self.network.switch(neighbor_id)
            downstream_port = direction.opposite
            channels = downstream.input_channels[downstream_port]
            # The downstream channel-selection constants are baked into the
            # out-tuple so the scan inlines reserve_for() (shared flag, VN/VC
            # geometry, buffer grid and ChannelId grid are all fixed).
            # The trailing bound receive method lets the scan build the
            # arrival callback with functools.partial (C-level construction)
            # instead of a per-forward lambda; compiled SwitchCore.bind()
            # reads slots 0-8 by index and ignores the extra element.
            self._out[direction] = (
                self.output_links[direction], downstream, downstream_port,
                channels.shared, channels.virtual_networks, channels._vc_count,
                channels._grid, channels._cids,
                self._fwd_labels[direction], downstream.receive_from_link)
        for port in self.input_channels:
            if port != Direction.LOCAL:
                self._credit_wake[port] = self.network.switch(self.neighbors[port])
        # Full direction coverage lets the forward path use a plain indexed
        # lookup; unwired directions (mesh edges, rings) map to None.
        for direction in Direction:
            self._out.setdefault(direction, None)
        routing = self.network.routing
        if isinstance(routing, DimensionOrderRouting):
            self._route_row = routing._table[self.switch_id]

    # -------------------------------------------------------------- injection
    def inject(self, message: NetworkMessage) -> bool:
        """Inject a message from the local endpoint.

        Returns False (and injects nothing) if the local input buffer has no
        space; the network interface retries later.
        """
        # Inline of ChannelSet.reserve_for + FiniteBuffer.push_reserved for
        # the local port (the reserve/commit pair cancels out: one message
        # enters one slot synchronously).
        if self._local_shared:
            vn = vc = 0
        else:
            vn = message.vnet
            if vn >= self._local_vns:
                vn = vn % self._local_vns
            vc = (message.src * 31 + message.dst) % self._local_vcc
        buf, queue, bit = self._local_slot_grid[vn][vc]
        reserved = buf._reserved
        if len(queue) + reserved >= buf.capacity:
            self.count("injection_blocked")
            return False
        queue.append(message)
        buf.total_enqueued += 1
        occupancy = len(queue) + reserved
        if occupancy > buf.peak_occupancy:
            buf.peak_occupancy = occupancy
        self._active_mask |= bit
        counter = self._c_injected
        if counter is None:
            counter = self._c_injected = self.stats.counter(f"{self.name}.injected")
        counter.value += 1
        if not self._scan_scheduled:
            self._scan_scheduled = True
            sim = self.sim
            sim.queue.push_static(self._scan_event, sim._now)
        return True

    def injection_space(self, message: NetworkMessage) -> int:
        """Free slots available to ``message`` at the local injection port."""
        return self.input_channels[Direction.LOCAL].free_slots_for(message)

    # --------------------------------------------------------- link reception
    def receive_from_link(self, message: NetworkMessage, input_port: Direction,
                          channel: ChannelId, epoch: Optional[int] = None) -> None:
        """A message arrives from an upstream switch into a reserved slot.

        ``epoch`` is the network flush epoch captured when the transfer
        started; a transfer that straddles a system recovery is dropped (its
        reservation was already cleared by the flush).
        """
        if epoch is not None and epoch != self.network.flush_epoch:
            self.count("squashed_in_flight")
            return
        buf, queue, bit = self._slot_grid[input_port][channel.virtual_network][channel.virtual_channel]
        # Inline of FiniteBuffer.push_reserved (the upstream switch reserved
        # the slot before putting the message on the wire).
        reserved = buf._reserved
        if reserved <= 0:
            raise RuntimeError(f"buffer {buf.name}: push without reservation")
        buf._reserved = reserved - 1
        queue.append(message)
        buf.total_enqueued += 1
        occupancy = len(queue) + reserved - 1
        if occupancy > buf.peak_occupancy:
            buf.peak_occupancy = occupancy
        self._active_mask |= bit
        message.hops += 1
        if not self._scan_scheduled:
            self._scan_scheduled = True
            sim = self.sim
            sim.queue.push_static(self._scan_event, sim._now)

    # ---------------------------------------------------------------- scanning
    def schedule_scan(self, delay: int = 0) -> None:
        """Schedule a forwarding scan if one is not already pending."""
        if self._scan_scheduled:
            return
        self._scan_scheduled = True
        sim = self.sim
        sim.queue.push_static(self._scan_event, sim._now + delay)

    def _scan(self) -> None:
        """One forwarding pass: try to move every occupied head-of-line.

        The whole head-forward attempt is inlined into the mask walk — this
        is the hottest code in the simulator (one pass per message-move wave
        per switch), so every per-step attribute load that is invariant for
        the duration of the scan is hoisted: the scan executes as a single
        event callback, during which ``sim._now`` cannot advance and
        ``network.flush_epoch`` cannot change (recoveries only run from
        scheduled events, never synchronously inside a scan).
        """
        self._scan_scheduled = False
        if not self._active_mask:
            return
        progressed = False
        retry_at: Optional[int] = None
        slots = self._scan_slots
        sim = self.sim
        now = sim._now
        route_row = self._route_row
        local = Direction.LOCAL
        # Only the bindings the mask walk touches on *every* iteration are
        # hoisted — the typical scan visits a single occupied buffer, so
        # pre-binding path-specific helpers (deliver, credit wake, flush
        # epoch, ...) would cost more than the attribute loads they save;
        # those stay at their use sites.
        # Ascending-bit walk of the live occupancy mask: visits exactly the
        # non-empty buffers, in entry (i.e. original scan) order.  The mask
        # is re-read each step because forwarding can synchronously inject
        # into this switch's LOCAL buffers (credit release -> NIC drain);
        # those entries sit at later indices and must be visited this pass,
        # exactly as the full-list walk visited them.
        pos = 0
        while True:
            rest = self._active_mask >> pos
            if not rest:
                break
            low = rest & -rest
            index = pos + low.bit_length() - 1
            pos = index + 1
            port, queue, bit = slots[index]
            if not queue:
                self._active_mask &= ~bit  # heal a stale bit (drained elsewhere)
                continue
            message = queue[0]
            direction = (route_row[message.dst] if route_row is not None
                         else self._route(self.switch_id, message,
                                          self._congestion_for))
            if direction is local:
                if not self._can_eject(self.switch_id):
                    # The local node cannot ingest more messages until its
                    # own outbound queue drains (no-VC design only); the head
                    # blocks and backpressure propagates into the fabric.
                    self.count("ejection_blocked")
                    wake = now + 16
                    if retry_at is None or wake < retry_at:
                        retry_at = wake
                    continue
                queue.popleft()
                if not queue:
                    self._active_mask &= ~bit
                self.messages_ejected += 1
                counter = self._c_ejected
                if counter is None:
                    counter = self._c_ejected = self.stats.counter(
                        f"{self.name}.ejected")
                counter.value += 1
                self._deliver(self.switch_id, message,
                              delay=self.EJECTION_LATENCY)
            else:
                out = self._out[direction]
                if out is None:
                    # Degenerate 1-wide geometry: treat as local loopback.
                    queue.popleft()
                    if not queue:
                        self._active_mask &= ~bit
                    self._deliver(self.switch_id, message,
                                  delay=self.EJECTION_LATENCY)
                else:
                    (link, downstream, downstream_port, d_shared, d_vns,
                     d_vcc, d_grid, d_cids, fwd_label, d_recv) = out
                    # Inline of downstream reserve_for(): pick the channel,
                    # check space (must happen before the link-busy check —
                    # the blocked_on_buffer counter depends on this order),
                    # and only commit the reservation when the message
                    # actually departs.  The original reserve-then-cancel on
                    # a busy link had no observable effect.
                    if d_shared:
                        d_vn = d_vc = 0
                    else:
                        d_vn = message.vnet
                        if d_vn >= d_vns:
                            d_vn = d_vn % d_vns
                        d_vc = (message.src * 31 + message.dst) % d_vcc
                    d_buf = d_grid[d_vn][d_vc]
                    if len(d_buf._queue) + d_buf._reserved >= d_buf.capacity:
                        self.blocked_events += 1
                        self.count("blocked_on_buffer")
                        continue
                    if now < link.busy_until:
                        # Retry when the link frees up (== busy_until, since
                        # it is busy now).
                        wake = link.busy_until
                        if retry_at is None or wake < retry_at:
                            retry_at = wake
                        continue
                    d_buf._reserved += 1
                    downstream_cid = d_cids[d_vn][d_vc]
                    queue.popleft()
                    if not queue:
                        self._active_mask &= ~bit
                    # Inline of link.occupy(): the busy check above ensures
                    # now >= busy_until, so serialisation starts immediately.
                    size = message.size_bytes
                    ser = link._ser_cache.get(size)
                    if ser is None:
                        ser = link.serialization_cycles(size)
                    busy_until = now + ser
                    link.busy_until = busy_until
                    link.busy_cycles += ser
                    link.messages_carried += 1
                    link.bytes_carried += size
                    arrival = busy_until + link.latency_cycles
                    self.messages_forwarded += 1
                    counter = self._c_forwarded
                    if counter is None:
                        counter = self._c_forwarded = self.stats.counter(
                            f"{self.name}.forwarded")
                    counter.value += 1
                    sim.queue.push(
                        arrival,
                        partial(d_recv, message, downstream_port,
                                downstream_cid, self.network.flush_epoch),
                        0, fwd_label)
            # A head moved: release the credit for its input port.
            progressed = True
            upstream = self._credit_wake[port]
            if upstream is None:
                # Inline of network.notify_injection_space for the common
                # empty-queue case: nothing to drain, just rescan for
                # re-enabled ejection.
                endpoint = self._local_endpoint
                if endpoint is not None:
                    if endpoint.pending_injection:
                        self.network.notify_injection_space(self.switch_id)
                    elif not self._scan_scheduled:
                        self._scan_scheduled = True
                        sim.queue.push_static(self._scan_event, now + 1)
            elif not upstream._scan_scheduled:
                upstream._scan_scheduled = True
                sim.queue.push_static(upstream._scan_event, now + 1)
        if progressed:
            # More heads may now be free to move (and space opened upstream).
            if not self._scan_scheduled:
                self._scan_scheduled = True
                sim.queue.push_static(self._scan_event, now + 1)
        elif retry_at is not None and retry_at > now:
            self.schedule_scan(delay=retry_at - now)

    # ----------------------------------------------------------------- credits
    def _credit_released(self, port: Direction) -> None:
        """A slot freed on input ``port``: wake whoever feeds that port."""
        upstream = self._credit_wake[port]
        if upstream is None:
            # Same empty-queue inline of notify_injection_space as in _scan.
            endpoint = self._local_endpoint
            if endpoint is not None:
                if endpoint.pending_injection:
                    self.network.notify_injection_space(self.switch_id)
                elif not self._scan_scheduled:
                    self._scan_scheduled = True
                    sim = self.sim
                    sim.queue.push_static(self._scan_event, sim._now + 1)
        elif not upstream._scan_scheduled:
            # Inline of upstream.schedule_scan(delay=1) — credits fire once
            # per forwarded message.
            upstream._scan_scheduled = True
            sim = upstream.sim
            sim.queue.push_static(upstream._scan_event, sim._now + 1)

    # ------------------------------------------------------------- congestion
    def _congestion_for(self, direction: Direction) -> int:
        """Congestion metric used by adaptive routing for ``direction``."""
        downstream_id = self.neighbors.get(direction)
        if downstream_id is None:
            return 0
        downstream = self.network.switch(downstream_id)
        occupancy = downstream.input_channels[direction.opposite].occupancy()
        link = self.output_links.get(direction)
        link_penalty = 0
        if link is not None and link.is_busy:
            link_penalty = 1 + (link.busy_until - self.sim.now) // max(1, link.latency_cycles)
        return occupancy + link_penalty

    # -------------------------------------------------------------- inspection
    def blocked_heads(self) -> List[BlockedHead]:
        """Describe every head-of-line message that cannot advance right now.

        Used by the wait-for-graph deadlock detector and by tests; the
        production system never calls this (it relies on timeouts instead).
        """
        blocked: List[BlockedHead] = []
        for port, channels in self.input_channels.items():
            for cid, buf in channels.buffers():
                message = buf.peek()
                if message is None:
                    continue
                direction = self.network.routing.route(
                    self.switch_id, message, self._congestion_for)
                if direction == Direction.LOCAL:
                    if not self.network.can_eject(self.switch_id):
                        blocked.append(BlockedHead(
                            message=message, input_port=port, channel=cid,
                            waiting_on=(self.switch_id, Direction.LOCAL)))
                    continue
                downstream_id = self.neighbors.get(direction)
                if downstream_id is None:
                    continue
                downstream = self.network.switch(downstream_id)
                space = downstream.input_channels[direction.opposite].free_slots_for(message)
                if space <= 0:
                    blocked.append(BlockedHead(
                        message=message, input_port=port, channel=cid,
                        waiting_on=(downstream_id, direction.opposite)))
        return blocked

    def queued_messages(self) -> List[NetworkMessage]:
        """Every message currently buffered at this switch."""
        queued: List[NetworkMessage] = []
        for channels in self.input_channels.values():
            for _cid, buf in channels.buffers():
                queued.extend(list(buf))
        return queued

    def drain_all(self) -> List[NetworkMessage]:
        """Drop every buffered message (system-wide recovery)."""
        dropped: List[NetworkMessage] = []
        for channels in self.input_channels.values():
            dropped.extend(channels.drain())
        self._active_mask = 0
        if self._core is not None:
            self._core.clear_mask()
        return dropped


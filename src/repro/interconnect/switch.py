"""Network switch with finite input buffering and credit-style backpressure.

Each switch owns:

* one input :class:`~repro.interconnect.virtual_channel.ChannelSet` per input
  port (the topology's neighbour directions plus the local injection port —
  a torus switch has four cardinal ports, a ring switch two, a mesh edge
  switch only the inward ones),
* one outgoing :class:`~repro.interconnect.link.Link` per neighbour
  direction,
* a routing algorithm shared by the whole network.

Forwarding is event-driven: a switch scans its input buffers when a message
arrives, when one of its output links frees up, or when a downstream buffer
returns a credit.  A head-of-line message that cannot make progress because
the downstream buffer is full simply waits — there is no dropping and no
retry traffic — which is exactly the condition under which the speculative
no-virtual-channel network of Section 4 can deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.interconnect.buffers import FiniteBuffer
from repro.interconnect.link import Link
from repro.interconnect.message import NetworkMessage
from repro.interconnect.topology import Direction, Topology
from repro.interconnect.virtual_channel import ChannelId, ChannelSet
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.interconnect.network import InterconnectNetwork



@dataclass
class BlockedHead:
    """Describes a head-of-line message that cannot currently advance."""

    message: NetworkMessage
    input_port: Direction
    channel: ChannelId
    #: Switch id and port whose buffer the message is waiting on, or None if
    #: the message is waiting on a busy link rather than buffer space.
    waiting_on: Optional[Tuple[int, Direction]]


class Switch(Component):
    """One switch of the interconnection network."""

    EJECTION_LATENCY = 1

    def __init__(self, switch_id: int, sim: Simulator, network: "InterconnectNetwork",
                 topology: Topology, *, buffer_capacity: int,
                 virtual_networks: int, virtual_channels: int, shared_buffers: bool,
                 stats: Optional[StatsRegistry] = None) -> None:
        super().__init__(f"switch{switch_id}", sim, stats)
        self.switch_id = switch_id
        self.network = network
        self.topology = topology
        self.neighbors = topology.neighbors(switch_id)
        self.input_channels: Dict[Direction, ChannelSet] = {}
        # Port-indexed geometry: only the ports this topology actually
        # wires at this switch get input buffers (plus LOCAL injection).
        for port in (*topology.ports(), Direction.LOCAL):
            if port != Direction.LOCAL and port not in self.neighbors:
                continue
            self.input_channels[port] = ChannelSet(
                f"{self.name}.in.{port.value}",
                virtual_networks=virtual_networks,
                virtual_channels=virtual_channels,
                capacity_per_channel=buffer_capacity,
                shared=shared_buffers,
            )
        self.output_links: Dict[Direction, Link] = {}
        #: Flattened (port, channel, buffer, queue) scan order.  The channel
        #: layout is fixed at construction, so the nested dict walk per scan
        #: is precomputed once; the scan itself touches only non-empty
        #: buffers (the deque is captured directly for the emptiness test —
        #: a FiniteBuffer never replaces its deque).  Order matches the
        #: original nested iteration (insertion order of input ports, then
        #: of channels) — forwarding order is unchanged.
        self._scan_entries: List[Tuple[Direction, ChannelId, FiniteBuffer, object]] = [
            (port, cid, buf, buf._queue)
            for port, channels in self.input_channels.items()
            for cid, buf in channels.buffers()
        ]
        self._scan_scheduled = False
        self._scan_label = f"{self.name}.scan"
        #: Messages currently queued across all input buffers — maintained
        #: at the (only) push/pop sites below so an empty switch's scan is
        #: O(1).  Credit wakeups routinely land on switches with nothing
        #: queued.
        self._queued_count = 0
        #: Forwarding labels per output direction (f-string per message is
        #: measurable at millions of forwards).
        self._fwd_labels: Dict[Direction, str] = {
            direction: f"{self.name}->switch{neighbor}"
            for direction, neighbor in self.neighbors.items()}
        self.messages_forwarded = 0
        self.messages_ejected = 0
        self.blocked_events = 0

    # ----------------------------------------------------------------- wiring
    def attach_output_link(self, direction: Direction, link: Link) -> None:
        """Connect the outgoing link toward ``direction``."""
        self.output_links[direction] = link

    # -------------------------------------------------------------- injection
    def inject(self, message: NetworkMessage) -> bool:
        """Inject a message from the local endpoint.

        Returns False (and injects nothing) if the local input buffer has no
        space; the network interface retries later.
        """
        channels = self.input_channels[Direction.LOCAL]
        ok, cid = channels.reserve_for(message)
        if not ok:
            self.count("injection_blocked")
            return False
        channels.buffer(cid).push_reserved(message)
        self._queued_count += 1
        message.path.append(self.switch_id)
        self.count("injected")
        self.schedule_scan()
        return True

    def injection_space(self, message: NetworkMessage) -> int:
        """Free slots available to ``message`` at the local injection port."""
        return self.input_channels[Direction.LOCAL].free_slots_for(message)

    # --------------------------------------------------------- link reception
    def receive_from_link(self, message: NetworkMessage, input_port: Direction,
                          channel: ChannelId, epoch: Optional[int] = None) -> None:
        """A message arrives from an upstream switch into a reserved slot.

        ``epoch`` is the network flush epoch captured when the transfer
        started; a transfer that straddles a system recovery is dropped (its
        reservation was already cleared by the flush).
        """
        if epoch is not None and epoch != self.network.flush_epoch:
            self.count("squashed_in_flight")
            return
        self.input_channels[input_port].buffer(channel).push_reserved(message)
        self._queued_count += 1
        message.hops += 1
        message.path.append(self.switch_id)
        self.schedule_scan()

    # ---------------------------------------------------------------- scanning
    def schedule_scan(self, delay: int = 0) -> None:
        """Schedule a forwarding scan if one is not already pending."""
        if self._scan_scheduled:
            return
        self._scan_scheduled = True
        self.schedule(max(0, delay), self._scan, label=self._scan_label)

    def _scan(self) -> None:
        self._scan_scheduled = False
        if not self._queued_count:
            return
        progressed = False
        retry_at: Optional[int] = None
        for port, cid, buf, queue in self._scan_entries:
            if not queue:  # empty buffer: nothing to forward
                continue
            moved, wake_time = self._try_forward_head(port, cid, buf)
            progressed = progressed or moved
            if wake_time is not None:
                retry_at = wake_time if retry_at is None else min(retry_at, wake_time)
        if progressed:
            # More heads may now be free to move (and space opened upstream).
            self.schedule_scan(delay=1)
        elif retry_at is not None and retry_at > self.sim.now:
            self.schedule_scan(delay=retry_at - self.sim.now)

    def _try_forward_head(self, port: Direction, cid: ChannelId,
                          buf: FiniteBuffer) -> Tuple[bool, Optional[int]]:
        """Attempt to move the head message of one input buffer.

        Returns ``(moved, wake_time)``; ``wake_time`` is an absolute cycle at
        which a retry is worthwhile when the head is blocked on a busy link.
        """
        message = buf.peek()
        if message is None:
            return False, None
        direction = self.network.routing.route(
            self.switch_id, message, self._congestion_for)
        if direction == Direction.LOCAL:
            if not self.network.can_eject(self.switch_id):
                # The local node cannot ingest more messages until its own
                # outbound queue drains (no-VC design only); the head blocks
                # and backpressure propagates into the fabric.
                self.count("ejection_blocked")
                return False, self.sim.now + 16
            buf.pop()
            self._queued_count -= 1
            self.messages_ejected += 1
            self.count("ejected")
            self.network.deliver_to_endpoint(self.switch_id, message,
                                             delay=self.EJECTION_LATENCY)
            self._credit_released(port)
            return True, None

        link = self.output_links.get(direction)
        if link is None:  # degenerate 1-wide geometry: treat as local loopback
            buf.pop()
            self._queued_count -= 1
            self.network.deliver_to_endpoint(self.switch_id, message,
                                             delay=self.EJECTION_LATENCY)
            self._credit_released(port)
            return True, None

        downstream_id = self.neighbors[direction]
        downstream = self.network.switch(downstream_id)
        downstream_port = direction.opposite
        ok, downstream_cid = downstream.input_channels[downstream_port].reserve_for(message)
        if not ok:
            self.blocked_events += 1
            self.count("blocked_on_buffer")
            return False, None
        if link.is_busy:
            # Keep the reservation? No: release it so other traffic can use
            # the slot, and retry when the link frees up.
            downstream.input_channels[downstream_port].buffer(downstream_cid).cancel_reservation()
            return False, link.next_free_time()

        buf.pop()
        self._queued_count -= 1
        arrival = link.occupy(message.size_bytes)
        self.messages_forwarded += 1
        self.count("forwarded")
        epoch = self.network.flush_epoch
        self.sim.schedule_at(
            arrival,
            lambda m=message, d=downstream, p=downstream_port, c=downstream_cid, e=epoch:
                d.receive_from_link(m, p, c, e),
            label=self._fwd_labels[direction])
        self._credit_released(port)
        return True, None

    # ----------------------------------------------------------------- credits
    def _credit_released(self, port: Direction) -> None:
        """A slot freed on input ``port``: wake whoever feeds that port."""
        if port == Direction.LOCAL:
            self.network.notify_injection_space(self.switch_id)
            return
        upstream_id = self.neighbors.get(port)
        if upstream_id is not None:
            self.network.switch(upstream_id).schedule_scan(delay=1)

    # ------------------------------------------------------------- congestion
    def _congestion_for(self, direction: Direction) -> int:
        """Congestion metric used by adaptive routing for ``direction``."""
        downstream_id = self.neighbors.get(direction)
        if downstream_id is None:
            return 0
        downstream = self.network.switch(downstream_id)
        occupancy = downstream.input_channels[direction.opposite].occupancy()
        link = self.output_links.get(direction)
        link_penalty = 0
        if link is not None and link.is_busy:
            link_penalty = 1 + (link.busy_until - self.sim.now) // max(1, link.latency_cycles)
        return occupancy + link_penalty

    # -------------------------------------------------------------- inspection
    def blocked_heads(self) -> List[BlockedHead]:
        """Describe every head-of-line message that cannot advance right now.

        Used by the wait-for-graph deadlock detector and by tests; the
        production system never calls this (it relies on timeouts instead).
        """
        blocked: List[BlockedHead] = []
        for port, channels in self.input_channels.items():
            for cid, buf in channels.buffers():
                message = buf.peek()
                if message is None:
                    continue
                direction = self.network.routing.route(
                    self.switch_id, message, self._congestion_for)
                if direction == Direction.LOCAL:
                    if not self.network.can_eject(self.switch_id):
                        blocked.append(BlockedHead(
                            message=message, input_port=port, channel=cid,
                            waiting_on=(self.switch_id, Direction.LOCAL)))
                    continue
                downstream_id = self.neighbors.get(direction)
                if downstream_id is None:
                    continue
                downstream = self.network.switch(downstream_id)
                space = downstream.input_channels[direction.opposite].free_slots_for(message)
                if space <= 0:
                    blocked.append(BlockedHead(
                        message=message, input_port=port, channel=cid,
                        waiting_on=(downstream_id, direction.opposite)))
        return blocked

    def queued_messages(self) -> List[NetworkMessage]:
        """Every message currently buffered at this switch."""
        queued: List[NetworkMessage] = []
        for channels in self.input_channels.values():
            for _cid, buf in channels.buffers():
                queued.extend(list(buf))
        return queued

    def drain_all(self) -> List[NetworkMessage]:
        """Drop every buffered message (system-wide recovery)."""
        dropped: List[NetworkMessage] = []
        for channels in self.input_channels.values():
            dropped.extend(channels.drain())
        self._queued_count = 0
        return dropped


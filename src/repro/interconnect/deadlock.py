"""Deadlock machinery.

The paper distinguishes two kinds of deadlock (Section 4):

* **Endpoint deadlock** (Figure 2) — cross-coupled requests at the endpoints
  where neither processor can ingest its incoming request until it ingests a
  response that is stuck behind the requests.
* **Switch deadlock** (Figure 3) — cross-coupled messages plus insufficient
  buffering inside the network fabric.

The *production* detection mechanism of the speculative design is a
coherence-transaction timeout (Section 4, Detection) which lives with the
protocol (:mod:`repro.core.detection`).  This module provides the
*ground-truth* detector used by tests and by the Figure 2/3 illustrative
experiments: an explicit wait-for graph over buffers, where an edge points
from a buffer whose head message is blocked to the buffer it is waiting on;
a cycle in that graph is a deadlock.

Both detectors are port-indexed and topology-agnostic: a resource is a
``(switch_id, port_name)`` pair, where the port name comes from whatever
:class:`~repro.interconnect.topology.Direction` ports the switch's topology
wired up — the same scan works for the torus, the mesh and the ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.interconnect.switch import Switch
from repro.interconnect.topology import Direction


def _port_key(port) -> Hashable:
    """Canonical hashable name of a switch port (Direction or raw value)."""
    return port.value if isinstance(port, Direction) else port


@dataclass
class DeadlockReport:
    """Result of a deadlock scan."""

    deadlocked: bool
    #: One representative cycle of waiting resources (empty when no deadlock).
    cycle: List[Hashable] = field(default_factory=list)
    #: Total number of blocked resources observed during the scan.
    blocked_resources: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.deadlocked

    def to_json(self) -> Dict[str, object]:
        """JSON-safe payload (the speculation layer surfaces ground-truth
        scans through it; resource tuples become lists)."""
        return {
            "deadlocked": self.deadlocked,
            "cycle": [list(r) if isinstance(r, tuple) else r for r in self.cycle],
            "blocked_resources": self.blocked_resources,
        }


class WaitForGraph:
    """A generic wait-for graph with cycle detection.

    Nodes are arbitrary hashable resource identifiers (buffers, processors,
    switches); a directed edge ``a -> b`` means "a cannot make progress until
    b frees a resource".
    """

    def __init__(self) -> None:
        self._edges: Dict[Hashable, Set[Hashable]] = {}

    def add_edge(self, waiter: Hashable, holder: Hashable) -> None:
        self._edges.setdefault(waiter, set()).add(holder)
        self._edges.setdefault(holder, set())

    def add_node(self, node: Hashable) -> None:
        self._edges.setdefault(node, set())

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._edges)

    def successors(self, node: Hashable) -> Set[Hashable]:
        return self._edges.get(node, set())

    def find_cycle(self) -> Optional[List[Hashable]]:
        """Return one cycle as a list of nodes, or None if the graph is acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[Hashable, int] = {node: WHITE for node in self._edges}
        parent: Dict[Hashable, Optional[Hashable]] = {}

        for root in self._edges:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[Hashable, Iterable[Hashable]]] = [(root, iter(self._edges[root]))]
            color[root] = GREY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if color[succ] == WHITE:
                        color[succ] = GREY
                        parent[succ] = node
                        stack.append((succ, iter(self._edges[succ])))
                        advanced = True
                        break
                    if color[succ] == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [succ]
                        cursor = node
                        while cursor is not None and cursor != succ:
                            cycle.append(cursor)
                            cursor = parent.get(cursor)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def has_cycle(self) -> bool:
        return self.find_cycle() is not None


def detect_switch_deadlock(switches: Sequence[Switch]) -> DeadlockReport:
    """Scan a set of switches for buffer-wait cycles (Figure 3 scenario).

    A resource is an input buffer identified by ``(switch_id, port)``; its
    head message waiting for space at a downstream buffer creates an edge.
    """
    graph = WaitForGraph()
    blocked = 0
    for switch in switches:
        for head in switch.blocked_heads():
            blocked += 1
            waiter = (switch.switch_id, _port_key(head.input_port))
            if head.waiting_on is None:
                continue
            downstream_id, downstream_port = head.waiting_on
            graph.add_edge(waiter, (downstream_id, _port_key(downstream_port)))
    cycle = graph.find_cycle()
    return DeadlockReport(deadlocked=cycle is not None,
                          cycle=cycle or [],
                          blocked_resources=blocked)


def detect_network_deadlock(network) -> DeadlockReport:
    """Full-network deadlock scan including the endpoint coupling.

    Extends :func:`detect_switch_deadlock` with the message-dependent edges
    of the speculative no-VC design: a buffer whose head cannot be *ejected*
    waits on its local endpoint, and an endpoint with a backed-up outbound
    queue waits on its switch's local injection buffer.  A cycle through
    those edges is the endpoint/switch deadlock of Figures 2 and 3.
    """
    graph = WaitForGraph()
    blocked = 0
    for switch in network.switches:
        for head in switch.blocked_heads():
            blocked += 1
            waiter = (switch.switch_id, _port_key(head.input_port))
            if head.waiting_on is None:
                continue
            downstream_id, downstream_port = head.waiting_on
            port_value = _port_key(downstream_port)
            if port_value == Direction.LOCAL.value and downstream_id == switch.switch_id:
                # Waiting on the local endpoint to start ingesting again.
                graph.add_edge(waiter, ("endpoint", switch.switch_id))
            else:
                graph.add_edge(waiter, (downstream_id, port_value))
    # Endpoint -> local injection buffer edges: a node with queued outbound
    # messages is waiting for space at its switch's local input port.
    for node_id, endpoint in network._endpoints.items():
        if endpoint.pending_injection:
            blocked += 1
            graph.add_edge(("endpoint", node_id),
                           (node_id, Direction.LOCAL.value))
    cycle = graph.find_cycle()
    return DeadlockReport(deadlocked=cycle is not None, cycle=cycle or [],
                          blocked_resources=blocked)


def detect_endpoint_deadlock(waiters: Dict[Hashable, Hashable]) -> DeadlockReport:
    """Detect endpoint deadlock from an explicit waits-on mapping.

    ``waiters[a] = b`` means endpoint ``a`` cannot ingest new messages until
    endpoint ``b`` drains one of its queues (the Figure 2 scenario where each
    processor's incoming queue is full of requests and the response it needs
    is stuck behind them).
    """
    graph = WaitForGraph()
    for waiter, holder in waiters.items():
        graph.add_edge(waiter, holder)
    cycle = graph.find_cycle()
    return DeadlockReport(deadlocked=cycle is not None, cycle=cycle or [],
                          blocked_resources=len(waiters))

"""2D bidirectional torus topology.

The paper's target system connects its 16 nodes with a two-dimensional torus
(Section 3.1).  Each node has one switch; switches are connected to their
four neighbours with wrap-around links.  This module is pure geometry: it
knows coordinates, neighbours, minimal directions and shortest-path distances
but nothing about buffering or timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple


class Direction(str, Enum):
    """Output port directions at a torus switch."""

    EAST = "east"
    WEST = "west"
    NORTH = "north"
    SOUTH = "south"
    LOCAL = "local"

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.LOCAL: Direction.LOCAL,
}


@dataclass(frozen=True)
class Coordinate:
    """(x, y) position of a switch on the torus."""

    x: int
    y: int


class TorusTopology:
    """Geometry of a ``width`` x ``height`` bidirectional torus."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("torus dimensions must be >= 1")
        self.width = width
        self.height = height
        # Routing tables, built lazily on first use: geometry is static, so
        # every (src, dst) question the switches ask per message reduces to
        # one table lookup on the hot path (DESIGN.md §5).
        self._dim_order_table: List[List[Direction]] = []
        self._minimal_table: List[List[List[Direction]]] = []

    # ------------------------------------------------------------ identifiers
    @property
    def num_switches(self) -> int:
        return self.width * self.height

    def coordinate(self, switch_id: int) -> Coordinate:
        """Map a switch id to its (x, y) coordinate."""
        self._check(switch_id)
        return Coordinate(switch_id % self.width, switch_id // self.width)

    def switch_id(self, x: int, y: int) -> int:
        """Map an (x, y) coordinate (taken modulo the torus) to a switch id."""
        return (y % self.height) * self.width + (x % self.width)

    def _check(self, switch_id: int) -> None:
        if not 0 <= switch_id < self.num_switches:
            raise ValueError(f"switch id {switch_id} out of range")

    # -------------------------------------------------------------- neighbours
    def neighbor(self, switch_id: int, direction: Direction) -> int:
        """The switch one hop away in ``direction`` (with wrap-around)."""
        self._check(switch_id)
        coord = self.coordinate(switch_id)
        if direction == Direction.EAST:
            return self.switch_id(coord.x + 1, coord.y)
        if direction == Direction.WEST:
            return self.switch_id(coord.x - 1, coord.y)
        if direction == Direction.NORTH:
            return self.switch_id(coord.x, coord.y - 1)
        if direction == Direction.SOUTH:
            return self.switch_id(coord.x, coord.y + 1)
        return switch_id

    def neighbors(self, switch_id: int) -> Dict[Direction, int]:
        """All distinct non-local neighbours of a switch."""
        result: Dict[Direction, int] = {}
        for direction in (Direction.EAST, Direction.WEST, Direction.NORTH, Direction.SOUTH):
            other = self.neighbor(switch_id, direction)
            if other != switch_id:
                result[direction] = other
        return result

    # ---------------------------------------------------------------- distances
    def _axis_offsets(self, src: int, dst: int) -> Tuple[int, int]:
        """Signed minimal offsets (dx, dy) from src to dst along the torus."""
        a, b = self.coordinate(src), self.coordinate(dst)
        dx = self._wrap_offset(b.x - a.x, self.width)
        dy = self._wrap_offset(b.y - a.y, self.height)
        return dx, dy

    @staticmethod
    def _wrap_offset(delta: int, size: int) -> int:
        delta %= size
        if delta > size // 2:
            delta -= size
        return delta

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two switches."""
        dx, dy = self._axis_offsets(src, dst)
        return abs(dx) + abs(dy)

    def _minimal_directions_uncached(self, src: int, dst: int) -> List[Direction]:
        if src == dst:
            return [Direction.LOCAL]
        dx, dy = self._axis_offsets(src, dst)
        options: List[Direction] = []
        if dx > 0:
            options.append(Direction.EAST)
        elif dx < 0:
            options.append(Direction.WEST)
        if dy > 0:
            options.append(Direction.SOUTH)
        elif dy < 0:
            options.append(Direction.NORTH)
        return options

    def _build_tables(self) -> None:
        """Precompute per-(src, dst) next-hop answers from the geometry."""
        n = self.num_switches
        minimal = [[self._minimal_directions_uncached(src, dst)
                    for dst in range(n)] for src in range(n)]
        dim_order = [[Direction.LOCAL] * n for _ in range(n)]
        for src in range(n):
            row = dim_order[src]
            for dst in range(n):
                if src == dst:
                    continue
                dx, dy = self._axis_offsets(src, dst)
                if dx > 0:
                    row[dst] = Direction.EAST
                elif dx < 0:
                    row[dst] = Direction.WEST
                elif dy > 0:
                    row[dst] = Direction.SOUTH
                else:
                    row[dst] = Direction.NORTH
        self._minimal_table = minimal
        self._dim_order_table = dim_order

    def minimal_directions(self, src: int, dst: int) -> List[Direction]:
        """Directions that lie on *some* minimal path from src to dst.

        On a torus a minimal route can make progress in the X dimension, the
        Y dimension, or either; adaptive routing chooses among these,
        dimension-order routing always takes X first.

        The returned list is a shared precomputed table row — treat it as
        read-only.
        """
        table = self._minimal_table
        if not table:
            self._check(src)
            self._check(dst)
            self._build_tables()
            table = self._minimal_table
        elif not (0 <= src < len(table) and 0 <= dst < len(table)):
            self._check(src)
            self._check(dst)
        return table[src][dst]

    def dimension_order_direction(self, src: int, dst: int) -> Direction:
        """The unique X-then-Y (dimension order) next hop direction."""
        table = self._dim_order_table
        if not table:
            self._check(src)
            self._check(dst)
            self._build_tables()
            table = self._dim_order_table
        elif not (0 <= src < len(table) and 0 <= dst < len(table)):
            self._check(src)
            self._check(dst)
        return table[src][dst]

    def dimension_order_table(self) -> List[List[Direction]]:
        """The full ``[src][dst] -> Direction`` next-hop table (read-only)."""
        if not self._dim_order_table:
            self._build_tables()
        return self._dim_order_table

    def minimal_directions_table(self) -> List[List[List[Direction]]]:
        """The full ``[src][dst] -> minimal directions`` table (read-only)."""
        if not self._minimal_table:
            self._build_tables()
        return self._minimal_table

    def all_pairs_mean_distance(self) -> float:
        """Mean minimal distance over all ordered pairs (used in reports)."""
        n = self.num_switches
        if n <= 1:
            return 0.0
        total = sum(self.distance(a, b)
                    for a in range(n) for b in range(n) if a != b)
        return total / (n * (n - 1))

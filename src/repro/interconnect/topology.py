"""Pluggable interconnect topologies.

The paper's target system connects its 16 nodes with a two-dimensional torus
(Section 3.1), but the speculation-for-simplicity argument — how reachable
deadlock is, how often adaptive routing reorders messages, what a recovery
costs — depends directly on the interconnect geometry and the system scale.
This module therefore defines a :class:`Topology` interface plus three
implementations behind a small registry:

* :class:`TorusTopology` — the paper's 2D bidirectional torus (wrap-around
  links in both dimensions).
* :class:`MeshTopology` — the same grid without wrap-around; edge switches
  simply lack the corresponding ports.
* :class:`RingTopology` — a one-dimensional cycle (EAST/WEST ports only),
  the smallest geometry on which the no-virtual-channel design can deadlock
  through the wrap-around channel cycle.

Every topology is pure geometry: it knows node/port enumeration, neighbour
maps, minimal directions and shortest-path distances, but nothing about
buffering or timing.  Routing questions are answered from precomputed
``[src][dst]`` tables built lazily on first use (the table-lookup fast path
of DESIGN.md §5): the geometry maths runs once per topology, not once per
message-hop.

Ports are named by the :class:`Direction` enum.  A topology uses a subset of
the four cardinal ports (plus LOCAL injection/ejection); :meth:`Topology.ports`
enumerates the subset so switches only allocate buffers for ports that can
ever carry traffic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple, Type


class Direction(str, Enum):
    """Output port directions at a switch."""

    EAST = "east"
    WEST = "west"
    NORTH = "north"
    SOUTH = "south"
    LOCAL = "local"

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.LOCAL: Direction.LOCAL,
}

#: The four cardinal (non-local) ports, in the canonical scan order.
CARDINAL_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.EAST, Direction.WEST, Direction.NORTH, Direction.SOUTH)


@dataclass(frozen=True)
class Coordinate:
    """(x, y) position of a switch on a 2D grid (y is 0 for 1D topologies)."""

    x: int
    y: int


class Topology(ABC):
    """Interface every interconnect geometry implements.

    Contract (relied on by :class:`~repro.interconnect.switch.Switch`, the
    routing algorithms and the wait-for-graph deadlock detectors):

    * switches are numbered ``0 .. num_switches - 1``;
    * :meth:`neighbor` returns the switch one hop away in a direction, or
      the switch itself when the topology has no such link (edge of a mesh,
      missing dimension) — callers treat "neighbour == self" as "no port";
    * :meth:`minimal_directions` returns every direction lying on *some*
      minimal path (``[LOCAL]`` for src == dst); following any listed
      direction from any switch strictly decreases :meth:`distance`;
    * :meth:`dimension_order_direction` returns the unique deterministic
      (X-then-Y) next hop, so a static route between a pair of nodes is
      always the same path;
    * the ``*_table`` accessors expose the full precomputed ``[src][dst]``
      answers; rows are shared and must be treated as read-only.
    """

    #: Registry key; subclasses override (e.g. ``"torus"``).
    kind = "abstract"

    def __init__(self, num_switches: int) -> None:
        if num_switches < 1:
            raise ValueError("topology must have at least one switch")
        self._num_switches = num_switches
        # Routing tables, built lazily on first use: geometry is static, so
        # every (src, dst) question the switches ask per message reduces to
        # one table lookup on the hot path (DESIGN.md §5).
        self._dim_order_table: List[List[Direction]] = []
        self._minimal_table: List[List[List[Direction]]] = []

    # ------------------------------------------------------------ identifiers
    @property
    def num_switches(self) -> int:
        return self._num_switches

    @property
    def dims(self) -> Tuple[int, ...]:
        """The dimension vector this topology was built from."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable form, e.g. ``"4x4 torus"``."""
        return f"{'x'.join(str(d) for d in self.dims)} {self.kind}"

    def _check(self, switch_id: int) -> None:
        if not 0 <= switch_id < self._num_switches:
            raise ValueError(f"switch id {switch_id} out of range")

    # -------------------------------------------------------------- geometry
    @abstractmethod
    def coordinate(self, switch_id: int) -> Coordinate:
        """Map a switch id to its grid coordinate."""

    @abstractmethod
    def neighbor(self, switch_id: int, direction: Direction) -> int:
        """The switch one hop away in ``direction`` (self when no link)."""

    @abstractmethod
    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two switches."""

    @abstractmethod
    def _static_direction_uncached(self, src: int, dst: int) -> Direction:
        """The deterministic (dimension-order) next hop; LOCAL for src==dst."""

    @abstractmethod
    def _minimal_directions_uncached(self, src: int, dst: int) -> List[Direction]:
        """Every direction on some minimal path; ``[LOCAL]`` for src==dst."""

    def ports(self) -> Tuple[Direction, ...]:
        """Cardinal ports this geometry can ever use (LOCAL excluded)."""
        return CARDINAL_DIRECTIONS

    def neighbors(self, switch_id: int) -> Dict[Direction, int]:
        """All distinct non-local neighbours of a switch."""
        self._check(switch_id)
        result: Dict[Direction, int] = {}
        for direction in self.ports():
            other = self.neighbor(switch_id, direction)
            if other != switch_id:
                result[direction] = other
        return result

    # ----------------------------------------------------------- route tables
    def _build_tables(self) -> None:
        """Precompute per-(src, dst) next-hop answers from the geometry."""
        n = self._num_switches
        self._minimal_table = [
            [self._minimal_directions_uncached(src, dst) for dst in range(n)]
            for src in range(n)]
        self._dim_order_table = [
            [self._static_direction_uncached(src, dst) for dst in range(n)]
            for src in range(n)]

    def minimal_directions(self, src: int, dst: int) -> List[Direction]:
        """Directions that lie on *some* minimal path from src to dst.

        Adaptive routing chooses among these; dimension-order routing always
        takes :meth:`dimension_order_direction`.  The returned list is a
        shared precomputed table row — treat it as read-only.
        """
        table = self._minimal_table
        if not table:
            self._check(src)
            self._check(dst)
            self._build_tables()
            table = self._minimal_table
        elif not (0 <= src < len(table) and 0 <= dst < len(table)):
            self._check(src)
            self._check(dst)
        return table[src][dst]

    def dimension_order_direction(self, src: int, dst: int) -> Direction:
        """The unique deterministic (dimension order) next hop direction."""
        table = self._dim_order_table
        if not table:
            self._check(src)
            self._check(dst)
            self._build_tables()
            table = self._dim_order_table
        elif not (0 <= src < len(table) and 0 <= dst < len(table)):
            self._check(src)
            self._check(dst)
        return table[src][dst]

    def dimension_order_table(self) -> List[List[Direction]]:
        """The full ``[src][dst] -> Direction`` next-hop table (read-only)."""
        if not self._dim_order_table:
            self._build_tables()
        return self._dim_order_table

    def minimal_directions_table(self) -> List[List[List[Direction]]]:
        """The full ``[src][dst] -> minimal directions`` table (read-only)."""
        if not self._minimal_table:
            self._build_tables()
        return self._minimal_table

    def all_pairs_mean_distance(self) -> float:
        """Mean minimal distance over all ordered pairs (used in reports)."""
        n = self._num_switches
        if n <= 1:
            return 0.0
        total = sum(self.distance(a, b)
                    for a in range(n) for b in range(n) if a != b)
        return total / (n * (n - 1))

    # ---------------------------------------------------------- construction
    @classmethod
    def from_dims(cls, dims: Sequence[int]) -> "Topology":
        """Build an instance from a dimension vector (registry entry point)."""
        raise NotImplementedError


def _wrap_offset(delta: int, size: int) -> int:
    """Signed minimal offset along a wrap-around axis (ties go positive)."""
    delta %= size
    if delta > size // 2:
        delta -= size
    return delta


class _Grid2D(Topology):
    """Shared (x, y) coordinate arithmetic for the 2D topologies."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"{self.kind} dimensions must be >= 1")
        self.width = width
        self.height = height
        super().__init__(width * height)

    @property
    def dims(self) -> Tuple[int, ...]:
        return (self.width, self.height)

    def coordinate(self, switch_id: int) -> Coordinate:
        """Map a switch id to its (x, y) coordinate."""
        self._check(switch_id)
        return Coordinate(switch_id % self.width, switch_id // self.width)

    def switch_id(self, x: int, y: int) -> int:
        """Map an (x, y) coordinate (taken modulo the grid) to a switch id."""
        return (y % self.height) * self.width + (x % self.width)

    @classmethod
    def from_dims(cls, dims: Sequence[int]) -> "Topology":
        if len(dims) != 2:
            raise ValueError(f"{cls.kind} topology takes dims (width, height), "
                             f"got {tuple(dims)}")
        return cls(dims[0], dims[1])


class TorusTopology(_Grid2D):
    """Geometry of a ``width`` x ``height`` bidirectional torus."""

    kind = "torus"

    # -------------------------------------------------------------- neighbours
    def neighbor(self, switch_id: int, direction: Direction) -> int:
        """The switch one hop away in ``direction`` (with wrap-around)."""
        self._check(switch_id)
        coord = self.coordinate(switch_id)
        if direction == Direction.EAST:
            return self.switch_id(coord.x + 1, coord.y)
        if direction == Direction.WEST:
            return self.switch_id(coord.x - 1, coord.y)
        if direction == Direction.NORTH:
            return self.switch_id(coord.x, coord.y - 1)
        if direction == Direction.SOUTH:
            return self.switch_id(coord.x, coord.y + 1)
        return switch_id

    # ---------------------------------------------------------------- distances
    def _axis_offsets(self, src: int, dst: int) -> Tuple[int, int]:
        """Signed minimal offsets (dx, dy) from src to dst along the torus."""
        a, b = self.coordinate(src), self.coordinate(dst)
        return (_wrap_offset(b.x - a.x, self.width),
                _wrap_offset(b.y - a.y, self.height))

    def distance(self, src: int, dst: int) -> int:
        dx, dy = self._axis_offsets(src, dst)
        return abs(dx) + abs(dy)

    def _minimal_directions_uncached(self, src: int, dst: int) -> List[Direction]:
        if src == dst:
            return [Direction.LOCAL]
        dx, dy = self._axis_offsets(src, dst)
        options: List[Direction] = []
        if dx > 0:
            options.append(Direction.EAST)
        elif dx < 0:
            options.append(Direction.WEST)
        if dy > 0:
            options.append(Direction.SOUTH)
        elif dy < 0:
            options.append(Direction.NORTH)
        return options

    def _static_direction_uncached(self, src: int, dst: int) -> Direction:
        if src == dst:
            return Direction.LOCAL
        dx, dy = self._axis_offsets(src, dst)
        if dx > 0:
            return Direction.EAST
        if dx < 0:
            return Direction.WEST
        if dy > 0:
            return Direction.SOUTH
        return Direction.NORTH


class MeshTopology(_Grid2D):
    """A ``width`` x ``height`` 2D mesh — the torus without wrap-around.

    Edge switches have no port toward the missing neighbour, so the geometry
    has lower bisection bandwidth and a longer mean path than the equal-size
    torus; X-then-Y routing on a mesh is deadlock-free even without virtual
    channels (there is no cyclic channel dependency to close).
    """

    kind = "mesh"

    def neighbor(self, switch_id: int, direction: Direction) -> int:
        """The switch one hop away in ``direction`` (self at a grid edge)."""
        self._check(switch_id)
        coord = self.coordinate(switch_id)
        if direction == Direction.EAST and coord.x + 1 < self.width:
            return self.switch_id(coord.x + 1, coord.y)
        if direction == Direction.WEST and coord.x - 1 >= 0:
            return self.switch_id(coord.x - 1, coord.y)
        if direction == Direction.NORTH and coord.y - 1 >= 0:
            return self.switch_id(coord.x, coord.y - 1)
        if direction == Direction.SOUTH and coord.y + 1 < self.height:
            return self.switch_id(coord.x, coord.y + 1)
        return switch_id

    def _offsets(self, src: int, dst: int) -> Tuple[int, int]:
        a, b = self.coordinate(src), self.coordinate(dst)
        return b.x - a.x, b.y - a.y

    def distance(self, src: int, dst: int) -> int:
        dx, dy = self._offsets(src, dst)
        return abs(dx) + abs(dy)

    def _minimal_directions_uncached(self, src: int, dst: int) -> List[Direction]:
        if src == dst:
            return [Direction.LOCAL]
        dx, dy = self._offsets(src, dst)
        options: List[Direction] = []
        if dx > 0:
            options.append(Direction.EAST)
        elif dx < 0:
            options.append(Direction.WEST)
        if dy > 0:
            options.append(Direction.SOUTH)
        elif dy < 0:
            options.append(Direction.NORTH)
        return options

    def _static_direction_uncached(self, src: int, dst: int) -> Direction:
        if src == dst:
            return Direction.LOCAL
        dx, dy = self._offsets(src, dst)
        if dx > 0:
            return Direction.EAST
        if dx < 0:
            return Direction.WEST
        if dy > 0:
            return Direction.SOUTH
        return Direction.NORTH


class RingTopology(Topology):
    """A one-dimensional bidirectional ring of ``num_nodes`` switches.

    Only the EAST/WEST ports exist.  The wrap-around link closes a channel
    cycle, so — unlike the mesh — a ring without virtual channels can reach
    switch deadlock with ordinary minimal routing, which makes it the
    smallest interesting geometry for the Section 4 recovery argument.  When
    ``num_nodes`` is even the diametrically opposite node is equally far in
    both directions; both count as minimal, giving adaptive routing its only
    path diversity on this topology.
    """

    kind = "ring"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("ring size must be >= 1")
        super().__init__(num_nodes)

    @property
    def dims(self) -> Tuple[int, ...]:
        return (self._num_switches,)

    def ports(self) -> Tuple[Direction, ...]:
        return (Direction.EAST, Direction.WEST)

    def coordinate(self, switch_id: int) -> Coordinate:
        self._check(switch_id)
        return Coordinate(switch_id, 0)

    def neighbor(self, switch_id: int, direction: Direction) -> int:
        self._check(switch_id)
        n = self._num_switches
        if direction == Direction.EAST:
            return (switch_id + 1) % n
        if direction == Direction.WEST:
            return (switch_id - 1) % n
        return switch_id

    def _offset(self, src: int, dst: int) -> int:
        return _wrap_offset(dst - src, self._num_switches)

    def distance(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return abs(self._offset(src, dst))

    def _minimal_directions_uncached(self, src: int, dst: int) -> List[Direction]:
        if src == dst:
            return [Direction.LOCAL]
        n = self._num_switches
        dx = self._offset(src, dst)
        if 2 * abs(dx) == n:  # diametric: both ways are equally minimal
            return [Direction.EAST, Direction.WEST]
        return [Direction.EAST] if dx > 0 else [Direction.WEST]

    def _static_direction_uncached(self, src: int, dst: int) -> Direction:
        if src == dst:
            return Direction.LOCAL
        return Direction.EAST if self._offset(src, dst) > 0 else Direction.WEST

    @classmethod
    def from_dims(cls, dims: Sequence[int]) -> "Topology":
        if len(dims) != 1:
            raise ValueError(f"ring topology takes dims (num_nodes,), "
                             f"got {tuple(dims)}")
        return cls(dims[0])


# ----------------------------------------------------------------- registry
_TOPOLOGY_REGISTRY: Dict[str, Type[Topology]] = {}


def register_topology(cls: Type[Topology]) -> Type[Topology]:
    """Register a topology class under its ``kind`` (class decorator)."""
    kind = cls.kind
    if not kind or kind == "abstract":
        raise ValueError("topology class must define a concrete 'kind'")
    if kind in _TOPOLOGY_REGISTRY:
        raise ValueError(f"topology kind {kind!r} registered twice")
    _TOPOLOGY_REGISTRY[kind] = cls
    return cls


register_topology(TorusTopology)
register_topology(MeshTopology)
register_topology(RingTopology)


def topology_kinds() -> List[str]:
    """Registered topology kinds, in registration order."""
    return list(_TOPOLOGY_REGISTRY)


def make_topology(kind: str, dims: Sequence[int]) -> Topology:
    """Build a registered topology from its kind and dimension vector.

    Every registered topology satisfies ``num_switches == product(dims)``
    (the convention :class:`repro.sim.config.InterconnectConfig` uses to
    validate node counts without importing geometry code).
    """
    try:
        cls = _TOPOLOGY_REGISTRY[kind]
    except KeyError:
        known = ", ".join(_TOPOLOGY_REGISTRY) or "<none>"
        raise ValueError(f"unknown topology kind {kind!r}; known: {known}") from None
    return cls.from_dims(dims)


# ------------------------------------------------------------- shared memo
#: Process-local hit/miss tallies for :func:`shared_topology`
#: (observational only; never serialized into results).
TOPOLOGY_MEMO_STATS: Dict[str, int] = {"topology_hits": 0, "topology_misses": 0}

_TOPOLOGY_MEMO: Dict[Tuple[str, Tuple[int, ...]], Topology] = {}


def shared_topology(kind: str, dims: Sequence[int]) -> Topology:
    """The memoized topology instance for ``(kind, dims)``.

    A topology is pure geometry — its routing tables are a function of the
    key alone and its rows are read-only by contract — so every network of
    the same geometry can share one instance instead of rebuilding the
    O(n^2) ``[src][dst]`` tables per run.  Both tables are forced on the
    miss path, which makes the returned artifact fully precomputed: a warm
    hit does no geometry maths at all.  Mutable routing *state* (adaptive
    tie-breaks, disable windows) lives on per-network routing objects,
    never on the shared topology.
    """
    key = (kind, tuple(int(d) for d in dims))
    topology = _TOPOLOGY_MEMO.get(key)
    if topology is not None:
        TOPOLOGY_MEMO_STATS["topology_hits"] += 1
        return topology
    TOPOLOGY_MEMO_STATS["topology_misses"] += 1
    topology = make_topology(kind, key[1])
    topology.dimension_order_table()
    topology.minimal_directions_table()
    _TOPOLOGY_MEMO[key] = topology
    return topology


def clear_topology_memo() -> None:
    """Drop every shared topology and zero the tallies (tests / benchmarks)."""
    _TOPOLOGY_MEMO.clear()
    TOPOLOGY_MEMO_STATS["topology_hits"] = 0
    TOPOLOGY_MEMO_STATS["topology_misses"] = 0


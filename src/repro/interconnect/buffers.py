"""Finite FIFO buffers with reservation-style flow control.

Switches and endpoints hold incoming messages in finite buffers.  The
baseline (non-speculative) network carves these buffers into one FIFO per
virtual network / virtual channel, which is what breaks the cyclic
dependences that cause deadlock; the speculatively simplified network of
Section 4 shares a single FIFO per input port among all message classes,
which is simpler but can deadlock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class BufferFullError(RuntimeError):
    """Raised when a message is pushed into a buffer with no free slot."""


class FiniteBuffer(Generic[T]):
    """A bounded FIFO with explicit slot reservation.

    Upstream senders *reserve* a slot before putting a message on the wire
    (credit-based flow control); the reservation is released either by
    cancelling it or by the message being popped at this buffer.
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._queue: Deque[T] = deque()
        self._reserved = 0
        self.peak_occupancy = 0
        self.total_enqueued = 0

    # ----------------------------------------------------------------- state
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Messages physically present plus reserved in-flight slots."""
        return len(self._queue) + self._reserved

    @property
    def free_slots(self) -> int:
        return self.capacity - self.occupancy

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    # ------------------------------------------------------------ reservation
    def reserve(self) -> bool:
        """Reserve one slot for an in-flight message; False if no space."""
        if len(self._queue) + self._reserved >= self.capacity:
            return False
        self._reserved += 1
        return True

    def cancel_reservation(self) -> None:
        """Release a reservation without delivering a message."""
        if self._reserved <= 0:
            raise RuntimeError(f"buffer {self.name}: cancel without reservation")
        self._reserved -= 1

    # ------------------------------------------------------------------ queue
    def push_reserved(self, item: T) -> None:
        """Deliver a message into a previously reserved slot."""
        if self._reserved <= 0:
            raise RuntimeError(f"buffer {self.name}: push without reservation")
        self._reserved -= 1
        self._queue.append(item)
        self.total_enqueued += 1
        occupancy = len(self._queue) + self._reserved
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy

    def push(self, item: T) -> None:
        """Push without a prior reservation (endpoint injection)."""
        if len(self._queue) + self._reserved >= self.capacity:
            raise BufferFullError(f"buffer {self.name} is full")
        self._queue.append(item)
        self.total_enqueued += 1
        occupancy = len(self._queue) + self._reserved
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy

    def peek(self) -> Optional[T]:
        return self._queue[0] if self._queue else None

    def pop(self) -> T:
        if not self._queue:
            raise IndexError(f"buffer {self.name} is empty")
        return self._queue.popleft()

    def drain(self) -> List[T]:
        """Remove and return every queued message (used on system recovery)."""
        items = list(self._queue)
        self._queue.clear()
        self._reserved = 0
        return items

    def __iter__(self) -> Iterable[T]:
        return iter(self._queue)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FiniteBuffer {self.name} {self.occupancy}/{self.capacity}>"

"""Interconnection-network substrate.

A network of switches with finite input buffering over a pluggable topology
(2D bidirectional torus — the paper's machine — plus mesh and ring),
dimension-order or minimal adaptive routing, optional virtual
networks/channels, and the two deadlock-related facilities the paper relies
on: a wait-for-graph detector (ground truth, used by tests and the
illustrative Figure 2/3 experiments) and the message-timeout detector that
the speculative design uses in production.
"""

from repro.interconnect.message import (
    MessageClass,
    NetworkMessage,
    VirtualNetwork,
)
from repro.interconnect.topology import (
    Direction,
    MeshTopology,
    RingTopology,
    Topology,
    TorusTopology,
    clear_topology_memo,
    make_topology,
    register_topology,
    shared_topology,
    topology_kinds,
)
from repro.interconnect.routing import (
    AdaptiveMinimalRouting,
    DimensionOrderRouting,
    RoutingAlgorithm,
)
from repro.interconnect.buffers import FiniteBuffer
from repro.interconnect.link import Link
from repro.interconnect.switch import Switch
from repro.interconnect.network import (
    InterconnectNetwork,
    OrderingTracker,
    TorusNetwork,
)
from repro.interconnect.deadlock import (
    DeadlockReport,
    WaitForGraph,
    detect_endpoint_deadlock,
    detect_network_deadlock,
    detect_switch_deadlock,
)

__all__ = [
    "MessageClass",
    "NetworkMessage",
    "VirtualNetwork",
    "Topology",
    "TorusTopology",
    "MeshTopology",
    "RingTopology",
    "make_topology",
    "register_topology",
    "shared_topology",
    "clear_topology_memo",
    "topology_kinds",
    "Direction",
    "RoutingAlgorithm",
    "DimensionOrderRouting",
    "AdaptiveMinimalRouting",
    "FiniteBuffer",
    "Link",
    "Switch",
    "InterconnectNetwork",
    "TorusNetwork",
    "OrderingTracker",
    "WaitForGraph",
    "DeadlockReport",
    "detect_switch_deadlock",
    "detect_network_deadlock",
    "detect_endpoint_deadlock",
]

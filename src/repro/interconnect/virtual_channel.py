"""Virtual-network / virtual-channel organisation of switch input buffers.

Section 4 of the paper explains the multiplicative cost of deadlock
avoidance: N virtual networks (one per message class, to break endpoint
deadlock) times C virtual channels per network (to break switch deadlock on
the torus) gives N*C buffers per unidirectional link.  The baseline system
uses 4 virtual networks x 2 virtual channels; the speculatively simplified
network collapses everything into a single shared buffer per input port.

This module maps a message onto the buffer it must occupy at the next hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.interconnect.buffers import FiniteBuffer
from repro.interconnect.message import NetworkMessage, VirtualNetwork


@dataclass(frozen=True)
class ChannelId:
    """Identity of one buffer on one input port of one switch."""

    virtual_network: int
    virtual_channel: int

    def __str__(self) -> str:  # pragma: no cover
        return f"vn{self.virtual_network}.vc{self.virtual_channel}"


class ChannelSet:
    """The set of buffers attached to one switch input port.

    In the baseline configuration there is one :class:`FiniteBuffer` per
    (virtual network, virtual channel) pair.  In the speculative no-VC
    configuration there is exactly one shared buffer and every message maps
    to it — this is the design whose deadlocks Section 4 recovers from.
    """

    def __init__(self, name: str, *, virtual_networks: int,
                 virtual_channels: int, capacity_per_channel: int,
                 shared: bool) -> None:
        self.name = name
        self.shared = shared
        self.virtual_networks = virtual_networks
        self.virtual_channels = virtual_channels
        # The buffers live in a [vn][vc] grid with a parallel grid of
        # interned ChannelId objects: the per-message mapping is two list
        # index operations, never a dataclass hash (the old dict-keyed
        # layout spent a visible fraction of every scan in ChannelId
        # __hash__/__eq__).  ``_buffers`` is kept in sync for the
        # inspection API.
        self._buffers: Dict[ChannelId, FiniteBuffer[NetworkMessage]] = {}
        self._grid: List[List[FiniteBuffer[NetworkMessage]]] = []
        self._cids: List[List[ChannelId]] = []
        self._vc_count = 1 if shared else max(1, virtual_channels)
        vn_count = 1 if shared else virtual_networks
        for vn in range(vn_count):
            grid_row: List[FiniteBuffer[NetworkMessage]] = []
            cid_row: List[ChannelId] = []
            for vc in range(self._vc_count):
                cid = ChannelId(vn, vc)
                label = f"{name}.shared" if shared else f"{name}.{cid}"
                buf: FiniteBuffer[NetworkMessage] = FiniteBuffer(
                    label, capacity_per_channel)
                self._buffers[cid] = buf
                grid_row.append(buf)
                cid_row.append(cid)
            self._grid.append(grid_row)
            self._cids.append(cid_row)

    # --------------------------------------------------------------- mapping
    def channel_for(self, message: NetworkMessage) -> ChannelId:
        """Which buffer a message must occupy at this port.

        Virtual-channel selection is a deterministic function of the
        message's (source, destination) pair so that every message of one
        point-to-point stream uses the same FIFO at every hop.  This is what
        lets statically routed configurations preserve point-to-point
        ordering (Section 3.1's baseline assumption); spreading a stream
        across VCs would re-introduce reordering that has nothing to do with
        adaptive routing.
        """
        if self.shared:
            return self._cids[0][0]
        vn = message.vnet
        if vn >= self.virtual_networks:
            vn = vn % self.virtual_networks
        vc = (message.src * 31 + message.dst) % self._vc_count
        return self._cids[vn][vc]

    def candidate_channels(self, message: NetworkMessage) -> List[ChannelId]:
        """Buffers legal for this message (exactly one per stream, see above)."""
        return [self.channel_for(message)]

    # ---------------------------------------------------------------- queries
    def buffer(self, cid: ChannelId) -> FiniteBuffer[NetworkMessage]:
        return self._grid[cid.virtual_network][cid.virtual_channel]

    def buffers(self) -> List[Tuple[ChannelId, FiniteBuffer[NetworkMessage]]]:
        return list(self._buffers.items())

    def free_slots_for(self, message: NetworkMessage) -> int:
        """Total free slots across every buffer this message may use."""
        return self.buffer(self.channel_for(message)).free_slots

    def reserve_for(self, message: NetworkMessage) -> Tuple[bool, ChannelId]:
        """Reserve a slot in the message's buffer; returns ``(ok, channel)``.

        Inlines :meth:`channel_for` (this runs once per hop per message).
        """
        if self.shared:
            return self._grid[0][0].reserve(), self._cids[0][0]
        vn = message.vnet
        if vn >= self.virtual_networks:
            vn = vn % self.virtual_networks
        vc = (message.src * 31 + message.dst) % self._vc_count
        return self._grid[vn][vc].reserve(), self._cids[vn][vc]

    def occupancy(self) -> int:
        return sum(buf.occupancy for buf in self._buffers.values())

    def total_capacity(self) -> int:
        return sum(buf.capacity for buf in self._buffers.values())

    def drain(self) -> List[NetworkMessage]:
        """Drop every queued message (system recovery)."""
        dropped: List[NetworkMessage] = []
        for buf in self._buffers.values():
            dropped.extend(buf.drain())
        return dropped

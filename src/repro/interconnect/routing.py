"""Routing algorithms over any registered topology.

Two algorithms, matching Section 3.1 of the paper (stated there for the 2D
torus; both work unchanged on any :class:`~repro.interconnect.topology.Topology`
because every decision is a lookup in the topology's precomputed tables):

* :class:`DimensionOrderRouting` — static X-then-Y routing.  Every message
  between a given source and destination follows the same path, so the
  network trivially preserves point-to-point ordering per virtual network.
* :class:`AdaptiveMinimalRouting` — at each hop the message may take any
  direction that lies on a minimal path; the switch picks the direction
  whose outgoing queue is shortest (ties broken deterministically, with an
  optional random tie-break stream).  Two messages between the same pair of
  nodes can take different paths and arrive out of order — the property the
  speculative directory protocol relies on being *rare*.

Adaptive routing can be *selectively disabled* (the forward-progress
mechanism of Section 3.1): while disabled the adaptive router behaves exactly
like dimension-order routing, which guarantees the reordering race cannot
recur during re-execution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional

from repro.interconnect.message import NetworkMessage
from repro.interconnect.topology import Direction, Topology
from repro.sim.rng import DeterministicRng


class RoutingAlgorithm(ABC):
    """Chooses the output direction for a message at a switch."""

    name = "abstract"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @abstractmethod
    def route(self, switch_id: int, message: NetworkMessage,
              congestion: Callable[[Direction], int]) -> Direction:
        """Return the output direction for ``message`` at ``switch_id``.

        ``congestion(direction)`` reports the number of occupied downstream
        slots in that direction (higher means more congested); static routing
        ignores it.
        """

    @property
    def is_adaptive(self) -> bool:
        return False


class DimensionOrderRouting(RoutingAlgorithm):
    """Deterministic dimension-order routing (static; X-then-Y on grids).

    Every decision is a lookup in the topology's precomputed
    ``[src][dst] -> Direction`` table; the geometry maths runs once per
    topology, not once per message-hop.
    """

    name = "static"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._table = topology.dimension_order_table()

    def route(self, switch_id: int, message: NetworkMessage,
              congestion: Callable[[Direction], int]) -> Direction:
        return self._table[switch_id][message.dst]


class AdaptiveMinimalRouting(RoutingAlgorithm):
    """Minimal adaptive routing choosing the least congested direction.

    The algorithm is the one described in the paper: "allows messages to
    choose among minimal distance paths based on outgoing queue lengths in
    each direction".
    """

    name = "adaptive"

    def __init__(self, topology: Topology,
                 rng: Optional[DeterministicRng] = None,
                 random_tie_break: bool = False) -> None:
        super().__init__(topology)
        self.rng = rng if rng is not None else DeterministicRng(0)
        self.random_tie_break = random_tie_break
        self._disabled_until = -1
        self._now: Callable[[], int] = lambda: 0
        self.decisions = 0
        self.non_dimension_order_choices = 0
        self._static_table = topology.dimension_order_table()
        self._minimal_table = topology.minimal_directions_table()

    # -------------------------------------------------------------- disabling
    def bind_clock(self, now: Callable[[], int]) -> None:
        """Give the router access to the simulation clock (for disable windows)."""
        self._now = now

    def disable_until(self, cycle: int) -> None:
        """Selectively disable adaptivity until ``cycle`` (forward progress)."""
        self._disabled_until = max(self._disabled_until, cycle)

    def enable(self) -> None:
        """Re-enable adaptive routing immediately."""
        self._disabled_until = -1

    @property
    def currently_adaptive(self) -> bool:
        return self._now() >= self._disabled_until

    @property
    def is_adaptive(self) -> bool:
        return True

    # ----------------------------------------------------------------- routing
    def route(self, switch_id: int, message: NetworkMessage,
              congestion: Callable[[Direction], int]) -> Direction:
        static_choice = self._static_table[switch_id][message.dst]
        if self._now() < self._disabled_until:
            return static_choice

        options = self._minimal_table[switch_id][message.dst]
        if len(options) <= 1:
            return options[0] if options else static_choice

        self.decisions += 1
        scored = [(congestion(direction), direction) for direction in options]
        best_score = min(score for score, _ in scored)
        best = [direction for score, direction in scored if score == best_score]
        if len(best) == 1:
            choice = best[0]
        elif self.random_tie_break:
            choice = self.rng.choice("adaptive-tie-break", sorted(best, key=lambda d: d.value))
        else:
            # Deterministic tie break: prefer the dimension-order direction.
            choice = static_choice if static_choice in best else sorted(
                best, key=lambda d: d.value)[0]
        if choice != static_choice:
            self.non_dimension_order_choices += 1
        return choice


def make_routing(policy: str, topology: Topology,
                 rng: Optional[DeterministicRng] = None) -> RoutingAlgorithm:
    """Factory keyed by :class:`repro.sim.config.RoutingPolicy` values."""
    if policy == "static":
        return DimensionOrderRouting(topology)
    if policy == "adaptive":
        return AdaptiveMinimalRouting(topology, rng=rng)
    raise ValueError(f"unknown routing policy {policy!r}")

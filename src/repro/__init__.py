"""Reproduction of "Using Speculation to Simplify Multiprocessor Design"
(Sorin, Martin, Hill, Wood — IPDPS 2004).

The package implements the paper's speculation-for-simplicity framework and
every substrate its evaluation depends on: a discrete-event multiprocessor
memory-system simulator with a MOSI directory protocol, a MOESI broadcast
snooping protocol, a 2D-torus interconnect with static/adaptive routing and
optional virtual channels, the SafetyNet checkpoint/recovery mechanism,
synthetic analogues of the Wisconsin commercial workloads, and experiment
drivers that regenerate every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import SystemConfig, build_system
>>> config = SystemConfig.small(num_processors=4, references=1000)
>>> system = build_system(config)
>>> result = system.run()
>>> result.finished
True
"""

from repro.sim.config import (
    CacheConfig,
    CheckpointConfig,
    InterconnectConfig,
    ProcessorConfig,
    ProtocolKind,
    ProtocolVariant,
    RoutingPolicy,
    SpeculationConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.core import (
    MisspeculationEvent,
    RecoveryRecord,
    SpeculationFramework,
    SpeculationKind,
    TABLE1_MECHANISMS,
)
from repro.speculation import (
    Speculation,
    SpeculationManager,
    register_speculation,
    speculation_names,
)
from repro.system import (
    DirectorySystem,
    RunResult,
    SnoopingSystem,
    System,
    build_system,
)
from repro.workloads import (
    WorkloadFamily,
    make_workload,
    paper_workload_names,
    register_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CheckpointConfig",
    "InterconnectConfig",
    "ProcessorConfig",
    "ProtocolKind",
    "ProtocolVariant",
    "RoutingPolicy",
    "SpeculationConfig",
    "SystemConfig",
    "WorkloadConfig",
    "MisspeculationEvent",
    "RecoveryRecord",
    "SpeculationFramework",
    "SpeculationKind",
    "TABLE1_MECHANISMS",
    "Speculation",
    "SpeculationManager",
    "register_speculation",
    "speculation_names",
    "System",
    "DirectorySystem",
    "SnoopingSystem",
    "RunResult",
    "build_system",
    "WorkloadFamily",
    "make_workload",
    "paper_workload_names",
    "register_workload",
    "workload_names",
    "__version__",
]

"""Mis-speculation events and speculation kinds.

These types are the thin interface between the substrates (coherence
controllers, the interconnect, transaction timeouts) and the
speculation-for-simplicity framework: a substrate that detects a rare event
it chose not to design for raises a :class:`MisspeculationEvent`; the
framework decides what to do with it (recover, apply a forward-progress
policy, account for it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional


class SpeculationKind(str, Enum):
    """The three speculative designs of the paper (Table 1), plus injection.

    * ``DIRECTORY_P2P_ORDER`` — Section 3.1: the directory protocol
      speculates that the adaptively routed interconnect delivers messages in
      point-to-point order per virtual network.
    * ``SNOOPING_CORNER_CASE`` — Section 3.2: the snooping protocol treats a
      rare unhandled transient-state transition as a mis-speculation.
    * ``INTERCONNECT_DEADLOCK`` — Section 4: the network speculates that
      deadlock will not occur without virtual channels; a coherence
      transaction timeout detects it when it does.
    * ``INJECTED`` — the stress-test of Section 5.3 / Figure 4, where
      recoveries are triggered periodically regardless of actual
      mis-speculation.
    """

    DIRECTORY_P2P_ORDER = "directory-p2p-order"
    SNOOPING_CORNER_CASE = "snooping-corner-case"
    INTERCONNECT_DEADLOCK = "interconnect-deadlock"
    INJECTED = "injected"

    @property
    def registry_name(self) -> str:
        """Name under which :mod:`repro.speculation` registers this kind's
        implementation (the two vocabularies coincide by convention)."""
        return self.value


@dataclass
class MisspeculationEvent:
    """One detected mis-speculation.

    Attributes
    ----------
    kind:
        Which speculative design (or the injector) detected the event.
    detected_at:
        Simulation cycle of detection.
    node:
        Node id of the detecting controller (None for system-wide detectors).
    address:
        Memory block address involved, when applicable.
    description:
        Human-readable explanation, e.g. the invalid transition observed.
    details:
        Free-form extra data used by reports and tests.
    """

    kind: SpeculationKind
    detected_at: int
    node: Optional[int] = None
    address: Optional[int] = None
    description: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe payload (inverse of :meth:`from_json`)."""
        return {
            "kind": self.kind.value,
            "detected_at": self.detected_at,
            "node": self.node,
            "address": self.address,
            "description": self.description,
            "details": dict(self.details),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "MisspeculationEvent":
        return cls(
            kind=SpeculationKind(payload["kind"]),
            detected_at=payload["detected_at"],
            node=payload.get("node"),
            address=payload.get("address"),
            description=payload.get("description", ""),
            details=dict(payload.get("details", {})),
        )


@dataclass
class RecoveryRecord:
    """Bookkeeping for one completed system recovery."""

    event: MisspeculationEvent
    started_at: int
    recovery_point: int
    resumed_at: int
    work_lost_cycles: int
    messages_squashed: int
    log_entries_undone: int

    @property
    def kind(self) -> SpeculationKind:
        """The speculation kind this recovery is attributed to."""
        return self.event.kind

    @property
    def total_cost_cycles(self) -> int:
        """Cycles of forward progress sacrificed by this recovery."""
        return (self.resumed_at - self.started_at) + self.work_lost_cycles

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe payload (inverse of :meth:`from_json`)."""
        return {
            "event": self.event.to_json(),
            "started_at": self.started_at,
            "recovery_point": self.recovery_point,
            "resumed_at": self.resumed_at,
            "work_lost_cycles": self.work_lost_cycles,
            "messages_squashed": self.messages_squashed,
            "log_entries_undone": self.log_entries_undone,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RecoveryRecord":
        return cls(
            event=MisspeculationEvent.from_json(payload["event"]),
            started_at=payload["started_at"],
            recovery_point=payload["recovery_point"],
            resumed_at=payload["resumed_at"],
            work_lost_cycles=payload["work_lost_cycles"],
            messages_squashed=payload["messages_squashed"],
            log_entries_undone=payload["log_entries_undone"],
        )

"""Catalogue of the three speculative designs (Table 1 of the paper).

Table 1 characterises each application of speculation-for-simplicity along
the four framework features plus the resulting simplification.  The entries
below are the same characterisation, but each row also points at the modules
of this reproduction that implement it, so the table doubles as a map of the
codebase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.events import SpeculationKind


@dataclass(frozen=True)
class SpeculativeMechanism:
    """One application of speculation for simplicity (one column of Table 1)."""

    kind: SpeculationKind
    title: str
    infrequency: str
    detection: str
    recovery: str
    forward_progress: str
    result: str
    implemented_by: str


TABLE1_MECHANISMS: List[SpeculativeMechanism] = [
    SpeculativeMechanism(
        kind=SpeculationKind.DIRECTORY_P2P_ORDER,
        title="Simplify directory protocol by speculating on point-to-point ordering",
        infrequency="re-orderings are rare and most re-orderings do not matter",
        detection="one specific invalid transition in protocol controller",
        recovery="SafetyNet",
        forward_progress="selectively disable adaptive routing during re-execution",
        result="simpler protocol with rare mis-speculations",
        implemented_by=("repro.coherence.directory (SPECULATIVE variant), "
                        "repro.interconnect.routing.AdaptiveMinimalRouting, "
                        "repro.core.forward_progress.DisableAdaptiveRoutingPolicy"),
    ),
    SpeculativeMechanism(
        kind=SpeculationKind.SNOOPING_CORNER_CASE,
        title="Simplify snooping protocol by treating corner case transition as error",
        infrequency="writebacks do not often race with requests to write the block",
        detection="one specific invalid transition in protocol controller",
        recovery="SafetyNet",
        forward_progress="slow-start execution after recovery",
        result="protocol almost never exercises corner case in practice",
        implemented_by=("repro.coherence.snooping (SPECULATIVE variant), "
                        "repro.core.forward_progress.SlowStartPolicy"),
    ),
    SpeculativeMechanism(
        kind=SpeculationKind.INTERCONNECT_DEADLOCK,
        title="Simplify interconnection network by removing virtual channel flow control",
        infrequency="worst-case buffering requirements are rarely needed in practice",
        detection="timeout on cache coherence transaction",
        recovery="SafetyNet",
        forward_progress=("slow-start execution after recovery, with sufficient "
                          "buffering during slow-start"),
        result="simpler network incurs no deadlocks in practice",
        implemented_by=("repro.interconnect (speculative_no_vc=True), "
                        "repro.core.detection.transaction_timeout_cycles, "
                        "repro.core.forward_progress.SlowStartPolicy"),
    ),
]


def mechanism_for(kind: SpeculationKind) -> SpeculativeMechanism:
    """Look up the Table 1 entry for a speculation kind."""
    for mechanism in TABLE1_MECHANISMS:
        if mechanism.kind == kind:
            return mechanism
    raise KeyError(f"no Table 1 mechanism for {kind}")


def table1_rows() -> Dict[str, Dict[str, str]]:
    """Render Table 1 as ``{feature: {mechanism title: cell}}``."""
    features = {
        "(1) Infrequency of mis-speculation": "infrequency",
        "(2) Detection": "detection",
        "(3) Recovery": "recovery",
        "(4) Forward Progress": "forward_progress",
        "Result": "result",
    }
    rows: Dict[str, Dict[str, str]] = {}
    for feature_label, attr in features.items():
        rows[feature_label] = {m.title: getattr(m, attr) for m in TABLE1_MECHANISMS}
    return rows

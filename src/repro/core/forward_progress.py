"""Forward-progress policies (Section 2, feature 4).

After a recovery the system must guarantee that the execution cannot simply
re-create the same rare event forever.  All three of the paper's designs do
this by *altering the timing of the re-execution*:

* the directory-protocol design selectively disables adaptive routing, which
  makes the interconnect order-preserving during re-execution
  (:class:`DisableAdaptiveRoutingPolicy`), and
* the snooping and interconnect designs enter a "slow-start" mode that
  restricts the number of outstanding coherence transactions — with one
  outstanding transaction neither the snooping corner case (which needs two
  racing transactions) nor a buffer-cycle deadlock can occur
  (:class:`SlowStartPolicy` / :class:`SlowStartGate`).

Policies escalate: the first recovery may simply resume execution (the
timing perturbation of the recovery itself is usually enough), repeated
recoveries within a window apply the heavyweight mechanism.  That mirrors
the paper's "before resorting to slow-start, the system could simply try to
resume execution".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional

from repro.core.events import MisspeculationEvent, SpeculationKind
from repro.sim.engine import Simulator


class ForwardProgressPolicy(ABC):
    """Applied by the framework after every recovery."""

    name = "abstract"

    @abstractmethod
    def apply(self, event: MisspeculationEvent) -> None:
        """Adjust system behaviour so the detected event cannot recur forever."""

    def describe(self) -> str:
        return self.name


class NoOpPolicy(ForwardProgressPolicy):
    """Resume execution unchanged (relies on recovery's timing perturbation)."""

    name = "resume"

    def apply(self, event: MisspeculationEvent) -> None:  # pragma: no cover - trivial
        return


class DisableAdaptiveRoutingPolicy(ForwardProgressPolicy):
    """Selectively disable adaptive routing for a window after recovery.

    With adaptivity disabled the network is dimension-order routed and
    preserves point-to-point ordering, so the Section 3.1 race cannot recur
    during the re-execution window.  The window length is the knob the paper
    describes for trading worst-case performance against adaptivity benefit
    (never re-enabling bounds the degradation at one mis-speculation).
    """

    name = "disable-adaptive-routing"

    def __init__(self, disable: Callable[[int], None], window_cycles: int) -> None:
        if window_cycles < 0:
            raise ValueError("window must be non-negative")
        self._disable = disable
        self.window_cycles = window_cycles
        self.applications = 0

    def apply(self, event: MisspeculationEvent) -> None:
        self._disable(self.window_cycles)
        self.applications += 1


class SlowStartGate:
    """System-wide limiter on outstanding coherence transactions.

    Cache controllers consult :meth:`may_issue` before issuing a transaction
    and call :meth:`retired` when one completes.  Outside slow-start the gate
    imposes no limit.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.outstanding = 0
        self._limit: Optional[int] = None
        self._limit_until = 0
        self.denials = 0

    # ----------------------------------------------------------------- control
    def enter_slow_start(self, max_outstanding: int, duration_cycles: int) -> None:
        """Restrict concurrency to ``max_outstanding`` for ``duration_cycles``."""
        if max_outstanding < 1:
            raise ValueError("slow-start must allow at least one transaction")
        self._limit = max_outstanding
        self._limit_until = self.sim.now + duration_cycles

    def exit_slow_start(self) -> None:
        self._limit = None

    @property
    def active(self) -> bool:
        return self._limit is not None and self.sim.now < self._limit_until

    @property
    def current_limit(self) -> Optional[int]:
        return self._limit if self.active else None

    # ------------------------------------------------------------- controller API
    def may_issue(self, node: int) -> bool:
        limit = self.current_limit
        if limit is not None and self.outstanding >= limit:
            self.denials += 1
            return False
        self.outstanding += 1
        return True

    def retired(self, node: int) -> None:
        if self.outstanding > 0:
            self.outstanding -= 1

    def reset_outstanding(self) -> None:
        """Clear the outstanding count (after a recovery squashes everything)."""
        self.outstanding = 0


class SlowStartPolicy(ForwardProgressPolicy):
    """Enter slow-start mode after a recovery."""

    name = "slow-start"

    def __init__(self, gate: SlowStartGate, *, max_outstanding: int,
                 duration_cycles: int) -> None:
        self.gate = gate
        self.max_outstanding = max_outstanding
        self.duration_cycles = duration_cycles
        self.applications = 0

    def apply(self, event: MisspeculationEvent) -> None:
        self.gate.enter_slow_start(self.max_outstanding, self.duration_cycles)
        self.applications += 1


class CombinedPolicy(ForwardProgressPolicy):
    """Escalating policy: resume first, escalate on repeated mis-speculation.

    The first ``free_retries`` recoveries of a kind within ``window_cycles``
    only perturb timing (the recovery itself); after that the heavyweight
    policy is applied.  This mirrors the paper's observation that the system
    "could simply try to resume execution ... in the likely hope that the
    race does not recur" before falling back to the guaranteed mechanism.
    """

    name = "escalating"

    def __init__(self, sim: Simulator, heavyweight: ForwardProgressPolicy, *,
                 free_retries: int = 1, window_cycles: int = 500_000) -> None:
        self.sim = sim
        self.heavyweight = heavyweight
        self.free_retries = free_retries
        self.window_cycles = window_cycles
        self._recent: List[int] = []
        self.escalations = 0

    def apply(self, event: MisspeculationEvent) -> None:
        now = self.sim.now
        self._recent = [t for t in self._recent if now - t <= self.window_cycles]
        self._recent.append(now)
        if len(self._recent) > self.free_retries:
            self.heavyweight.apply(event)
            self.escalations += 1

    def describe(self) -> str:
        return f"resume then {self.heavyweight.describe()}"

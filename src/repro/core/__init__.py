"""Speculation-for-simplicity framework (the paper's primary contribution).

The framework of Section 2 specifies four features a speculative design must
provide; this package implements them as composable pieces:

1. **Infrequency** — not a mechanism but a property; the manager accounts
   for mis-speculation rates so experiments can verify it
   (:class:`repro.speculation.manager.SpeculationManager` statistics;
   ``SpeculationFramework`` is its historical name).
2. **Detection** — detection logic lives where the paper puts it (inside the
   cache controllers as "one specific invalid transition", and as a
   transaction timeout armed by the ``interconnect-deadlock`` speculation);
   the periodic recovery injector used by the Figure 4 stress test is the
   ``injected`` speculation.
3. **Recovery** — delegated to :class:`repro.safetynet.SafetyNet`.
4. **Forward progress** — :mod:`repro.core.forward_progress` implements the
   two policies the paper uses: selectively disabling adaptive routing, and
   "slow-start" restriction of outstanding coherence transactions.

The pattern itself — one reusable arm/detect/recover/account lifecycle,
applied three times — is rendered by the pluggable
:mod:`repro.speculation` package; this package keeps the event vocabulary
(:mod:`repro.core.events`), the policies, the Table 1 catalog
(:mod:`repro.core.catalog`) and back-compat shims for the moved pieces.
"""

from repro.core.events import MisspeculationEvent, RecoveryRecord, SpeculationKind
from repro.core.detection import RecoveryRateInjector
from repro.core.forward_progress import (
    CombinedPolicy,
    DisableAdaptiveRoutingPolicy,
    ForwardProgressPolicy,
    NoOpPolicy,
    SlowStartGate,
    SlowStartPolicy,
)
from repro.core.framework import SpeculationFramework
from repro.core.catalog import SpeculativeMechanism, TABLE1_MECHANISMS, table1_rows

__all__ = [
    "MisspeculationEvent",
    "RecoveryRecord",
    "SpeculationKind",
    "RecoveryRateInjector",
    "ForwardProgressPolicy",
    "NoOpPolicy",
    "DisableAdaptiveRoutingPolicy",
    "SlowStartPolicy",
    "SlowStartGate",
    "CombinedPolicy",
    "SpeculationFramework",
    "SpeculativeMechanism",
    "TABLE1_MECHANISMS",
    "table1_rows",
]

"""Speculation-for-simplicity framework (the paper's primary contribution).

The framework of Section 2 specifies four features a speculative design must
provide; this package implements them as composable pieces:

1. **Infrequency** — not a mechanism but a property; the framework accounts
   for mis-speculation rates so experiments can verify it
   (:class:`repro.core.framework.SpeculationFramework` statistics).
2. **Detection** — detection logic lives where the paper puts it (inside the
   cache controllers as "one specific invalid transition", and as a
   transaction timeout); :mod:`repro.core.detection` additionally provides
   the periodic recovery injector used by the Figure 4 stress test.
3. **Recovery** — delegated to :class:`repro.safetynet.SafetyNet`.
4. **Forward progress** — :mod:`repro.core.forward_progress` implements the
   two policies the paper uses: selectively disabling adaptive routing, and
   "slow-start" restriction of outstanding coherence transactions.

:mod:`repro.core.catalog` carries the Table 1 characterisation of the three
speculative designs.
"""

from repro.core.events import MisspeculationEvent, RecoveryRecord, SpeculationKind
from repro.core.detection import RecoveryRateInjector
from repro.core.forward_progress import (
    CombinedPolicy,
    DisableAdaptiveRoutingPolicy,
    ForwardProgressPolicy,
    NoOpPolicy,
    SlowStartGate,
    SlowStartPolicy,
)
from repro.core.framework import SpeculationFramework
from repro.core.catalog import SpeculativeMechanism, TABLE1_MECHANISMS, table1_rows

__all__ = [
    "MisspeculationEvent",
    "RecoveryRecord",
    "SpeculationKind",
    "RecoveryRateInjector",
    "ForwardProgressPolicy",
    "NoOpPolicy",
    "DisableAdaptiveRoutingPolicy",
    "SlowStartPolicy",
    "SlowStartGate",
    "CombinedPolicy",
    "SpeculationFramework",
    "SpeculativeMechanism",
    "TABLE1_MECHANISMS",
    "table1_rows",
]

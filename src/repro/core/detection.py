"""Detection support.

The paper's detection mechanisms are deliberately minimal and live with the
hardware being speculated on:

* the directory and snooping protocols detect "one specific invalid
  transition in the protocol controller" — implemented inside
  :class:`repro.coherence.directory.cache_controller.DirectoryCacheController`
  and :class:`repro.coherence.snooping.cache_controller.SnoopingCacheController`;
* the interconnect design detects deadlock with a timeout on coherence
  transactions — implemented in the cache controllers' transaction timeout.

This module provides the remaining pieces: the timeout calculation shared by
the systems, and the :class:`RecoveryRateInjector` used by the Figure 4
stress test, which triggers recoveries at a fixed rate on a system that is
otherwise not mis-speculating at all (the paper: "we implement a system
without speculation and inject periodic recoveries").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.events import MisspeculationEvent, SpeculationKind
from repro.sim.config import CheckpointConfig, SpeculationConfig
from repro.sim.engine import Simulator


def transaction_timeout_cycles(checkpoint: CheckpointConfig,
                               speculation: SpeculationConfig, *,
                               checkpoint_interval_cycles: Optional[int] = None) -> int:
    """Timeout used by the deadlock detector.

    The paper chooses a timeout of three checkpoint intervals: long enough to
    avoid false positives, short enough not to delay SafetyNet commitment
    (which must wait out the detection latency before declaring an interval
    mis-speculation-free).
    """
    interval = (checkpoint_interval_cycles if checkpoint_interval_cycles is not None
                else checkpoint.directory_interval_cycles)
    return max(1, speculation.timeout_checkpoint_intervals) * interval


class RecoveryRateInjector:
    """Triggers recoveries at a fixed rate (recoveries per "second").

    Used for the Figure 4 stress test.  The injector converts the requested
    rate into a period in cycles using the system's ``cycles_per_second``
    scale and reports an ``INJECTED`` mis-speculation every period.
    """

    def __init__(self, sim: Simulator, report: Callable[[MisspeculationEvent], None], *,
                 rate_per_second: float, cycles_per_second: float) -> None:
        if rate_per_second < 0:
            raise ValueError("rate must be non-negative")
        if cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")
        self.sim = sim
        self.report = report
        self.rate_per_second = rate_per_second
        self.cycles_per_second = cycles_per_second
        self.injections = 0
        self._active = False

    @property
    def period_cycles(self) -> Optional[int]:
        if self.rate_per_second == 0:
            return None
        return max(1, int(round(self.cycles_per_second / self.rate_per_second)))

    def start(self) -> None:
        """Begin injecting (no-op for a zero rate)."""
        period = self.period_cycles
        if period is None or self._active:
            return
        self._active = True
        self.sim.schedule(period, self._fire, label="recovery-injector")

    def stop(self) -> None:
        self._active = False

    def _fire(self) -> None:
        if not self._active:
            return
        self.injections += 1
        self.report(MisspeculationEvent(
            kind=SpeculationKind.INJECTED,
            detected_at=self.sim.now,
            description=(f"injected recovery #{self.injections} "
                         f"({self.rate_per_second}/s stress test)")))
        period = self.period_cycles
        assert period is not None
        self.sim.schedule(period, self._fire, label="recovery-injector")

"""Detection support (back-compat shim).

The paper's detection mechanisms are deliberately minimal and live with the
hardware being speculated on:

* the directory and snooping protocols detect "one specific invalid
  transition in the protocol controller" — implemented inside
  :class:`repro.coherence.directory.cache_controller.DirectoryCacheController`
  and :class:`repro.coherence.snooping.cache_controller.SnoopingCacheController`;
* the interconnect design detects deadlock with a timeout on coherence
  transactions — armed by
  :class:`repro.speculation.detectors.InterconnectDeadlockSpeculation`.

The shared timeout calculation and the Figure 4 injector now live in
:mod:`repro.speculation.detectors` (the injector as
:class:`~repro.speculation.detectors.PeriodicInjectionSpeculation`); this
module re-exports them under their historical names.
"""

from __future__ import annotations

from repro.speculation.detectors import (
    RecoveryRateInjector,
    transaction_timeout_cycles,
)

__all__ = ["RecoveryRateInjector", "transaction_timeout_cycles"]

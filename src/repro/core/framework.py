"""The speculation-for-simplicity framework coordinator.

:class:`SpeculationFramework` is the object the rest of the system reports
mis-speculations to.  For every report it:

1. checks the event is actionable (recoveries already in progress absorb
   concurrent detections of the same broken state — e.g. several processors
   timing out on the same deadlock),
2. asks SafetyNet to perform the system-wide recovery,
3. applies the forward-progress policy registered for the event's
   speculation kind, and
4. accounts for everything (counts, rates per scaled second, cost in cycles)
   so the evaluation section's questions — how often do we mis-speculate,
   and what does each recovery cost — can be answered directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.events import MisspeculationEvent, RecoveryRecord, SpeculationKind
from repro.core.forward_progress import ForwardProgressPolicy, NoOpPolicy
from repro.safetynet.manager import SafetyNet
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


@dataclass
class FrameworkStats:
    """Aggregate accounting of detections and recoveries."""

    detections: int = 0
    coalesced: int = 0
    recoveries: int = 0
    detections_by_kind: Dict[SpeculationKind, int] = field(default_factory=dict)
    recoveries_by_kind: Dict[SpeculationKind, int] = field(default_factory=dict)
    total_recovery_cost_cycles: int = 0


class SpeculationFramework:
    """Binds detection, recovery and forward progress together."""

    def __init__(self, sim: Simulator, safetynet: SafetyNet, *,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.sim = sim
        self.safetynet = safetynet
        self.stats = stats if stats is not None else StatsRegistry()
        self._policies: Dict[SpeculationKind, ForwardProgressPolicy] = {}
        self._default_policy: ForwardProgressPolicy = NoOpPolicy()
        self.events: List[MisspeculationEvent] = []
        self.records: List[RecoveryRecord] = []
        self.framework_stats = FrameworkStats()

    # ------------------------------------------------------------------ wiring
    def set_policy(self, kind: SpeculationKind, policy: ForwardProgressPolicy) -> None:
        """Register the forward-progress policy for one speculation kind."""
        self._policies[kind] = policy

    def policy_for(self, kind: SpeculationKind) -> ForwardProgressPolicy:
        return self._policies.get(kind, self._default_policy)

    # ---------------------------------------------------------------- reporting
    def report(self, event: MisspeculationEvent) -> Optional[RecoveryRecord]:
        """Handle a detected mis-speculation; returns the recovery performed.

        Returns ``None`` when the event was coalesced into a recovery that is
        already in progress (the rolled-back state it observed no longer
        exists).
        """
        fs = self.framework_stats
        fs.detections += 1
        fs.detections_by_kind[event.kind] = fs.detections_by_kind.get(event.kind, 0) + 1
        self.stats.counter(f"speculation.detected.{event.kind.value}").add()
        self.events.append(event)

        if self.sim.now < self.safetynet.stalled_until:
            # A recovery is in flight; this detection observed state that has
            # already been (or is being) rolled back.
            fs.coalesced += 1
            self.stats.counter("speculation.coalesced").add()
            return None

        record = self.safetynet.recover(event)
        self.policy_for(event.kind).apply(event)
        fs.recoveries += 1
        fs.recoveries_by_kind[event.kind] = fs.recoveries_by_kind.get(event.kind, 0) + 1
        fs.total_recovery_cost_cycles += record.total_cost_cycles
        self.records.append(record)
        return record

    # ------------------------------------------------------------------- stats
    def recovery_count(self, kind: Optional[SpeculationKind] = None) -> int:
        if kind is None:
            return self.framework_stats.recoveries
        return self.framework_stats.recoveries_by_kind.get(kind, 0)

    def detection_count(self, kind: Optional[SpeculationKind] = None) -> int:
        if kind is None:
            return self.framework_stats.detections
        return self.framework_stats.detections_by_kind.get(kind, 0)

    def recoveries_per_second(self, elapsed_cycles: int,
                              cycles_per_second: float) -> float:
        """Observed recovery rate in recoveries per (scaled) second."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles / cycles_per_second
        return self.framework_stats.recoveries / seconds if seconds > 0 else 0.0

    def total_recovery_cost_cycles(self) -> int:
        return self.framework_stats.total_recovery_cost_cycles

    def summary(self) -> Dict[str, object]:
        fs = self.framework_stats
        return {
            "detections": fs.detections,
            "coalesced": fs.coalesced,
            "recoveries": fs.recoveries,
            "recoveries_by_kind": {k.value: v for k, v in fs.recoveries_by_kind.items()},
            "total_recovery_cost_cycles": fs.total_recovery_cost_cycles,
        }

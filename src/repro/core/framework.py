"""Back-compat shim: the coordinator moved to :mod:`repro.speculation`.

``SpeculationFramework`` grew into the
:class:`repro.speculation.manager.SpeculationManager` when speculation
became a pluggable layer (registry-driven detectors, uniform attach point,
per-design accounting).  The old name and import path keep working; new
code should import from :mod:`repro.speculation`.
"""

from __future__ import annotations

from repro.speculation.manager import FrameworkStats, SpeculationManager

#: Historical name of the per-system coordinator.
SpeculationFramework = SpeculationManager

__all__ = ["FrameworkStats", "SpeculationFramework", "SpeculationManager"]

"""L1 filter cache.

The L1 caches (Table 2: 128 KB, 4-way, I and D) are modelled as a latency
filter in front of the coherent L2: a reference that hits in the L1 *and*
whose permission is still backed by the L2 coherence state completes in the
L1 hit latency without touching the protocol.  Coherence permissions are
checked lazily against the L2 on every access, which makes explicit L1
invalidation messages unnecessary while remaining conservative (an L1 line
whose L2 backing was invalidated never supplies stale data).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.coherence.cache import CacheArray
from repro.coherence.common import BlockAddress, MemoryOp
from repro.coherence.directory.states import CacheState
from repro.coherence.snooping.states import SnoopState
from repro.sim.config import CacheConfig


class L1State(str, Enum):
    """L1 tag states (permissions live in the L2 coherence state)."""

    VALID = "V"
    INVALID = "I"


class L1FilterCache:
    """A tag-only L1 used to filter accesses before the coherent L2."""

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.tags: CacheArray[L1State] = CacheArray(name, config, L1State.INVALID)

    def hit(self, address: BlockAddress, op: MemoryOp,
            l2_state: CacheState) -> bool:
        """True when the reference can complete at L1 speed.

        Loads need the L1 tag present and any valid L2 state; stores need
        write permission (Modified) at the L2 as well.
        """
        tags = self.tags
        if address not in tags._sets[(address // tags._block_bytes) % tags._num_sets]:
            return False
        # Identity tests against the enum members of both protocols: this is
        # the per-reference hot path, and the str-enum `has_valid_data` /
        # `can_write` properties cost a property descriptor plus string
        # comparison per call.  `l2_state` is a CacheState (directory) or a
        # SnoopState (snooping); enum members are singletons.
        if op is MemoryOp.LOAD:
            return (l2_state is not CacheState.INVALID
                    and l2_state is not SnoopState.INVALID)
        return (l2_state is CacheState.MODIFIED
                or l2_state is SnoopState.MODIFIED
                or l2_state is SnoopState.EXCLUSIVE)

    def fill(self, address: BlockAddress) -> None:
        """Install the tag after an L2 access completes."""
        self.tags.allocate(address, L1State.VALID)

    def invalidate(self, address: BlockAddress) -> None:
        if self.tags.contains(address):
            self.tags.set_state(address, L1State.INVALID)

    @property
    def hits(self) -> int:
        return self.tags.hits

    @property
    def misses(self) -> int:
        return self.tags.misses

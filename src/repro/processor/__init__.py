"""Processor models.

The paper uses a simple in-order, blocking, 1-IPC processor model on purpose
(Section 5.1): the evaluation depends on the memory-system behaviour, not on
core microarchitecture.  :class:`repro.processor.core.BlockingProcessor`
reproduces that model, including its role as a SafetyNet checkpoint
participant (its execution position is what recovery rolls back).
"""

from repro.processor.core import BlockingProcessor, ProcessorSnapshot
from repro.processor.l1 import L1FilterCache

__all__ = ["BlockingProcessor", "ProcessorSnapshot", "L1FilterCache"]

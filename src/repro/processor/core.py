"""Blocking in-order processor model.

Each processor executes a pre-generated stream of memory references (see
:mod:`repro.workloads`).  Between two references it spends a configurable
number of "compute" cycles (the non-memory instructions of the workload),
then probes the L1 filter and, on a miss, issues a blocking request to the
node's L2 cache controller.  The processor is a SafetyNet checkpoint
participant: its snapshot is its position in the reference stream, and a
recovery rolls that position back (losing the work done since the recovery
point) and stalls the processor for the recovery latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.coherence.common import MemoryOp, MemoryRequest
from repro.coherence.directory.states import CacheState
from repro.processor.l1 import L1FilterCache
from repro.safetynet.checkpoint import CheckpointParticipant
from repro.sim.component import Component
from repro.sim.config import ProcessorConfig, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry

#: One reference in a workload stream: (operation, block address).
Reference = Tuple[MemoryOp, int]


@dataclass
class ProcessorSnapshot:
    """Execution state captured at a SafetyNet checkpoint."""

    stream_index: int
    references_completed: int
    store_counter: int


class BlockingProcessor(Component, CheckpointParticipant):
    """A 1-IPC in-order processor that blocks on every memory reference."""

    def __init__(self, node_id: int, sim: Simulator, config: SystemConfig,
                 references: Sequence[Reference], *,
                 l1: Optional[L1FilterCache] = None,
                 rng: Optional[DeterministicRng] = None,
                 stats: Optional[StatsRegistry] = None) -> None:
        super().__init__(f"proc{node_id}", sim, stats)
        self.node_id = node_id
        self.config = config
        self.pconfig: ProcessorConfig = config.processor
        self.references: List[Reference] = list(references)
        self.l1 = l1
        self.rng = rng if rng is not None else DeterministicRng(node_id)
        #: Installed by the system builder: access(request, on_complete).
        self.l2_access: Optional[Callable[[MemoryRequest, Callable], None]] = None
        #: Installed by the system builder: current L2 state of a block.
        self.l2_state_of: Callable[[int], CacheState] = lambda addr: CacheState.INVALID
        #: Recovery stall: no new reference is issued before this cycle.
        self.stalled_until = 0
        self.stream_index = 0
        self.references_completed = 0
        self.store_counter = 0
        self.retired_instructions = 0
        # Per-reference constants, hoisted out of the issue loop.  round()
        # (not floor+half-up) deliberately: these predate the link-rounding
        # fix and pin the same values as the original per-call computation.
        self._gap_base = int(round(self.pconfig.mean_instructions_between_refs
                                   / self.pconfig.instructions_per_cycle))
        self._instructions_per_ref = (
            int(round(self.pconfig.mean_instructions_between_refs)) + 1)
        self._jitter = config.workload.latency_jitter_cycles
        self.finished_at: Optional[int] = None
        self._started = False
        self._waiting_for_memory = False
        self._issue_pending = False
        self._on_finished: Optional[Callable[[int], None]] = None
        #: Lazily bound shared latency histogram (same registry lifetime as
        #: the processor, so the binding can never go stale).
        self._mem_latency_hist = None

    # ----------------------------------------------------------------- control
    def start(self, on_finished: Optional[Callable[[int], None]] = None) -> None:
        """Begin executing the reference stream."""
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        self._on_finished = on_finished
        self._schedule_issue(0)

    def _schedule_issue(self, delay: int) -> None:
        """Schedule the next issue attempt, collapsing duplicate wakeups."""
        if self._issue_pending:
            return
        self._issue_pending = True
        self.schedule(delay, self._issue_next)

    @property
    def done(self) -> bool:
        return self.stream_index >= len(self.references) and not self._waiting_for_memory

    @property
    def progress(self) -> float:
        if not self.references:
            return 1.0
        return self.references_completed / len(self.references)

    # ------------------------------------------------------------------- issue
    def _compute_gap_cycles(self) -> int:
        """Cycles of non-memory work before the next reference.

        Jitter draws are prefetched in chunks (`buffered_randint`) — bit
        -identical to the scalar per-call draws because the "gap" stream is
        consumed nowhere else.
        """
        jitter = self._jitter
        extra = (self.rng.buffered_randint("gap", 0, jitter + 1)
                 if jitter > 0 else 0)
        return max(1, self._gap_base + extra)

    def _issue_next(self) -> None:
        self._issue_pending = False
        if self._waiting_for_memory:
            return
        now = self.sim._now
        if now < self.stalled_until:
            self._schedule_issue(self.stalled_until - now)
            return
        if self.stream_index >= len(self.references):
            self._finish_stream(now)
            return

        op, address = self.references[self.stream_index]
        self.stream_index += 1
        self.retired_instructions += self._instructions_per_ref

        value = None
        is_store = op is MemoryOp.STORE
        if is_store:
            self.store_counter += 1
            value = self.node_id * 1_000_000_000 + self.store_counter

        l1 = self.l1
        l2_state = self.l2_state_of(address)
        if l1 is not None and l1.hit(address, op, l2_state):
            l1.tags.hits += 1
            self.count("l1_hits")
            self.references_completed += 1
            if is_store:
                # Write-through of the value to the coherent L2 copy (timing
                # stays at the L1 hit latency; see repro.processor.l1).
                self._write_through(address, value)
            self._schedule_issue(self.pconfig.l1_hit_cycles + self._compute_gap_cycles())
            return

        self._issue_miss(op, address, value)

    def _finish_stream(self, now: int) -> None:
        """The stream is exhausted: record completion exactly once.

        Split out of :meth:`_issue_next` so the compiled processor core
        (``repro._ckernel.ProcessorCore``) can delegate this cold path to
        the one implementation of its semantics.
        """
        if self.finished_at is None:
            self.finished_at = now
            self.count("finished")
            if self._on_finished is not None:
                self._on_finished(self.node_id)

    def _issue_miss(self, op: MemoryOp, address: int,
                    value: Optional[int]) -> None:
        """L1 miss: block on an L2/coherence access (shared cold path)."""
        l1 = self.l1
        if l1 is not None:
            l1.tags.misses += 1
        self.count("l1_misses")
        request = MemoryRequest(self.node_id, op, address, value=value)
        self._waiting_for_memory = True
        assert self.l2_access is not None, "processor not wired to an L2 controller"
        self.l2_access(request, self._memory_complete)

    def _write_through(self, address: int, value: Optional[int]) -> None:
        # The store value must land in the coherent copy; the system builder
        # wires this to the L2 controller's cache array.
        if self._store_value_hook is not None and value is not None:
            self._store_value_hook(address, value)

    _store_value_hook: Optional[Callable[[int, int], None]] = None

    def set_store_value_hook(self, hook: Callable[[int, int], None]) -> None:
        self._store_value_hook = hook

    def _memory_complete(self, request: MemoryRequest) -> None:
        self._waiting_for_memory = False
        self.references_completed += 1
        self.count("memory_references")
        hist = self._mem_latency_hist
        if hist is None:
            hist = self._mem_latency_hist = self.stats.histogram(
                "proc.mem_latency", bucket_width=64)
        hist.record(max(0, request.completed_at - request.issued_at))
        if self.l1 is not None:
            self.l1.fill(request.address)
        self._schedule_issue(self._compute_gap_cycles())

    # --------------------------------------------------------------- SafetyNet
    @property
    def participant_id(self) -> str:
        return self.name

    def checkpoint_snapshot(self) -> ProcessorSnapshot:
        # A reference that is still outstanding at the checkpoint has not
        # retired; the snapshot points at it so that a recovery re-issues it
        # (its in-flight coherence transaction is squashed by the recovery).
        in_flight = 1 if self._waiting_for_memory else 0
        return ProcessorSnapshot(
            stream_index=self.stream_index - in_flight,
            references_completed=self.references_completed,
            store_counter=self.store_counter)

    def checkpoint_restore(self, snapshot: ProcessorSnapshot, *, resume_at: int) -> None:
        self.stream_index = snapshot.stream_index
        self.references_completed = snapshot.references_completed
        self.store_counter = snapshot.store_counter
        self.stalled_until = max(self.stalled_until, resume_at)
        self.count("rollbacks")
        # Whatever reference was in flight has been squashed along with the
        # rest of the memory-system transient state; resume issuing (the
        # rolled-back reference will be re-issued) once the stall ends.
        self._waiting_for_memory = False
        self.finished_at = None
        self._schedule_issue(max(1, resume_at - self.sim.now))

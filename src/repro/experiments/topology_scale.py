"""Topology × scale campaign — does the speculation argument transfer?

The paper evaluates one fixed design point: 16 nodes on a 2D torus.  But
how reachable deadlock is, how often adaptive routing reorders messages and
what a recovery costs all depend on the interconnect geometry and the
system scale.  This experiment sweeps the speculative directory protocol
across {torus, mesh, ring} × {4, 16, 64} nodes × {static, adaptive}
routing and reports, per design point:

* runtime and mean message latency (the geometry's latency signature),
* total recoveries and the interconnect-deadlock subset,
* the adaptive reorder rate (the mis-speculation exposure), and
* simulator events per *simulated* second — a deterministic throughput
  metric (wall-clock would differ between serial and parallel executors,
  and the campaign contract is byte-identical reports either way).

Quick mode drops the 64-node scale; full mode caps its reference streams so
the largest machines stay in benchmark time (EXPERIMENTS.md documents the
preset ↔ reported-number mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.campaign.executor import Executor
from repro.campaign.registry import CampaignContext, register_experiment
from repro.campaign.spec import RunSpec, SweepSpec
from repro.core.events import SpeculationKind
from repro.experiments.common import (
    BENCH_CYCLES_PER_SECOND,
    benchmark_config,
    run_specs,
)
from repro.sim.config import RoutingPolicy, SystemConfig

#: The geometry axis (registry kinds) and the scale axis of the sweep.
TOPOLOGIES: Sequence[str] = ("torus", "mesh", "ring")
SCALES: Sequence[int] = (4, 16, 64)
QUICK_SCALES: Sequence[int] = (4, 16)
ROUTINGS: Sequence[RoutingPolicy] = (RoutingPolicy.STATIC, RoutingPolicy.ADAPTIVE)
#: Per-processor reference cap for the 64-node machines (a full-length
#: stream on 64 processors would dominate the whole campaign's wall-clock).
LARGE_SCALE_REFERENCE_CAP = 200
#: Explicit run horizon.  The systems' default bound (1M cycles) is tuned
#: for the 16-node torus; the ring's linear diameter needs more room, and a
#: truncated point would report geometry-dependent truncation instead of
#: geometry-dependent latency.
MAX_CYCLES = 20_000_000


@dataclass
class TopologyScaleResult:
    """Per-design-point metrics of the topology × scale × routing grid."""

    workload: str
    #: "kind@nodes/routing" -> metric row, in sweep order.
    rows: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table(
            f"Topology x scale sweep ({self.workload}, speculative directory protocol)",
            self.rows,
            columns=["runtime_cycles", "mean_message_latency", "reorder_rate",
                     "deadlock_recoveries", "recoveries", "events_per_sim_second"])

    def to_rows(self) -> List[Dict[str, object]]:
        return [{"point": label, **row} for label, row in self.rows.items()]

    def to_json(self) -> Dict[str, Any]:
        return {"workload": self.workload, "rows": self.to_rows()}


def _point_config(workload: str, kind: str, nodes: int,
                  routing: RoutingPolicy, *, references: int,
                  seed: int) -> SystemConfig:
    refs = min(references, LARGE_SCALE_REFERENCE_CAP) if nodes >= 64 else references
    return benchmark_config(workload, seed=seed, references=refs,
                            routing=routing, num_processors=nodes,
                            topology=kind)


def run(workload: str = "jbb", *,
        topologies: Sequence[str] = TOPOLOGIES,
        scales: Sequence[int] = SCALES,
        routings: Sequence[RoutingPolicy] = ROUTINGS,
        references: int = 400, seed: int = 1,
        executor: Optional[Executor] = None) -> TopologyScaleResult:
    """Run the topology × scale × routing grid as one executor batch."""
    result = TopologyScaleResult(workload=workload)
    points = [(kind, nodes, routing)
              for kind in topologies for nodes in scales for routing in routings]
    sweep = SweepSpec.of("topology-scale-grid", [
        RunSpec(config=_point_config(workload, kind, nodes, routing,
                                     references=references, seed=seed),
                label=f"{kind}@{nodes}/{routing.value}",
                max_cycles=MAX_CYCLES)
        for kind, nodes, routing in points])
    results = run_specs(sweep, executor=executor)
    for (kind, nodes, routing), point in zip(points, results):
        sim_seconds = point.runtime_cycles / BENCH_CYCLES_PER_SECOND
        result.rows[f"{kind}@{nodes}/{routing.value}"] = {
            "topology": kind,
            "nodes": nodes,
            "routing": routing.value,
            "finished": point.finished,
            "runtime_cycles": point.runtime_cycles,
            "mean_message_latency": point.mean_message_latency,
            "reorder_rate": point.reorder_rate_overall,
            "deadlock_recoveries": point.recoveries_of(
                SpeculationKind.INTERCONNECT_DEADLOCK),
            "recoveries": point.recoveries,
            "events_per_sim_second": (point.events_executed / sim_seconds
                                      if sim_seconds > 0 else 0.0),
        }
    return result


@register_experiment("topology_scale",
                     title="Topology x scale sweep (torus/mesh/ring, 4-64 nodes)",
                     order=85)
def campaign_run(ctx: CampaignContext) -> TopologyScaleResult:
    """Quick mode drops the 64-node scale; the grid is otherwise identical."""
    return run(scales=QUICK_SCALES if ctx.quick else SCALES,
               references=ctx.references, executor=ctx.executor)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 2 — endpoint deadlock.

The paper's Figure 2 shows two processors whose incoming queues are full of
requests while each needs to ingest a response that is stuck behind them:
neither can make progress.  This driver reconstructs that scenario on real
:class:`repro.interconnect.buffers.FiniteBuffer` objects, shows that the
wait-for graph contains a cycle, and shows that giving responses their own
buffer (a virtual network) breaks the cycle — which is exactly why the
baseline design needs virtual networks and the speculative design needs a
recovery path instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.campaign.registry import CampaignContext, register_experiment
from repro.interconnect.buffers import FiniteBuffer
from repro.interconnect.deadlock import DeadlockReport, detect_endpoint_deadlock


@dataclass
class Fig2Result:
    """Outcome of the endpoint-deadlock reconstruction."""

    shared_queue_deadlock: DeadlockReport
    virtual_network_deadlock: DeadlockReport

    def format(self) -> str:
        return "\n".join([
            "Figure 2: endpoint deadlock reconstruction",
            f"  shared incoming queues : deadlock={self.shared_queue_deadlock.deadlocked} "
            f"cycle={self.shared_queue_deadlock.cycle}",
            f"  per-class virtual nets : deadlock={self.virtual_network_deadlock.deadlocked}",
        ])

    def to_rows(self) -> List[Dict[str, object]]:
        return [
            {"design": "shared-queues",
             "deadlocked": self.shared_queue_deadlock.deadlocked,
             "cycle": [str(n) for n in self.shared_queue_deadlock.cycle]},
            {"design": "virtual-networks",
             "deadlocked": self.virtual_network_deadlock.deadlocked,
             "cycle": [str(n) for n in self.virtual_network_deadlock.cycle]},
        ]

    def to_json(self) -> Dict[str, Any]:
        return {"rows": self.to_rows()}


def _fill_with_requests(buffer: FiniteBuffer, source: str) -> None:
    while not buffer.is_full:
        buffer.push(f"request-from-{source}-{len(buffer)}")


def run(*, queue_capacity: int = 4) -> Fig2Result:
    """Reconstruct the Figure 2 scenario and analyse both designs."""
    # --- Design 1: one shared incoming queue per processor. ---------------
    p1_in: FiniteBuffer = FiniteBuffer("P1.in", queue_capacity)
    p2_in: FiniteBuffer = FiniteBuffer("P2.in", queue_capacity)
    # Both queues fill with requests; the response each processor needs
    # cannot be enqueued (the queue is full) and each processor refuses to
    # process further requests until it sees its response.
    _fill_with_requests(p1_in, "P2")
    _fill_with_requests(p2_in, "P1")
    response_for_p1_blocked = not p1_in.reserve()
    response_for_p2_blocked = not p2_in.reserve()
    waits: Dict[str, str] = {}
    if response_for_p1_blocked:
        # P1 waits for P2 to drain (so the response can be delivered), and
        # vice versa: the classic cross-coupled wait.
        waits["P1"] = "P2"
    if response_for_p2_blocked:
        waits["P2"] = "P1"
    shared_report = detect_endpoint_deadlock(waits)

    # --- Design 2: responses get their own virtual network. ---------------
    p1_resp: FiniteBuffer = FiniteBuffer("P1.responses", 1)
    p2_resp: FiniteBuffer = FiniteBuffer("P2.responses", 1)
    # Response buffers are reserved for responses only, so delivery always
    # succeeds and neither processor ends up waiting on the other.
    vn_waits: Dict[str, str] = {}
    if not p1_resp.reserve():
        vn_waits["P1"] = "P2"
    if not p2_resp.reserve():
        vn_waits["P2"] = "P1"
    vn_report = detect_endpoint_deadlock(vn_waits)

    return Fig2Result(shared_queue_deadlock=shared_report,
                      virtual_network_deadlock=vn_report)


@register_experiment("fig2", title="Figure 2: endpoint deadlock reconstruction",
                     order=50)
def campaign_run(ctx: CampaignContext) -> Fig2Result:
    """Analytic reconstruction on finite buffers; no simulation runs."""
    return run()


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 4 — Performance vs. mis-speculation (recovery injection) rate.

The paper isolates the cost of recovery by taking a system *without*
speculation and injecting periodic recoveries at 0, 1, 10 and 100 per
second, then plotting runtime normalised to the no-injection run for each
workload.  The headline result is that up to ten recoveries per second cost
essentially nothing.

This driver reproduces that experiment: the FULL-variant directory system on
the virtual-channel network (so no real mis-speculations occur), with a
:class:`repro.core.detection.RecoveryRateInjector` triggering SafetyNet
recoveries at the requested rate.  Rates are interpreted against the
configuration's ``cycles_per_second`` scale (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.metrics import normalized_performance
from repro.analysis.report import format_figure_series
from repro.campaign.executor import Executor
from repro.campaign.registry import CampaignContext, register_experiment
from repro.campaign.spec import RunSpec, SweepSpec
from repro.experiments.common import (
    benchmark_config,
    default_workloads,
    run_specs,
)
from repro.sim.config import ProtocolVariant, RoutingPolicy, SystemConfig

#: The injection rates of Figure 4, in recoveries per (scaled) second.
DEFAULT_RATES: Sequence[float] = (0.0, 1.0, 10.0, 100.0)


@dataclass
class Fig4Result:
    """Normalized performance per workload and injection rate."""

    rates: List[float]
    #: workload -> {rate: normalized performance}.
    normalized: Dict[str, Dict[float, float]] = field(default_factory=dict)
    #: workload -> {rate: observed recoveries}.
    recoveries: Dict[str, Dict[float, int]] = field(default_factory=dict)

    def series(self) -> Dict[str, Dict[str, float]]:
        return {workload: {f"{rate:g}/s": value for rate, value in points.items()}
                for workload, points in self.normalized.items()}

    def format(self) -> str:
        return format_figure_series(
            "Figure 4: performance vs. injected recovery rate", self.series())

    def to_rows(self) -> List[Dict[str, object]]:
        return [{"workload": workload, "rate_per_second": rate,
                 "normalized_performance": value,
                 "recoveries": self.recoveries[workload][rate]}
                for workload, points in self.normalized.items()
                for rate, value in points.items()]

    def to_json(self) -> Dict[str, Any]:
        return {"rates": list(self.rates), "rows": self.to_rows()}


def _injection_config(workload: str, *, seed: int, references: int) -> SystemConfig:
    """Non-speculative baseline system for the injection stress test.

    FULL protocol variant, static routing, virtual channels -- no organic
    mis-speculations.  The checkpoint interval and recovery latency are
    scaled down together with ``cycles_per_second`` so the ratio of
    per-recovery cost to a scaled second stays close to the paper's (see
    DESIGN.md §2); high-bandwidth links keep congestion out of this
    experiment.
    """
    cfg = benchmark_config(
        workload, seed=seed, references=references,
        variant=ProtocolVariant.FULL, routing=RoutingPolicy.STATIC,
        link_bandwidth=3.2e9)
    return cfg.with_updates(checkpoint=replace(
        cfg.checkpoint,
        directory_interval_cycles=2_000,
        recovery_latency_cycles=500))


def run(workloads: Optional[Iterable[str]] = None,
        rates: Sequence[float] = DEFAULT_RATES, *,
        references: int = 400, seed: int = 1,
        executor: Optional[Executor] = None) -> Fig4Result:
    """Run the Figure 4 sweep and return per-workload normalized performance.

    Two executor phases: every workload's no-injection baseline first (the
    injected runs' cycle bound depends on the baseline runtime), then every
    injected design point across all workloads in one batch.
    """
    result = Fig4Result(rates=list(rates))
    names = default_workloads(workloads)

    baselines = run_specs(SweepSpec.of("fig4-baselines", [
        RunSpec(config=_injection_config(w, seed=seed, references=references),
                label="no-injection") for w in names]),
        executor=executor)

    injected_specs: List[RunSpec] = []
    injected_keys: List[tuple] = []
    for workload, baseline in zip(names, baselines):
        for rate in rates:
            if rate == 0.0:
                continue
            injected_specs.append(RunSpec(
                config=_injection_config(workload, seed=seed,
                                         references=references),
                label=f"inject-{rate:g}s",
                recovery_rate_per_second=rate,
                max_cycles=20 * baseline.runtime_cycles))
            injected_keys.append((workload, rate))
    injected_results = dict(zip(injected_keys, run_specs(
        SweepSpec.of("fig4-injected", injected_specs), executor=executor)))

    for workload, baseline in zip(names, baselines):
        per_rate: Dict[float, float] = {}
        per_rate_recoveries: Dict[float, int] = {}
        for rate in rates:
            if rate == 0.0:
                per_rate[rate] = 1.0
                per_rate_recoveries[rate] = baseline.recoveries
                continue
            injected = injected_results[(workload, rate)]
            per_rate[rate] = normalized_performance(injected, baseline)
            per_rate_recoveries[rate] = injected.recoveries
        result.normalized[workload] = per_rate
        result.recoveries[workload] = per_rate_recoveries
    return result


@register_experiment("fig4", title="Figure 4: performance vs. injected recovery rate",
                     order=70)
def campaign_run(ctx: CampaignContext) -> Fig4Result:
    return run(ctx.workloads, references=ctx.references, executor=ctx.executor)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

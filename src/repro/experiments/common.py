"""Shared configuration presets and run helpers for the experiment drivers.

Two presets are provided:

* :func:`paper_config` — the Table 2 target system (16 nodes, 128 KB L1,
  4 MB L2, 100k-cycle checkpoints).  Faithful but slow to simulate in pure
  Python; use it for spot checks.
* :func:`benchmark_config` — a proportionally scaled system (same topology
  and protocol, smaller caches and reference streams, shorter checkpoint
  interval, ``cycles_per_second`` scaled accordingly) that keeps every
  benchmark run in the seconds range.  EXPERIMENTS.md records which preset
  produced each reported number.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.campaign.executor import Executor, SerialExecutor, SpecBatch
from repro.campaign.spec import RunSpec
from repro.sim.config import (
    CacheConfig,
    CheckpointConfig,
    InterconnectConfig,
    ProtocolKind,
    ProtocolVariant,
    RoutingPolicy,
    SpeculationConfig,
    SystemConfig,
    TopologyConfig,
    WorkloadConfig,
)
from repro.system.results import RunResult
from repro.workloads import paper_workload_names, workload_names

#: Default per-processor reference-stream length for benchmark runs.
BENCH_REFERENCES = 500
#: Scaled "second" used by the benchmark preset (see DESIGN.md §2).
BENCH_CYCLES_PER_SECOND = 2.0e6


def paper_config(workload: str = "jbb", *, seed: int = 1,
                 references: int = 20_000) -> SystemConfig:
    """The Table 2 target system (16 nodes, full-size caches)."""
    cfg = SystemConfig.paper_defaults()
    return cfg.with_updates(
        workload=WorkloadConfig(name=workload, references_per_processor=references,
                                seed=seed))


def benchmark_config(workload: str = "jbb", *, seed: int = 1,
                     references: int = BENCH_REFERENCES,
                     variant: ProtocolVariant = ProtocolVariant.SPECULATIVE,
                     routing: RoutingPolicy = RoutingPolicy.ADAPTIVE,
                     link_bandwidth: float = 400e6,
                     protocol: ProtocolKind = ProtocolKind.DIRECTORY,
                     speculative_no_vc: bool = False,
                     switch_buffer_capacity: int = 16,
                     num_processors: int = 16,
                     topology: Optional[str] = None,
                     speculation: Optional[SpeculationConfig] = None) -> SystemConfig:
    """A proportionally scaled system for benchmark runs (16 nodes default).

    ``num_processors`` scales the machine (one switch per processor; 2D
    geometries use the most-square grid, e.g. 64 -> 8x8).  ``topology``
    selects a registered geometry kind; ``None`` keeps the paper's torus via
    the legacy width/height fields, which also keeps pre-topology-layer
    design points hashing identically (see DESIGN.md §6).  ``speculation``
    overrides the speculative-design selection; ``None`` keeps the preset's
    scaled-down forward-progress windows with the default design flags (the
    pre-speculation-layer encoding, so existing hashes are stable).
    """
    width, height = TopologyConfig.preset("torus", num_processors).dims
    return SystemConfig(
        num_processors=num_processors,
        protocol=protocol,
        variant=variant,
        l1=CacheConfig(16 * 1024, 2),
        l2=CacheConfig(256 * 1024, 4),
        memory_bytes=64 * 1024 * 1024,
        memory_latency_cycles=400,
        interconnect=InterconnectConfig(
            mesh_width=width, mesh_height=height,
            topology=(TopologyConfig.preset(topology, num_processors)
                      if topology is not None else None),
            link_bandwidth_bytes_per_sec=link_bandwidth,
            link_latency_cycles=8,
            switch_buffer_capacity=switch_buffer_capacity,
            routing=routing,
            speculative_no_vc=speculative_no_vc,
            nic_injection_limit=4,
        ),
        checkpoint=CheckpointConfig(
            directory_interval_cycles=20_000,
            snooping_interval_requests=600,
            recovery_latency_cycles=2_000,
            register_checkpoint_latency_cycles=100,
        ),
        speculation=(speculation if speculation is not None
                     else SpeculationConfig(
                         adaptive_routing_disable_cycles=50_000,
                         slow_start_cycles=40_000,
                     )),
        workload=WorkloadConfig(name=workload, references_per_processor=references,
                                seed=seed),
        cycles_per_second=BENCH_CYCLES_PER_SECOND,
    )


#: Executor used when a caller does not supply one (plain in-process runs).
_DEFAULT_EXECUTOR = SerialExecutor()


def resolve_executor(executor: Optional[Executor]) -> Executor:
    """The executor to route runs through (the shared serial default)."""
    return executor if executor is not None else _DEFAULT_EXECUTOR


def run_spec(spec: RunSpec, *, executor: Optional[Executor] = None) -> RunResult:
    """Run one design point through the campaign executor layer."""
    return resolve_executor(executor).run(spec)


def run_specs(specs: SpecBatch, *,
              executor: Optional[Executor] = None) -> List[RunResult]:
    """Run a batch of design points (a list or a named :class:`SweepSpec`);
    results come back in spec order."""
    return resolve_executor(executor).map(specs)


def run_config(config: SystemConfig, *, label: Optional[str] = None,
               recovery_rate_per_second: Optional[float] = None,
               max_cycles: Optional[int] = None,
               executor: Optional[Executor] = None) -> RunResult:
    """Build and run one system, optionally with the Figure 4 injector.

    ``recovery_rate_per_second=None`` means no injector; an explicit ``0.0``
    attaches an injector that never fires (the Figure 4 zero-rate control) —
    the two are deliberately distinct.
    """
    spec = RunSpec(config=config, label=label,
                   recovery_rate_per_second=recovery_rate_per_second,
                   max_cycles=max_cycles)
    return run_spec(spec, executor=executor)


def default_workloads(subset: Optional[Iterable[str]] = None) -> List[str]:
    """The workload list the figure experiments iterate over.

    ``None`` means the paper's Table 3 suite in figure order — the figures
    reproduce the paper, so the parameterized scenario families never creep
    into them implicitly.  An explicit ``subset`` may name *any* registered
    workload (validated against the full registry), so campaign axes can
    point figure-style drivers at the new families deliberately.
    """
    if subset is None:
        return paper_workload_names()
    wanted = list(subset)
    registered = workload_names()
    unknown = [w for w in wanted if w not in registered]
    if unknown:
        raise ValueError(f"unknown workloads {unknown}; available {registered}")
    return wanted


def results_by_workload(results: Iterable[RunResult]) -> Dict[str, RunResult]:
    return {result.workload: result for result in results}

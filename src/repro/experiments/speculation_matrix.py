"""Speculation × protocol × topology campaign — Table 1 as an executable sweep.

The paper presents its three applications of speculation-for-simplicity as
rows of a table; this experiment renders the *design space* they span as a
sweep: every subset of {S1 point-to-point ordering, S2 snooping corner
case, S3 no-VC interconnect} crossed with both coherence protocols, the
registered topologies and two system scales.  Each design point builds the
system through the speculation registry (a combination is just a
:class:`~repro.sim.config.SpeculationConfig`), so the sweep doubles as an
integration test of the pluggable layer: arming is config-driven, disabled
designs fall back to their fully specified counterparts, and the whole
grid is deterministic (serial == parallel == cached == sharded,
byte-identical; :func:`sharded_smoke` is the sharded leg).

Per design point it reports runtime, detection/recovery totals and the
per-kind recovery attribution, so the cost of *combining* speculations —
the question the paper's Section 6 raises but does not measure — is read
directly off the grid.

Semantics of a combination:

* the protocol's own speculation (S1 for directory, S2 for snooping)
  toggles ``variant`` between SPECULATIVE and FULL — "off" means the
  conventional, fully designed protocol, exactly as in Table 1;
* S3 toggles the Section 4 no-VC network via
  ``interconnect_no_vc_speculation`` (meaningless for the bus-based
  snooping system, which carries the flag but ignores the interconnect);
* the other protocol's flag is carried in the configuration (it names the
  design point) but arms nothing, because ``applies_to`` filters by
  protocol.

The grid is deliberately the *full* cross product even where axes are
inert — for the bus-based snooping system S1, S3 and the topology change
nothing, so those points re-simulate identical behaviour under distinct
design-point hashes.  That redundancy is the point (every Table 1 cell is
demonstrated, including the "speculation X does not exist here" cells) and
is cheap: the snooping runs carry no network simulation and the whole
96-point grid completes in about a minute of CPU.

Quick mode shrinks the grid to the torus at 4 nodes; the combination axis
is never reduced.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.campaign.executor import Executor
from repro.campaign.registry import CampaignContext, register_experiment
from repro.campaign.spec import RunSpec, SweepSpec
from repro.core.events import SpeculationKind
from repro.experiments.common import benchmark_config, run_specs
from repro.sim.config import (
    ProtocolKind,
    ProtocolVariant,
    SpeculationConfig,
    SystemConfig,
)

#: The three Table 1 designs, in paper order; a combination is a subset.
COMBINATIONS: Sequence[Tuple[bool, bool, bool]] = tuple(
    itertools.product((False, True), repeat=3))
PROTOCOLS: Sequence[ProtocolKind] = (ProtocolKind.DIRECTORY, ProtocolKind.SNOOPING)
TOPOLOGIES: Sequence[str] = ("torus", "mesh", "ring")
SCALES: Sequence[int] = (4, 16)
QUICK_TOPOLOGIES: Sequence[str] = ("torus",)
QUICK_SCALES: Sequence[int] = (4,)
#: Explicit run horizon: a no-VC point that deadlock-recovers repeatedly
#: must terminate in benchmark time instead of inheriting the per-reference
#: bound of a clean run.
MAX_CYCLES = 10_000_000


def combination_label(s1: bool, s2: bool, s3: bool) -> str:
    """``"S1+S3"``-style name of one speculation subset (``"none"`` empty)."""
    parts = [name for name, flag in zip(("S1", "S2", "S3"), (s1, s2, s3)) if flag]
    return "+".join(parts) if parts else "none"


@dataclass
class SpeculationMatrixResult:
    """Per-design-point metrics of the speculation × protocol × topology grid."""

    workload: str
    #: "protocol/combo@topology/nodes" -> metric row, in sweep order.
    rows: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table(
            f"Speculation matrix ({self.workload}): 2^3 combinations x "
            "protocol x topology x scale",
            self.rows,
            columns=["runtime_cycles", "detections", "recoveries",
                     "p2p_recoveries", "corner_case_recoveries",
                     "deadlock_recoveries"])

    def to_rows(self) -> List[Dict[str, object]]:
        return [{"point": label, **row} for label, row in self.rows.items()]

    def to_json(self) -> Dict[str, Any]:
        return {"workload": self.workload, "rows": self.to_rows()}


def _point_config(workload: str, protocol: ProtocolKind,
                  combo: Tuple[bool, bool, bool], topology: str, nodes: int, *,
                  references: int, seed: int) -> SystemConfig:
    s1, s2, s3 = combo
    own_speculation = s1 if protocol == ProtocolKind.DIRECTORY else s2
    speculation = SpeculationConfig(
        adaptive_routing_disable_cycles=50_000,
        slow_start_cycles=40_000,
    ).with_designs(s1=s1, s2=s2, s3=s3)
    return benchmark_config(
        workload, seed=seed, references=references,
        variant=(ProtocolVariant.SPECULATIVE if own_speculation
                 else ProtocolVariant.FULL),
        protocol=protocol,
        num_processors=nodes,
        topology=topology,
        speculation=speculation)


def run(workload: str = "jbb", *,
        combinations: Sequence[Tuple[bool, bool, bool]] = COMBINATIONS,
        protocols: Sequence[ProtocolKind] = PROTOCOLS,
        topologies: Sequence[str] = TOPOLOGIES,
        scales: Sequence[int] = SCALES,
        references: int = 400, seed: int = 1,
        executor: Optional[Executor] = None) -> SpeculationMatrixResult:
    """Run the full speculation grid as one executor batch."""
    result = SpeculationMatrixResult(workload=workload)
    points = [(protocol, combo, topology, nodes)
              for combo in combinations
              for protocol in protocols
              for topology in topologies
              for nodes in scales]
    sweep = SweepSpec.of("speculation-matrix-grid", [
        RunSpec(
            config=_point_config(workload, protocol, combo, topology, nodes,
                                 references=references, seed=seed),
            label=(f"{protocol.value}/{combination_label(*combo)}"
                   f"@{topology}/{nodes}"),
            max_cycles=MAX_CYCLES)
        for protocol, combo, topology, nodes in points])
    results = run_specs(sweep, executor=executor)
    for (protocol, combo, topology, nodes), point in zip(points, results):
        label = f"{protocol.value}/{combination_label(*combo)}@{topology}/{nodes}"
        result.rows[label] = {
            "protocol": protocol.value,
            "combination": combination_label(*combo),
            "s1": combo[0], "s2": combo[1], "s3": combo[2],
            "topology": topology,
            "nodes": nodes,
            "finished": point.finished,
            "runtime_cycles": point.runtime_cycles,
            "detections": point.detections,
            "recoveries": point.recoveries,
            "p2p_recoveries": point.recoveries_of(
                SpeculationKind.DIRECTORY_P2P_ORDER),
            "corner_case_recoveries": point.recoveries_of(
                SpeculationKind.SNOOPING_CORNER_CASE),
            "deadlock_recoveries": point.recoveries_of(
                SpeculationKind.INTERCONNECT_DEADLOCK),
        }
    return result


def sharded_smoke(store_dir: str, *, workers: int = 2,
                  references: int = 250, seed: int = 1,
                  quick: bool = True) -> SpeculationMatrixResult:
    """The grid through a :class:`~repro.campaign.sharding.ShardedExecutor`.

    The sharded leg of this experiment's determinism contract: byte
    -identical to a serial :func:`run` with the same knobs, resumable
    mid-grid from the shared store.  ``quick=False`` sweeps the full
    96-point grid.
    """
    from repro.campaign.sharding import ShardedExecutor

    with ShardedExecutor(workers, store_dir) as executor:
        return run(topologies=QUICK_TOPOLOGIES if quick else TOPOLOGIES,
                   scales=QUICK_SCALES if quick else SCALES,
                   references=references, seed=seed, executor=executor)


@register_experiment("speculation_matrix",
                     title="Speculation matrix (2^3 combinations x protocol "
                           "x topology x scale)",
                     order=86)
def campaign_run(ctx: CampaignContext) -> SpeculationMatrixResult:
    """Quick mode shrinks topology/scale axes, never the combination axis."""
    return run(topologies=QUICK_TOPOLOGIES if ctx.quick else TOPOLOGIES,
               scales=QUICK_SCALES if ctx.quick else SCALES,
               references=ctx.references, executor=ctx.executor)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 3 — switch deadlock.

The paper's Figure 3 shows two switches, each with a full buffer toward the
other, neither able to send its head message.  This driver reconstructs the
scenario on a real (speculative, no-virtual-channel) torus network: it
saturates a two-switch cycle with opposing traffic until the buffers fill,
then runs the ground-truth wait-for-graph detector
(:func:`repro.interconnect.deadlock.detect_switch_deadlock`).  It also shows
the same traffic on the virtual-channel network, where the detector finds no
cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.campaign.registry import CampaignContext, register_experiment
from repro.interconnect.deadlock import DeadlockReport, detect_network_deadlock
from repro.interconnect.message import MessageClass
from repro.interconnect.network import InterconnectNetwork, make_message
from repro.sim.config import InterconnectConfig, RoutingPolicy
from repro.sim.engine import Simulator


@dataclass
class Fig3Result:
    """Deadlock reports for the no-VC and VC networks under opposing traffic."""

    no_vc_report: DeadlockReport
    no_vc_delivered: int
    no_vc_sent: int
    vc_report: DeadlockReport
    vc_delivered: int
    vc_sent: int

    @property
    def no_vc_wedged(self) -> bool:
        """True when the no-VC network stopped delivering messages."""
        return self.no_vc_delivered < self.no_vc_sent

    def format(self) -> str:
        return "\n".join([
            "Figure 3: switch deadlock reconstruction (opposing traffic on a 2-wide torus)",
            f"  no virtual channels : delivered {self.no_vc_delivered}/{self.no_vc_sent}, "
            f"blocked resources={self.no_vc_report.blocked_resources}, "
            f"wait-for cycle={self.no_vc_report.deadlocked}",
            f"  virtual channels    : delivered {self.vc_delivered}/{self.vc_sent}, "
            f"wait-for cycle={self.vc_report.deadlocked}",
        ])

    def to_rows(self) -> List[Dict[str, object]]:
        return [
            {"network": "no-vc", "delivered": self.no_vc_delivered,
             "sent": self.no_vc_sent, "deadlocked": self.no_vc_report.deadlocked,
             "blocked_resources": self.no_vc_report.blocked_resources,
             "wedged": self.no_vc_wedged},
            {"network": "vc", "delivered": self.vc_delivered,
             "sent": self.vc_sent, "deadlocked": self.vc_report.deadlocked,
             "blocked_resources": self.vc_report.blocked_resources,
             "wedged": self.vc_delivered < self.vc_sent},
        ]

    def to_json(self) -> Dict[str, Any]:
        return {"rows": self.to_rows()}


def _run_one(*, speculative_no_vc: bool, messages: int, buffer_capacity: int):
    sim = Simulator()
    config = InterconnectConfig(
        mesh_width=2, mesh_height=1, routing=RoutingPolicy.STATIC,
        link_bandwidth_bytes_per_sec=200e6, link_latency_cycles=8,
        switch_buffer_capacity=buffer_capacity,
        speculative_no_vc=speculative_no_vc,
        nic_injection_limit=2)
    network = InterconnectNetwork(sim, config, frequency_hz=4e9)
    delivered = {"count": 0}

    def receive(message) -> None:
        delivered["count"] += 1
        if message.payload == "reply":
            return
        # Each ingested request generates one reply in the opposite
        # direction — the message dependency that makes Figure 3's cycle
        # possible when requests and replies share buffers.
        reply_dst = 1 - message.dst
        reply = make_message(message.dst, reply_dst, MessageClass.DATA,
                             address=message.address, config=config)
        reply.payload = "reply"
        network.send(reply)

    network.attach(0, receive)
    network.attach(1, receive)

    for i in range(messages):
        network.send(make_message(0, 1, MessageClass.DATA, address=64 * i,
                                  config=config))
        network.send(make_message(1, 0, MessageClass.DATA, address=64 * i + 32,
                                  config=config))
    # Run for a bounded horizon; a deadlocked network stops making progress.
    sim.run(until=300_000, max_events=200_000)
    report = detect_network_deadlock(network)
    return report, network.messages_delivered, network.messages_sent


def run(*, messages: int = 40, buffer_capacity: int = 2) -> Fig3Result:
    """Reconstruct Figure 3 with and without virtual channels."""
    no_vc_report, no_vc_delivered, no_vc_sent = _run_one(
        speculative_no_vc=True, messages=messages, buffer_capacity=buffer_capacity)
    vc_report, vc_delivered, vc_sent = _run_one(
        speculative_no_vc=False, messages=messages, buffer_capacity=buffer_capacity)
    return Fig3Result(no_vc_report=no_vc_report, no_vc_delivered=no_vc_delivered,
                      no_vc_sent=no_vc_sent, vc_report=vc_report,
                      vc_delivered=vc_delivered, vc_sent=vc_sent)


@register_experiment("fig3", title="Figure 3: switch deadlock reconstruction",
                     order=60)
def campaign_run(ctx: CampaignContext) -> Fig3Result:
    """Raw-network scenario on a two-switch torus; fixed size in all modes."""
    return run()


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

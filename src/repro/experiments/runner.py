"""Run every experiment and print (or save) a combined report.

``python -m repro.experiments.runner`` regenerates every table and figure of
the paper's evaluation in one go, using the benchmark preset.  Pass
``--quick`` to use a reduced workload subset for a fast smoke run, and
``--output PATH`` to also write the report to a file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    buffer_sweep,
    dir_reordering,
    fig1_reordering_demo,
    fig2_endpoint_deadlock,
    fig3_switch_deadlock,
    fig4_misspeculation_rate,
    fig5_adaptive_routing,
    snooping_cornercase,
    table1_framework,
    table2_parameters,
    table3_workloads,
)


def run_all(*, quick: bool = False) -> str:
    """Run every experiment driver and return the combined report text."""
    workloads = ["jbb", "oltp"] if quick else None
    references = 250 if quick else 400
    sections: List[str] = []

    sections.append(table1_framework.run().format())
    sections.append(table2_parameters.run().format())
    sections.append(table3_workloads.run().format())
    sections.append(fig1_reordering_demo.run().format())
    sections.append(fig2_endpoint_deadlock.run().format())
    sections.append(fig3_switch_deadlock.run().format())
    sections.append(fig4_misspeculation_rate.run(
        workloads, references=references).format())
    sections.append(fig5_adaptive_routing.run(
        workloads, references=references).format())
    sections.append(dir_reordering.run(
        workloads, references=references).format())
    sections.append(snooping_cornercase.run(
        workloads, references=references).format())
    sections.append(buffer_sweep.run(
        workloads if workloads else ["oltp"], references=max(200, references // 2)).format())

    return ("\n\n" + "=" * 78 + "\n\n").join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use a reduced workload subset")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)
    report = run_all(quick=args.quick)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Run the experiment campaign and print (or save) a combined report.

``python -m repro.experiments.runner`` regenerates every table and figure of
the paper's evaluation in one go, using the benchmark preset.  The runner is
registry-driven: it discovers every ``@register_experiment`` driver in
:mod:`repro.experiments` instead of maintaining an import list, so new
experiments appear here (and in ``--list``/``--only``/``--json``)
automatically.

Flags:

* ``--quick`` — reduced workload subset for a fast smoke run.
* ``--parallel N`` — fan independent design points out to ``N`` worker
  processes; the report is byte-identical to a serial run.
* ``--batched`` — group each batch by shared precomputed artifacts and run
  it in-process with warm memos; byte-identical to a serial run.
* ``--multiplex`` — run the whole grid as one scheduled pass in a single
  warm process: specs grouped by shared artifacts, system *construction*
  round-robin interleaved with run *execution* so compiled cores and memos
  stay warm; byte-identical to a serial run.  Mutually exclusive with
  ``--parallel``/``--batched``/``--workers``.
* ``--workers N`` — sharded execution: publish a campaign manifest to the
  shared store (``--cache DIR``, required) and fan design points out to
  ``N`` crash-safe worker processes that claim specs via lease files;
  byte-identical to a serial run, resumable after any crash.
* ``--resume`` — with ``--workers``: finish an interrupted sharded
  campaign.  Only missing design points are simulated (completed ones are
  cache hits); fails fast when the store has no manifest for the campaign.
* ``--status`` — print per-campaign progress of the store at ``--cache
  DIR`` (completed/leased/stale counts, worker throughput) and exit;
  refreshes each campaign's crash-safe partial report as it goes.
* ``--only NAME`` (repeatable) — run a subset of experiments.
* ``--list`` — show registered experiments and exit.
* ``--json PATH`` — also write a schema-stable machine-readable results file.
* ``--cache DIR`` — reuse on-disk cached results keyed by design-point hash;
  a hit/miss/stored summary is printed (and included in ``--json``).
* ``--kernel-tier TIER`` — run on the ``pure`` or ``compiled`` kernel tier
  (default ``auto``: compiled when the extension is built, pure otherwise).
  The tiers are byte-identical, so this only affects wall-clock.
* ``--output PATH`` — also write the text report to a file.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro import kernel
from repro.campaign import (
    CampaignContext,
    Executor,
    all_experiments,
    discover,
    experiment_names,
    make_executor,
)
from repro.analysis.report import write_json_report

#: Separator between report sections (one per experiment).
SECTION_SEPARATOR = "\n\n" + "=" * 78 + "\n\n"

#: Schema tag of the ``--json`` report.
REPORT_SCHEMA = "repro.campaign.report/v1"


def build_context(*, quick: bool = False,
                  executor: Optional[Executor] = None) -> CampaignContext:
    """The standard campaign context for full and quick runs."""
    return CampaignContext(
        executor=executor if executor is not None else make_executor(),
        workloads=["jbb", "oltp"] if quick else None,
        references=250 if quick else 400,
        quick=quick,
    )


def run_campaign(*, quick: bool = False, executor: Optional[Executor] = None,
                 only: Optional[List[str]] = None) -> Dict[str, object]:
    """Run registered experiments and return ``{name: result}`` in report order."""
    discover()
    known = experiment_names()
    if only:
        unknown = [name for name in only if name not in known]
        if unknown:
            raise ValueError(f"unknown experiments {unknown}; available {known}")
    context = build_context(quick=quick, executor=executor)
    results: Dict[str, object] = {}
    for entry in all_experiments():
        if only and entry.name not in only:
            continue
        results[entry.name] = entry.runner(context)
    return results


def report_text(results: Dict[str, object]) -> str:
    """The combined human-readable report."""
    return SECTION_SEPARATOR.join(result.format() for result in results.values())


def report_json(results: Dict[str, object], *, quick: bool = False,
                cache_stats: Optional[Dict[str, int]] = None,
                kernel_meta: Optional[Dict[str, str]] = None,
                memo_stats: Optional[Dict[str, int]] = None) -> Dict[str, object]:
    """The machine-readable campaign report (stable schema).

    ``cache_stats`` is only present when the campaign ran with ``--cache``;
    cache-less reports keep their exact historical byte form.
    ``kernel_meta`` records which kernel tier executed the campaign (and the
    compiler that built the extension, on the compiled tier).
    ``memo_stats`` records the artifact-memo traffic (stream/topology
    hits+misses) of the campaign process.  All three are *execution-side*
    blocks: they describe how the campaign ran, not what it computed, so
    ``tools/compare_reports.py`` strips them before byte comparison and
    report identity is unchanged across tiers and executors.
    """
    report: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "quick": quick,
        "experiments": {name: result.to_json() for name, result in results.items()},
    }
    if cache_stats is not None:
        report["cache"] = dict(cache_stats)
    if kernel_meta is not None:
        report["kernel"] = dict(kernel_meta)
    if memo_stats is not None:
        report["memos"] = dict(memo_stats)
    return report


def run_all(*, quick: bool = False, executor: Optional[Executor] = None,
            only: Optional[List[str]] = None) -> str:
    """Run the campaign and return the combined report text."""
    return report_text(run_campaign(quick=quick, executor=executor, only=only))


def _list_experiments() -> str:
    discover()
    lines = ["Registered experiments (report order):"]
    for entry in all_experiments():
        lines.append(f"  {entry.name:<20s} {entry.title}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use a reduced workload subset")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="run independent design points on N worker processes")
    parser.add_argument("--batched", action="store_true",
                        help="group design points by shared precomputed "
                             "artifacts and run in-process with warm memos")
    parser.add_argument("--multiplex", action="store_true",
                        help="run the whole grid as one scheduled pass in a "
                             "single warm process (artifact-grouped, "
                             "construction interleaved with execution); "
                             "byte-identical to a serial run")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="sharded execution: N crash-safe worker "
                             "processes claiming design points from the "
                             "shared store (requires --cache DIR)")
    parser.add_argument("--resume", action="store_true",
                        help="finish an interrupted sharded campaign "
                             "(requires --workers; only missing design "
                             "points are simulated)")
    parser.add_argument("--status", action="store_true",
                        help="print campaign progress of the store at "
                             "--cache DIR and exit")
    parser.add_argument("--only", action="append", default=None, metavar="EXPERIMENT",
                        help="run only this experiment (repeatable); see --list")
    parser.add_argument("--list", action="store_true", dest="list_experiments",
                        help="list registered experiments and exit")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write a machine-readable results file")
    parser.add_argument("--cache", type=str, default=None, metavar="DIR",
                        help="cache results on disk keyed by design-point hash")
    parser.add_argument("--kernel-tier", choices=sorted(kernel.TIERS),
                        default=None, metavar="TIER",
                        help="kernel tier to run on: auto (default), pure, or "
                             "compiled; reports are byte-identical either way")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the text report to this file")
    args = parser.parse_args(argv)

    if args.list_experiments:
        print(_list_experiments())
        return 0

    if args.status:
        if not args.cache:
            parser.error("--status needs the store: pass --cache DIR")
        from repro.campaign.sharding import campaign_status

        print(campaign_status(args.cache))
        return 0

    if args.multiplex and (args.parallel or args.batched or args.workers):
        parser.error("--multiplex is its own execution strategy; drop "
                     "--parallel/--batched/--workers")
    if args.workers:
        if not args.cache:
            parser.error("--workers needs a shared store: pass --cache DIR")
        if args.parallel or args.batched:
            parser.error("--workers is its own execution strategy; drop "
                         "--parallel/--batched")
    elif args.resume:
        parser.error("--resume only applies to sharded execution; pass "
                     "--workers N")

    if args.kernel_tier is not None:
        kernel.set_kernel_tier(args.kernel_tier)
        # Worker processes of --parallel runs re-resolve from the
        # environment, so mirror the choice there too.
        os.environ[kernel.ENV_VAR] = args.kernel_tier
        try:
            kernel.active_tier()
        except kernel.KernelTierError as exc:
            parser.error(str(exc))

    # Fail on bad arguments *before* running the (possibly hour-long)
    # campaign, not after; a crash mid-campaign keeps its traceback.
    for path in (args.output, args.json):
        if path:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                parser.error(f"output directory does not exist: {parent}")
    if args.only:
        discover()
        known = experiment_names()
        unknown = [name for name in args.only if name not in known]
        if unknown:
            parser.error(f"unknown experiments {unknown}; available {known}")

    with make_executor(args.parallel, cache_dir=args.cache,
                       batched=args.batched, workers=args.workers,
                       resume=args.resume,
                       multiplexed=args.multiplex) as executor:
        results = run_campaign(quick=args.quick, executor=executor,
                               only=args.only)
        cache_stats = (executor.cache.stats()
                       if executor.cache is not None else None)
    report = report_text(results)
    print(report)
    if cache_stats is not None:
        print(f"\ncache: {cache_stats['hits']} hits, "
              f"{cache_stats['misses']} misses, "
              f"{cache_stats['stored']} stored")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.json:
        kernel_meta = {"tier": kernel.active_tier()}
        compiler = kernel.compiler_tag()
        if kernel_meta["tier"] == "compiled" and compiler is not None:
            kernel_meta["compiler"] = compiler
        from repro.campaign import memo_stats as campaign_memo_stats

        write_json_report(args.json,
                          report_json(results, quick=args.quick,
                                      cache_stats=cache_stats,
                                      kernel_meta=kernel_meta,
                                      memo_stats=campaign_memo_stats()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

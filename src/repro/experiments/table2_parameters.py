"""Table 2 — target system parameters.

Rendered from the live configuration object so that the table always
reflects what the simulator actually uses (the benchmark preset is shown
alongside for transparency about scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.campaign.registry import CampaignContext, register_experiment
from repro.experiments.common import benchmark_config
from repro.sim.config import SystemConfig


@dataclass
class Table2Result:
    """Paper-scale and benchmark-scale parameter tables."""

    paper_rows: Dict[str, str]
    benchmark_rows: Dict[str, str]

    def format(self) -> str:
        lines = ["Table 2: target system parameters (paper scale)"]
        for key, value in self.paper_rows.items():
            lines.append(f"  {key:<34s} {value}")
        lines.append("")
        lines.append("Benchmark preset (proportionally scaled, see DESIGN.md)")
        for key, value in self.benchmark_rows.items():
            lines.append(f"  {key:<34s} {value}")
        return "\n".join(lines)

    def to_rows(self) -> List[Dict[str, object]]:
        return ([{"scale": "paper", "parameter": key, "value": value}
                 for key, value in self.paper_rows.items()]
                + [{"scale": "benchmark", "parameter": key, "value": value}
                   for key, value in self.benchmark_rows.items()])

    def to_json(self) -> Dict[str, Any]:
        return {"paper": dict(self.paper_rows),
                "benchmark": dict(self.benchmark_rows)}


def run() -> Table2Result:
    """Render both parameter tables."""
    return Table2Result(
        paper_rows=SystemConfig.paper_defaults().table2_rows(),
        benchmark_rows=benchmark_config().table2_rows())


@register_experiment("table2", title="Table 2: target system parameters", order=20)
def campaign_run(ctx: CampaignContext) -> Table2Result:
    """Rendered from the live configuration objects; no simulation runs."""
    return run()


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

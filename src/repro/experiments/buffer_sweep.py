"""Section 5.3 (text) — simplified interconnection network buffer sweep.

The paper removes virtual-channel/virtual-network flow control, shares all
buffering, and compares performance against the same protocol on a network
with worst-case buffering, sweeping the per-port buffer size.  It reports
steady performance for buffers of size 16 and above, a sharp dropoff at 8,
and deadlocks appearing only at the smallest size.

This driver runs the speculative no-VC network across a buffer-size sweep
(the "worst-case buffering" baseline is the same no-VC network with a very
large buffer) plus the conventional virtual-channel network for reference,
and reports normalized performance and deadlock-recovery counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import normalized_performance
from repro.analysis.report import format_table, rows_from_table
from repro.campaign.executor import Executor
from repro.campaign.registry import CampaignContext, register_experiment
from repro.campaign.spec import RunSpec, SweepSpec
from repro.core.events import SpeculationKind
from repro.experiments.common import (
    benchmark_config,
    default_workloads,
    run_specs,
)
from repro.sim.config import ProtocolVariant, RoutingPolicy

#: Buffer sizes swept (messages per shared input buffer).
DEFAULT_BUFFER_SIZES: Sequence[int] = (4, 8, 16, 32)
#: "Worst-case" buffering baseline: effectively unbounded shared buffers.
WORST_CASE_BUFFER = 4096


@dataclass
class BufferSweepResult:
    """Normalized performance and deadlock counts per buffer size."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table(
            "No-virtual-channel network buffer sweep (baseline: worst-case buffering)",
            self.rows,
            columns=["buffer size", "normalized perf", "deadlock recoveries",
                     "finished"])

    def to_rows(self) -> List[Dict[str, object]]:
        return rows_from_table(self.rows, label_field="point")

    def to_json(self) -> Dict[str, Any]:
        return {"rows": self.to_rows()}


def run(workloads: Optional[Iterable[str]] = None,
        buffer_sizes: Sequence[int] = DEFAULT_BUFFER_SIZES, *,
        references: int = 300, seed: int = 3,
        include_vc_reference: bool = True,
        executor: Optional[Executor] = None) -> BufferSweepResult:
    """Run the buffer sweep for each workload.

    Two executor phases: every workload's worst-case-buffering baseline
    first (the swept runs' cycle bound depends on the baseline runtime),
    then the VC reference plus every swept buffer size in one batch.
    """
    result = BufferSweepResult()
    names = default_workloads(workloads)

    def no_vc_config(workload: str, capacity: int):
        return benchmark_config(
            workload, seed=seed, references=references,
            variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.STATIC,
            speculative_no_vc=True, switch_buffer_capacity=capacity)

    baselines = run_specs(SweepSpec.of("buffer-sweep-baselines", [
        RunSpec(config=no_vc_config(w, WORST_CASE_BUFFER),
                label="worst-case-buffering") for w in names]),
        executor=executor)

    sweep_specs: List[RunSpec] = []
    sweep_keys: List[Tuple[str, object]] = []
    for workload, baseline in zip(names, baselines):
        if include_vc_reference:
            sweep_specs.append(RunSpec(config=benchmark_config(
                workload, seed=seed, references=references,
                variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.STATIC,
                speculative_no_vc=False), label="virtual-channels"))
            sweep_keys.append((workload, "vc"))
        for size in buffer_sizes:
            sweep_specs.append(RunSpec(
                config=no_vc_config(workload, size), label=f"no-vc-buf{size}",
                max_cycles=12 * baseline.runtime_cycles))
            sweep_keys.append((workload, size))
    swept_results = dict(zip(sweep_keys, run_specs(
        SweepSpec.of("buffer-sweep-points", sweep_specs), executor=executor)))

    for workload, baseline in zip(names, baselines):
        if include_vc_reference:
            vc = swept_results[(workload, "vc")]
            result.rows[f"{workload} vc-network"] = {
                "buffer size": "VC (2/vnet)",
                "normalized perf": normalized_performance(vc, baseline),
                "deadlock recoveries": vc.recoveries_of(
                    SpeculationKind.INTERCONNECT_DEADLOCK),
                "finished": vc.finished,
            }
        for size in buffer_sizes:
            swept = swept_results[(workload, size)]
            result.rows[f"{workload} buf={size}"] = {
                "buffer size": size,
                "normalized perf": normalized_performance(swept, baseline),
                "deadlock recoveries": swept.recoveries_of(
                    SpeculationKind.INTERCONNECT_DEADLOCK),
                "finished": swept.finished,
            }
    return result


@register_experiment("buffer_sweep",
                     title="No-VC network buffer sweep (Section 5.3)", order=110)
def campaign_run(ctx: CampaignContext) -> BufferSweepResult:
    # Full campaigns sweep oltp only (the paper's representative workload);
    # quick mode reuses the reduced subset the other experiments run.
    workloads = ctx.workloads if ctx.workloads else ["oltp"]
    return run(workloads, references=max(200, ctx.references // 2),
               executor=ctx.executor)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

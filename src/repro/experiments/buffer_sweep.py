"""Section 5.3 (text) — simplified interconnection network buffer sweep.

The paper removes virtual-channel/virtual-network flow control, shares all
buffering, and compares performance against the same protocol on a network
with worst-case buffering, sweeping the per-port buffer size.  It reports
steady performance for buffers of size 16 and above, a sharp dropoff at 8,
and deadlocks appearing only at the smallest size.

This driver runs the speculative no-VC network across a buffer-size sweep
(the "worst-case buffering" baseline is the same no-VC network with a very
large buffer) plus the conventional virtual-channel network for reference,
and reports normalized performance and deadlock-recovery counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro.analysis.metrics import normalized_performance
from repro.analysis.report import format_table
from repro.core.events import SpeculationKind
from repro.experiments.common import benchmark_config, default_workloads, run_config
from repro.sim.config import ProtocolVariant, RoutingPolicy

#: Buffer sizes swept (messages per shared input buffer).
DEFAULT_BUFFER_SIZES: Sequence[int] = (4, 8, 16, 32)
#: "Worst-case" buffering baseline: effectively unbounded shared buffers.
WORST_CASE_BUFFER = 4096


@dataclass
class BufferSweepResult:
    """Normalized performance and deadlock counts per buffer size."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table(
            "No-virtual-channel network buffer sweep (baseline: worst-case buffering)",
            self.rows,
            columns=["buffer size", "normalized perf", "deadlock recoveries",
                     "finished"])


def run(workloads: Optional[Iterable[str]] = None,
        buffer_sizes: Sequence[int] = DEFAULT_BUFFER_SIZES, *,
        references: int = 300, seed: int = 3,
        include_vc_reference: bool = True) -> BufferSweepResult:
    """Run the buffer sweep for each workload."""
    result = BufferSweepResult()
    for workload in default_workloads(workloads):
        baseline = run_config(benchmark_config(
            workload, seed=seed, references=references,
            variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.STATIC,
            speculative_no_vc=True, switch_buffer_capacity=WORST_CASE_BUFFER),
            label="worst-case-buffering")
        if include_vc_reference:
            vc = run_config(benchmark_config(
                workload, seed=seed, references=references,
                variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.STATIC,
                speculative_no_vc=False), label="virtual-channels")
            result.rows[f"{workload} vc-network"] = {
                "buffer size": "VC (2/vnet)",
                "normalized perf": normalized_performance(vc, baseline),
                "deadlock recoveries": vc.recoveries_of(
                    SpeculationKind.INTERCONNECT_DEADLOCK),
                "finished": vc.finished,
            }
        for size in buffer_sizes:
            swept = run_config(benchmark_config(
                workload, seed=seed, references=references,
                variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.STATIC,
                speculative_no_vc=True, switch_buffer_capacity=size),
                label=f"no-vc-buf{size}",
                max_cycles=12 * baseline.runtime_cycles)
            result.rows[f"{workload} buf={size}"] = {
                "buffer size": size,
                "normalized perf": normalized_performance(swept, baseline),
                "deadlock recoveries": swept.recoveries_of(
                    SpeculationKind.INTERCONNECT_DEADLOCK),
                "finished": swept.finished,
            }
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 1 — adaptive routing violating point-to-point order.

The paper's Figure 1 is an illustrative diagram: a source sends M1 then M2
to the same destination; adaptive routing sends them along different paths
and M2 arrives first.  This driver makes the scenario measurable: it drives
one (source, destination) pair with back-to-back message pairs while
cross-traffic congests the dimension-order path, and reports how many pairs
arrive out of order under static vs. adaptive routing.  Static routing must
never reorder; adaptive routing reorders a small fraction of pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.campaign.registry import CampaignContext, register_experiment
from repro.interconnect.message import MessageClass
from repro.interconnect.network import InterconnectNetwork, make_message
from repro.sim.config import InterconnectConfig, RoutingPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng


@dataclass
class Fig1Result:
    """Reordering counts per routing policy."""

    pairs_sent: int
    reordered_pairs: Dict[str, int]
    reorder_rate: Dict[str, float]

    def format(self) -> str:
        lines = ["Figure 1: point-to-point order violations (message pairs src 0 -> dst 15)"]
        for policy, count in self.reordered_pairs.items():
            lines.append(f"  {policy:>8s}: {count}/{self.pairs_sent} pairs reordered "
                         f"({100.0 * self.reorder_rate[policy]:.2f}%)")
        return "\n".join(lines)

    def to_rows(self) -> List[Dict[str, object]]:
        return [{"routing": policy, "pairs_sent": self.pairs_sent,
                 "reordered_pairs": count,
                 "reorder_rate": self.reorder_rate[policy]}
                for policy, count in self.reordered_pairs.items()]

    def to_json(self) -> Dict[str, Any]:
        return {"pairs_sent": self.pairs_sent, "rows": self.to_rows()}


def _run_one(policy: RoutingPolicy, *, pairs: int, seed: int) -> int:
    sim = Simulator()
    config = InterconnectConfig(
        mesh_width=4, mesh_height=4, routing=policy,
        link_bandwidth_bytes_per_sec=400e6, link_latency_cycles=8,
        switch_buffer_capacity=16)
    network = InterconnectNetwork(sim, config, frequency_hz=4e9,
                           rng=DeterministicRng(seed))
    arrivals: Dict[int, int] = {}

    def receive(message) -> None:
        arrivals[message.msg_id] = sim.now

    for node in range(16):
        network.attach(node, receive)

    rng = DeterministicRng(seed)
    src, dst = 0, 15
    pair_ids = []
    clock = 0
    for i in range(pairs):
        # Cross traffic that congests the dimension-order path.
        for _ in range(3):
            a = rng.randint("cross-src", 0, 16)
            b = rng.randint("cross-dst", 0, 16)
            if a == b:
                continue
            sim.schedule_at(clock, lambda a=a, b=b: network.send(
                make_message(a, b, MessageClass.DATA, address=0, config=config)))
        m1 = make_message(src, dst, MessageClass.FORWARDED_REQUEST_READ_WRITE,
                          address=64 * i, config=config)
        m2 = make_message(src, dst, MessageClass.WRITEBACK_ACK,
                          address=64 * i, config=config)
        pair_ids.append((m1.msg_id, m2.msg_id))
        sim.schedule_at(clock, lambda m=m1: network.send(m))
        sim.schedule_at(clock + 1, lambda m=m2: network.send(m))
        clock += rng.randint("gap", 200, 600)
    sim.run_until_idle()

    reordered = 0
    for first_id, second_id in pair_ids:
        if arrivals.get(second_id, 1 << 60) < arrivals.get(first_id, 1 << 60):
            reordered += 1
    return reordered


def run(*, pairs: int = 200, seed: int = 7) -> Fig1Result:
    """Measure pair reordering under static and adaptive routing."""
    counts = {}
    for policy in (RoutingPolicy.STATIC, RoutingPolicy.ADAPTIVE):
        counts[policy.value] = _run_one(policy, pairs=pairs, seed=seed)
    return Fig1Result(
        pairs_sent=pairs,
        reordered_pairs=counts,
        reorder_rate={name: count / pairs for name, count in counts.items()})


@register_experiment("fig1", title="Figure 1: adaptive routing reorders message pairs",
                     order=40)
def campaign_run(ctx: CampaignContext) -> Fig1Result:
    """Raw-network scenario; runs the same pair count in quick and full mode."""
    return run()


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Section 5.3 (text) — reordering and recovery rates of the speculative
directory protocol.

The paper reports, for the speculatively simplified directory protocol on
the adaptively routed interconnect:

* mean link utilisations of 13–35 % with static routing at 400 MB/s,
* 0.1–0.2 % of messages reordered on the ForwardedRequest virtual network,
  up to 0.8 % on the other virtual networks,
* only a handful of recoveries across all simulations.

This driver measures the same quantities across a link-bandwidth sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.report import format_table, rows_from_table
from repro.campaign.executor import Executor
from repro.campaign.registry import CampaignContext, register_experiment
from repro.campaign.spec import RunSpec, SweepSpec
from repro.experiments.common import (
    benchmark_config,
    default_workloads,
    run_specs,
)
from repro.sim.config import ProtocolVariant, RoutingPolicy

#: Link bandwidths of the paper's sweep (400 MB/s .. 3.2 GB/s).
DEFAULT_BANDWIDTHS: Sequence[float] = (400e6, 1.6e9, 3.2e9)


@dataclass
class ReorderingResult:
    """Measured reorder/recovery statistics per workload and bandwidth."""

    #: (workload, bandwidth) -> row of measurements.
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table(
            "Directory protocol reordering/recovery rates (speculative, adaptive routing)",
            self.rows,
            columns=["link MB/s", "reorder % (fwd-req VN)", "reorder % (other VNs)",
                     "recoveries", "mean link util %"])

    def to_rows(self) -> List[Dict[str, object]]:
        return rows_from_table(self.rows, label_field="point")

    def to_json(self) -> Dict[str, Any]:
        return {"rows": self.to_rows()}


def run(workloads: Optional[Iterable[str]] = None,
        bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS, *,
        references: int = 400, seed: int = 1,
        executor: Optional[Executor] = None) -> ReorderingResult:
    """Measure reorder rates, recoveries and link utilisation.

    Every (workload, bandwidth) design point is independent, so the whole
    grid goes to the executor as one batch.
    """
    result = ReorderingResult()
    names = default_workloads(workloads)
    points = [(workload, bandwidth) for workload in names
              for bandwidth in bandwidths]
    sweep = SweepSpec.of("dir-reordering-grid", [
        RunSpec(config=benchmark_config(
            workload, seed=seed, references=references,
            variant=ProtocolVariant.SPECULATIVE,
            routing=RoutingPolicy.ADAPTIVE,
            link_bandwidth=bandwidth), label="speculative-adaptive")
        for workload, bandwidth in points])
    for (workload, bandwidth), run_result in zip(points,
                                                 run_specs(sweep, executor=executor)):
        fwd = run_result.reorder_rate_by_vnet.get("FORWARDED_REQUEST", 0.0)
        others = [rate for name, rate in run_result.reorder_rate_by_vnet.items()
                  if name != "FORWARDED_REQUEST"]
        other_max = max(others) if others else 0.0
        key = f"{workload} @ {bandwidth / 1e6:.0f} MB/s"
        result.rows[key] = {
            "link MB/s": bandwidth / 1e6,
            "reorder % (fwd-req VN)": 100.0 * fwd,
            "reorder % (other VNs)": 100.0 * other_max,
            "recoveries": run_result.recoveries,
            "mean link util %": 100.0 * run_result.mean_link_utilization,
        }
    return result


@register_experiment("dir_reordering",
                     title="Directory protocol reordering/recovery rates",
                     order=90)
def campaign_run(ctx: CampaignContext) -> ReorderingResult:
    return run(ctx.workloads, references=ctx.references, executor=ctx.executor)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 5 — Static vs. adaptive routing (400 MB/s links).

The paper compares the speculatively simplified directory protocol running
over statically routed and adaptively routed versions of the same 400 MB/s
torus, normalising to static routing.  Adaptive routing wins because it
routes around instantaneous congestion, and the rare reorderings it causes
almost never trigger recoveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.analysis.metrics import normalized_performance
from repro.analysis.report import format_figure_series
from repro.experiments.common import benchmark_config, default_workloads, run_config
from repro.sim.config import ProtocolVariant, RoutingPolicy


@dataclass
class Fig5Result:
    """Normalized performance of static vs adaptive routing per workload."""

    #: workload -> {"static": 1.0, "adaptive": x}
    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: workload -> recoveries observed under adaptive routing.
    adaptive_recoveries: Dict[str, int] = field(default_factory=dict)
    #: workload -> overall reorder rate under adaptive routing.
    adaptive_reorder_rate: Dict[str, float] = field(default_factory=dict)
    #: workload -> mean link utilisation under static routing.
    static_link_utilization: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        return format_figure_series(
            "Figure 5: static vs adaptive routing (400 MB/s links)",
            self.normalized)


def run(workloads: Optional[Iterable[str]] = None, *,
        references: int = 400, seed: int = 1,
        link_bandwidth: float = 400e6) -> Fig5Result:
    """Run the Figure 5 comparison."""
    result = Fig5Result()
    for workload in default_workloads(workloads):
        static = run_config(benchmark_config(
            workload, seed=seed, references=references,
            variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.STATIC,
            link_bandwidth=link_bandwidth), label="static")
        adaptive = run_config(benchmark_config(
            workload, seed=seed, references=references,
            variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.ADAPTIVE,
            link_bandwidth=link_bandwidth), label="adaptive")
        result.normalized[workload] = {
            "static": 1.0,
            "adaptive": normalized_performance(adaptive, static),
        }
        result.adaptive_recoveries[workload] = adaptive.recoveries
        result.adaptive_reorder_rate[workload] = adaptive.reorder_rate_overall
        result.static_link_utilization[workload] = static.mean_link_utilization
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

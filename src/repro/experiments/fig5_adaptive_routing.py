"""Figure 5 — Static vs. adaptive routing (400 MB/s links).

The paper compares the speculatively simplified directory protocol running
over statically routed and adaptively routed versions of the same 400 MB/s
torus, normalising to static routing.  Adaptive routing wins because it
routes around instantaneous congestion, and the rare reorderings it causes
almost never trigger recoveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.metrics import normalized_performance
from repro.analysis.report import format_figure_series
from repro.campaign.executor import Executor
from repro.campaign.registry import CampaignContext, register_experiment
from repro.campaign.spec import RunSpec, SweepSpec
from repro.experiments.common import (
    benchmark_config,
    default_workloads,
    run_specs,
)
from repro.sim.config import ProtocolVariant, RoutingPolicy


@dataclass
class Fig5Result:
    """Normalized performance of static vs adaptive routing per workload."""

    #: workload -> {"static": 1.0, "adaptive": x}
    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: workload -> recoveries observed under adaptive routing.
    adaptive_recoveries: Dict[str, int] = field(default_factory=dict)
    #: workload -> overall reorder rate under adaptive routing.
    adaptive_reorder_rate: Dict[str, float] = field(default_factory=dict)
    #: workload -> mean link utilisation under static routing.
    static_link_utilization: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        return format_figure_series(
            "Figure 5: static vs adaptive routing (400 MB/s links)",
            self.normalized)

    def to_rows(self) -> List[Dict[str, object]]:
        return [{"workload": workload,
                 "normalized_adaptive": points["adaptive"],
                 "adaptive_recoveries": self.adaptive_recoveries[workload],
                 "adaptive_reorder_rate": self.adaptive_reorder_rate[workload],
                 "static_link_utilization": self.static_link_utilization[workload]}
                for workload, points in self.normalized.items()]

    def to_json(self) -> Dict[str, Any]:
        return {"rows": self.to_rows()}


def run(workloads: Optional[Iterable[str]] = None, *,
        references: int = 400, seed: int = 1,
        link_bandwidth: float = 400e6,
        executor: Optional[Executor] = None) -> Fig5Result:
    """Run the Figure 5 comparison (one batch: static and adaptive per workload)."""
    result = Fig5Result()
    names = default_workloads(workloads)

    def spec_for(workload: str, routing: RoutingPolicy) -> RunSpec:
        return RunSpec(config=benchmark_config(
            workload, seed=seed, references=references,
            variant=ProtocolVariant.SPECULATIVE, routing=routing,
            link_bandwidth=link_bandwidth), label=routing.value)

    sweep = SweepSpec.of("fig5-routing-grid", [
        spec_for(w, routing) for w in names
        for routing in (RoutingPolicy.STATIC, RoutingPolicy.ADAPTIVE)])
    results = run_specs(sweep, executor=executor)
    for index, workload in enumerate(names):
        static, adaptive = results[2 * index], results[2 * index + 1]
        result.normalized[workload] = {
            "static": 1.0,
            "adaptive": normalized_performance(adaptive, static),
        }
        result.adaptive_recoveries[workload] = adaptive.recoveries
        result.adaptive_reorder_rate[workload] = adaptive.reorder_rate_overall
        result.static_link_utilization[workload] = static.mean_link_utilization
    return result


@register_experiment("fig5", title="Figure 5: static vs adaptive routing", order=80)
def campaign_run(ctx: CampaignContext) -> Fig5Result:
    return run(ctx.workloads, references=ctx.references, executor=ctx.executor)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

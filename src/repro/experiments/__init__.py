"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every driver exposes a ``run(...)`` function returning a result dataclass
with ``format()`` (text report section), ``to_rows()`` (flat row dicts) and
``to_json()`` (machine-readable payload), plus a ``main()`` usable from the
command line.  Each module also registers a campaign entry point with
:func:`repro.campaign.register_experiment`; the runner discovers drivers
through that registry rather than an import list, so adding an experiment
is just adding a module.  The benchmark harness under ``benchmarks/`` calls
these same drivers so that the numbers printed by
``pytest benchmarks/ --benchmark-only`` and by the standalone scripts are
identical.

Sweep-style drivers accept an ``executor=`` argument (see
:mod:`repro.campaign.executor`) and batch their independent design points
through it, which is what makes ``runner --parallel N`` effective.
"""

"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every driver exposes a ``run(...)`` function returning a plain dataclass or
dict of rows, plus a ``main()`` usable from the command line.  The benchmark
harness under ``benchmarks/`` calls these same drivers so that the numbers
printed by ``pytest benchmarks/ --benchmark-only`` and by the standalone
scripts are identical.
"""

"""Table 3 — workloads.

The paper's Table 3 describes the Wisconsin commercial workloads plus
barnes-hut.  This driver renders the registered workload catalogue — the
synthetic analogues of the paper suite *and* the parameterized scenario
families — straight from the workload registry
(:func:`repro.workloads.table3_rows`): the registered description next to
the measured characteristics of the stream each family actually generates
(store fraction, footprint, shared fraction), so the substitution
documented in DESIGN.md §3/§8 is verifiable from a run.  Every family is
measured across *all* nodes (``mix_statistics`` on the ``generate_all``
mapping), so heterogeneous families — where different nodes run different
mixes — are characterised by their union, not by whichever single node
happened to be sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.report import format_table, rows_from_table
from repro.campaign.registry import CampaignContext, register_experiment
from repro.workloads import make_workload, table3_rows
from repro.workloads.base import mix_statistics


@dataclass
class Table3Result:
    """Per-workload descriptive and measured rows."""

    rows: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table("Table 3: workloads (registered families)", self.rows,
                            columns=["description", "store fraction",
                                     "unique blocks", "shared fraction",
                                     "footprint blocks"])

    def to_rows(self) -> List[Dict[str, object]]:
        return rows_from_table(self.rows, label_field="workload")

    def to_json(self) -> Dict[str, Any]:
        return {"rows": self.to_rows()}


def run(*, num_processors: int = 16, references: int = 2_000,
        seed: int = 1) -> Table3Result:
    """Generate every registered workload and measure its streams."""
    result = Table3Result()
    for name, description in table3_rows().items():
        workload = make_workload(name, num_processors=num_processors, seed=seed)
        stats = mix_statistics(workload.generate_all(references))
        summary = workload.summary()
        result.rows[name] = {
            "description": description,
            "store fraction": round(stats["stores"], 3),
            "unique blocks": int(stats["unique_blocks"]),
            "shared fraction": summary.get("shared_fraction", "-"),
            "footprint blocks": workload.footprint_blocks,
        }
    return result


@register_experiment("table3", title="Table 3: workload characterisation", order=30)
def campaign_run(ctx: CampaignContext) -> Table3Result:
    """Measures every registered family (cheap stream generation, no system)."""
    return run()


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Section 5.3 (text) — speculatively simplified snooping protocol.

The paper ran every workload on the speculative snooping protocol and
observed that *no* recoveries were needed: the corner case never occurred,
so the speculative protocol's performance mirrors the fully designed one.

This driver runs the SPECULATIVE and FULL snooping variants on the same
reference streams and reports runtimes, corner-case detections and
recoveries.  The expected shape: zero (or vanishingly few) corner-case
recoveries and performance parity between the two variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.analysis.metrics import normalized_performance
from repro.analysis.report import format_table
from repro.core.events import SpeculationKind
from repro.experiments.common import benchmark_config, default_workloads, run_config
from repro.sim.config import ProtocolKind, ProtocolVariant


@dataclass
class SnoopingResult:
    """Per-workload comparison of the speculative and full snooping systems."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table(
            "Speculatively simplified snooping protocol (corner case as mis-speculation)",
            self.rows,
            columns=["corner-case recoveries", "all recoveries",
                     "normalized perf vs full", "bus requests"])


def run(workloads: Optional[Iterable[str]] = None, *,
        references: int = 400, seed: int = 1) -> SnoopingResult:
    """Compare the speculative snooping protocol against the full variant."""
    result = SnoopingResult()
    for workload in default_workloads(workloads):
        full = run_config(benchmark_config(
            workload, seed=seed, references=references,
            protocol=ProtocolKind.SNOOPING,
            variant=ProtocolVariant.FULL), label="snooping-full")
        spec = run_config(benchmark_config(
            workload, seed=seed, references=references,
            protocol=ProtocolKind.SNOOPING,
            variant=ProtocolVariant.SPECULATIVE), label="snooping-speculative")
        result.rows[workload] = {
            "corner-case recoveries": spec.recoveries_of(
                SpeculationKind.SNOOPING_CORNER_CASE),
            "all recoveries": spec.recoveries,
            "normalized perf vs full": normalized_performance(spec, full),
            "bus requests": spec.messages_delivered,
        }
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

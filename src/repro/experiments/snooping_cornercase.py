"""Section 5.3 (text) — speculatively simplified snooping protocol.

The paper ran every workload on the speculative snooping protocol and
observed that *no* recoveries were needed: the corner case never occurred,
so the speculative protocol's performance mirrors the fully designed one.

This driver runs the SPECULATIVE and FULL snooping variants on the same
reference streams and reports runtimes, corner-case detections and
recoveries.  The expected shape: zero (or vanishingly few) corner-case
recoveries and performance parity between the two variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.metrics import normalized_performance
from repro.analysis.report import format_table, rows_from_table
from repro.campaign.executor import Executor
from repro.campaign.registry import CampaignContext, register_experiment
from repro.campaign.spec import RunSpec, SweepSpec
from repro.core.events import SpeculationKind
from repro.experiments.common import (
    benchmark_config,
    default_workloads,
    run_specs,
)
from repro.sim.config import ProtocolKind, ProtocolVariant


@dataclass
class SnoopingResult:
    """Per-workload comparison of the speculative and full snooping systems."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table(
            "Speculatively simplified snooping protocol (corner case as mis-speculation)",
            self.rows,
            columns=["corner-case recoveries", "all recoveries",
                     "normalized perf vs full", "bus requests"])

    def to_rows(self) -> List[Dict[str, object]]:
        return rows_from_table(self.rows, label_field="workload")

    def to_json(self) -> Dict[str, Any]:
        return {"rows": self.to_rows()}


def run(workloads: Optional[Iterable[str]] = None, *,
        references: int = 400, seed: int = 1,
        executor: Optional[Executor] = None) -> SnoopingResult:
    """Compare the speculative snooping protocol against the full variant."""
    result = SnoopingResult()
    names = default_workloads(workloads)

    def spec_for(workload: str, variant: ProtocolVariant) -> RunSpec:
        return RunSpec(config=benchmark_config(
            workload, seed=seed, references=references,
            protocol=ProtocolKind.SNOOPING, variant=variant),
            label=f"snooping-{variant.value}")

    sweep = SweepSpec.of("snooping-variants", [
        spec_for(w, variant) for w in names
        for variant in (ProtocolVariant.FULL, ProtocolVariant.SPECULATIVE)])
    results = run_specs(sweep, executor=executor)
    for index, workload in enumerate(names):
        full, spec = results[2 * index], results[2 * index + 1]
        result.rows[workload] = {
            "corner-case recoveries": spec.recoveries_of(
                SpeculationKind.SNOOPING_CORNER_CASE),
            "all recoveries": spec.recoveries,
            "normalized perf vs full": normalized_performance(spec, full),
            "bus requests": spec.messages_delivered,
        }
    return result


@register_experiment("snooping_cornercase",
                     title="Speculative snooping protocol corner case", order=100)
def campaign_run(ctx: CampaignContext) -> SnoopingResult:
    return run(ctx.workloads, references=ctx.references, executor=ctx.executor)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Workload × protocol × speculation campaign — the scenario grid.

The paper's evaluation is driven entirely by what each processor's
reference stream looks like (Table 3, Figures 4–5); with the workload layer
registry-driven, the *scenario space* becomes a sweepable axis exactly like
topologies and speculation designs before it.  This experiment crosses
every registered workload family — the five paper profiles plus the
parameterized scenario families (``hotspot``, ``producer_consumer``,
``phased``, ``scaled``, ``mixed``), each at its registered defaults — with
both coherence protocols and the S3 no-VC interconnect speculation on/off,
at the paper's 16-node scale.

Per design point it reports runtime, L2 misses, detection/recovery totals
and the deadlock-recovery attribution, so the question the registry opens —
*which stream shapes make which speculations expensive?* — is read directly
off the grid.  Every workload axis value is just a
:class:`~repro.sim.config.WorkloadConfig` name (``params`` stays ``None``,
the registered defaults), so the sweep doubles as an integration test of
the registry: name resolution is config-driven and the whole grid is
deterministic (serial == parallel == cached == sharded, byte-identical;
:func:`sharded_smoke` is the sharded leg).

S3 on the bus-based snooping system carries the flag but changes nothing
(there is no network to strip virtual channels from); those points
re-simulate identical behaviour under distinct design-point hashes, which —
as in the speculation matrix — is the point: every cell of the cross
product is demonstrated, inert axes included.

Quick mode shrinks the workload axis to one family per kind — one paper
profile (``jbb``) and one parameterized family (``hotspot``) — and never
the protocol or speculation axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.campaign.executor import Executor
from repro.campaign.registry import CampaignContext, register_experiment
from repro.campaign.spec import RunSpec, SweepSpec
from repro.core.events import SpeculationKind
from repro.experiments.common import benchmark_config, run_specs
from repro.sim.config import ProtocolKind, SpeculationConfig, SystemConfig
from repro.workloads import workload_names

PROTOCOLS: Sequence[ProtocolKind] = (ProtocolKind.DIRECTORY,
                                     ProtocolKind.SNOOPING)
S3_MODES: Sequence[bool] = (False, True)
#: The paper's machine scale; the ``scaled`` family derives its working
#: sets from this number (and grows them on bigger machines).
NUM_PROCESSORS = 16
#: One family per kind for quick mode: a paper profile and a parameterized
#: scenario family.
QUICK_WORKLOADS: Sequence[str] = ("jbb", "hotspot")
#: Explicit run horizon, as in the speculation matrix: a no-VC point that
#: deadlock-recovers repeatedly must terminate in benchmark time.
MAX_CYCLES = 10_000_000


@dataclass
class WorkloadMatrixResult:
    """Per-design-point metrics of the workload × protocol × S3 grid."""

    workloads: List[str] = field(default_factory=list)
    #: "workload/protocol@vc|no-vc" -> metric row, in sweep order.
    rows: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table(
            f"Workload matrix: {len(self.workloads)} families x protocol "
            "x {vc, no-vc}",
            self.rows,
            columns=["runtime_cycles", "l2_misses", "detections",
                     "recoveries", "deadlock_recoveries"])

    def to_rows(self) -> List[Dict[str, object]]:
        return [{"point": label, **row} for label, row in self.rows.items()]

    def to_json(self) -> Dict[str, Any]:
        return {"workloads": list(self.workloads), "rows": self.to_rows()}


def _point_label(workload: str, protocol: ProtocolKind, s3: bool) -> str:
    return f"{workload}/{protocol.value}@{'no-vc' if s3 else 'vc'}"


def _point_config(workload: str, protocol: ProtocolKind, s3: bool, *,
                  references: int, seed: int) -> SystemConfig:
    speculation = SpeculationConfig(
        adaptive_routing_disable_cycles=50_000,
        slow_start_cycles=40_000,
    ).with_designs(s3=s3)
    return benchmark_config(
        workload, seed=seed, references=references, protocol=protocol,
        num_processors=NUM_PROCESSORS, speculation=speculation)


def run(workloads: Optional[Sequence[str]] = None, *,
        protocols: Sequence[ProtocolKind] = PROTOCOLS,
        s3_modes: Sequence[bool] = S3_MODES,
        references: int = 400, seed: int = 1,
        executor: Optional[Executor] = None) -> WorkloadMatrixResult:
    """Run the full workload grid as one executor batch."""
    if workloads is None:
        workloads = workload_names()
    result = WorkloadMatrixResult(workloads=list(workloads))
    points: List[Tuple[str, ProtocolKind, bool]] = [
        (workload, protocol, s3)
        for workload in workloads
        for protocol in protocols
        for s3 in s3_modes]
    sweep = SweepSpec.of("workload-matrix-grid", [
        RunSpec(
            config=_point_config(workload, protocol, s3,
                                 references=references, seed=seed),
            label=_point_label(workload, protocol, s3),
            max_cycles=MAX_CYCLES)
        for workload, protocol, s3 in points])
    results = run_specs(sweep, executor=executor)
    for (workload, protocol, s3), point in zip(points, results):
        result.rows[_point_label(workload, protocol, s3)] = {
            "workload": workload,
            "protocol": protocol.value,
            "s3": s3,
            "finished": point.finished,
            "runtime_cycles": point.runtime_cycles,
            "l2_misses": point.l2_misses,
            "detections": point.detections,
            "recoveries": point.recoveries,
            "deadlock_recoveries": point.recoveries_of(
                SpeculationKind.INTERCONNECT_DEADLOCK),
        }
    return result


def sharded_smoke(store_dir: str, *, workers: int = 2,
                  references: int = 250, seed: int = 1,
                  quick: bool = True) -> WorkloadMatrixResult:
    """The grid through a :class:`~repro.campaign.sharding.ShardedExecutor`.

    The sharded leg of the determinism contract for this experiment: the
    returned report must be byte-identical to a plain serial :func:`run`
    with the same knobs (CI gates on exactly that, and the executor is
    resumable mid-grid — killing a worker and re-invoking finishes only the
    missing design points).  ``quick=False`` runs the full 40-point grid.
    """
    from repro.campaign.sharding import ShardedExecutor

    with ShardedExecutor(workers, store_dir) as executor:
        return run(QUICK_WORKLOADS if quick else None,
                   references=references, seed=seed, executor=executor)


@register_experiment("workload_matrix",
                     title="Workload matrix (registered families x protocol "
                           "x {vc, no-vc})",
                     order=87)
def campaign_run(ctx: CampaignContext) -> WorkloadMatrixResult:
    """Quick mode keeps one family per kind, never fewer protocol/S3 axes."""
    return run(QUICK_WORKLOADS if ctx.quick else None,
               references=ctx.references, executor=ctx.executor)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

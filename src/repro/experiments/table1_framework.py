"""Table 1 — framework characterisation of the three speculative designs.

Unlike the performance experiments, Table 1 is structural: it characterises
the three applications of speculation-for-simplicity along the four
framework features.  This driver renders the table from the live
:mod:`repro.core.catalog` and additionally verifies that every mechanism is
actually wired into a buildable system (its detection path exists and its
forward-progress policy is registered), so the table is a checked artefact,
not just prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.analysis.report import format_table, rows_from_table
from repro.campaign.registry import CampaignContext, register_experiment
from repro.core.catalog import TABLE1_MECHANISMS, table1_rows
from repro.core.events import SpeculationKind
from repro.core.forward_progress import NoOpPolicy
from repro.sim.config import ProtocolKind, ProtocolVariant, RoutingPolicy, SystemConfig
from repro.system import build_system


@dataclass
class Table1Result:
    """The rendered table plus the wiring verification outcome."""

    rows: Dict[str, Dict[str, str]]
    wiring_ok: Dict[str, bool]

    def format(self) -> str:
        table = format_table("Table 1: speculation-for-simplicity characterisation",
                             self.rows)
        checks = "\n".join(f"  wired[{kind}] = {ok}"
                           for kind, ok in self.wiring_ok.items())
        return table + "\n\nImplementation wiring checks:\n" + checks

    def to_rows(self) -> List[Dict[str, object]]:
        return rows_from_table(self.rows, label_field="feature")

    def to_json(self) -> Dict[str, Any]:
        return {"rows": self.to_rows(), "wiring_ok": dict(self.wiring_ok)}


def _policy_registered(system, kind: SpeculationKind) -> bool:
    policy = system.framework.policy_for(kind)
    return not isinstance(policy, NoOpPolicy)


def run() -> Table1Result:
    """Render Table 1 and verify each mechanism is wired into a real system."""
    wiring: Dict[str, bool] = {}

    directory = build_system(SystemConfig.small(num_processors=4, references=0))
    wiring[SpeculationKind.DIRECTORY_P2P_ORDER.value] = _policy_registered(
        directory, SpeculationKind.DIRECTORY_P2P_ORDER)
    wiring[SpeculationKind.INTERCONNECT_DEADLOCK.value] = _policy_registered(
        directory, SpeculationKind.INTERCONNECT_DEADLOCK)

    snooping_cfg = SystemConfig.small(num_processors=4, references=0).with_updates(
        protocol=ProtocolKind.SNOOPING)
    snooping = build_system(snooping_cfg)
    wiring[SpeculationKind.SNOOPING_CORNER_CASE.value] = _policy_registered(
        snooping, SpeculationKind.SNOOPING_CORNER_CASE)

    return Table1Result(rows=table1_rows(), wiring_ok=wiring)


@register_experiment("table1", title="Table 1: speculation framework characterisation",
                     order=10)
def campaign_run(ctx: CampaignContext) -> Table1Result:
    """Structural table — independent of workloads and the executor."""
    return run()


def mechanisms() -> List[str]:
    """Titles of the three mechanisms (column order of the paper's table)."""
    return [m.title for m in TABLE1_MECHANISMS]


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()

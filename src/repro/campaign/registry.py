"""The experiment registry.

Every driver module under :mod:`repro.experiments` registers itself with
:func:`register_experiment`; the runner then discovers the full campaign by
importing the package's modules (:func:`discover`) instead of maintaining a
hard-coded import list.  Adding a new table/figure to the evaluation is now:
write a driver module, decorate its campaign entry point, done — the runner,
the ``--only``/``--list`` flags and the JSON report pick it up automatically.

A registered entry point receives a :class:`CampaignContext` — the shared
executor plus the workload-subset/reference-count knobs — and returns a
result object exposing ``format()`` (the human report section),
``to_rows()`` (flat row dicts) and ``to_json()`` (a JSON-safe payload).
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.executor import Executor, SerialExecutor

#: Modules in the experiments package that are infrastructure, not drivers.
_NON_DRIVER_MODULES = frozenset({"common", "runner"})


@dataclass
class CampaignContext:
    """Everything a registered experiment needs to run.

    ``workloads=None`` means "every workload" (each driver resolves it via
    :func:`repro.experiments.common.default_workloads`).
    """

    executor: Executor = field(default_factory=SerialExecutor)
    workloads: Optional[List[str]] = None
    references: int = 400
    quick: bool = False


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment: identity, report order and entry point."""

    name: str
    title: str
    order: int
    runner: Callable[[CampaignContext], Any]


_REGISTRY: Dict[str, ExperimentEntry] = {}


def register_experiment(name: str, *, title: str, order: int):
    """Class/function decorator registering a campaign entry point.

    ``name`` is the CLI handle (``--only NAME``); ``title`` the
    human-readable description shown by ``--list``; ``order`` fixes the
    report section order (the paper's table/figure order).
    """
    def decorate(runner: Callable[[CampaignContext], Any]):
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        _REGISTRY[name] = ExperimentEntry(name=name, title=title, order=order,
                                          runner=runner)
        return runner
    return decorate


def discover(package: str = "repro.experiments") -> None:
    """Import every driver module in ``package`` so decorators run.

    Idempotent: already-imported modules are returned from ``sys.modules``
    and re-registration never happens.
    """
    pkg = importlib.import_module(package)
    for info in pkgutil.iter_modules(pkg.__path__):
        if info.name in _NON_DRIVER_MODULES or info.name.startswith("_"):
            continue
        importlib.import_module(f"{package}.{info.name}")


def all_experiments() -> List[ExperimentEntry]:
    """Every registered experiment, in report order."""
    return sorted(_REGISTRY.values(), key=lambda entry: (entry.order, entry.name))


def experiment_names() -> List[str]:
    return [entry.name for entry in all_experiments()]


def get_experiment(name: str) -> ExperimentEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(experiment_names()) or "<none discovered>"
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None

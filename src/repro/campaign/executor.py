"""Pluggable execution of :class:`RunSpec` batches.

Every simulated run in the repository funnels through :func:`execute_spec`
— directly via :class:`SerialExecutor`, or in worker processes via
:class:`ParallelExecutor`.  The evaluation grid is embarrassingly parallel
(each design point is an independent deterministic simulation), so the
parallel executor is a plain ``ProcessPoolExecutor`` fan-out; results come
back in *spec order*, which keeps reports byte-identical to serial runs.

Every executor accepts an optional :class:`ResultCache`: completed runs are
stored on disk as :meth:`RunResult.to_json` documents keyed by the spec's
content hash, so re-running a campaign only simulates design points whose
configuration actually changed.  :class:`BatchExecutor` additionally groups
a batch by the precomputed artifacts its specs share (workload streams,
topology tables; see :mod:`repro.campaign.precompute`) and runs each group
consecutively in one process with warm memos.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro.coherence.common as _coherence_common
import repro.coherence.snooping.bus as _snooping_bus
import repro.interconnect.message as _message
from repro.campaign.precompute import artifact_keys
from repro.campaign.spec import RunSpec, SweepSpec
from repro.system import build_system
from repro.system.results import RunResult


def reset_global_ids() -> None:
    """Reset the process-global id counters (transactions, bus requests,
    network messages).

    Ids are only required to be unique within one run, but the counters are
    module-global, so without a reset a run's recovery records would embed
    ids that depend on how many runs happened earlier in the same process.
    Resetting before every run makes each design point's result independent
    of execution order — the property that lets serial, parallel, cached
    and batched execution produce byte-identical results.
    """
    _coherence_common._TRANSACTION_IDS = itertools.count()
    _snooping_bus._REQUEST_IDS = itertools.count()
    _message._MESSAGE_IDS = itertools.count()


#: Process-local tallies of simulation work done by :func:`execute_spec`.
#: Purely observational (benchmark harnesses read them); they are never
#: serialized into results, so reports stay byte-identical with or without
#: consumers.  Parallel workers accumulate their own copies.
PERF_COUNTERS: Dict[str, int] = {"runs": 0, "events_executed": 0}


def reset_perf_counters() -> None:
    """Zero :data:`PERF_COUNTERS` (benchmark harnesses measure deltas)."""
    for key in PERF_COUNTERS:
        PERF_COUNTERS[key] = 0


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one design point from scratch and return its result.

    This is the single build-and-run path: it must stay importable at module
    level (the parallel executor ships it to worker processes by reference).
    Note the ``is not None`` check — an explicit ``0.0`` rate attaches an
    injector that never fires, which is a different system from one with no
    injector at all.
    """
    reset_global_ids()
    system = build_system(spec.config, label=spec.label)
    if spec.recovery_rate_per_second is not None:
        system.attach_recovery_injector(spec.recovery_rate_per_second)
    result = system.run(max_cycles=spec.max_cycles)
    PERF_COUNTERS["runs"] += 1
    PERF_COUNTERS["events_executed"] += system.sim.events_executed
    return result


class ResultCache:
    """On-disk result store keyed by :meth:`RunSpec.content_hash`.

    One JSON file per design point.  Writes are atomic (tempfile + rename)
    so a cache shared between concurrently running campaigns can never hold
    a torn entry; corrupt or unreadable entries are treated as misses.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stored = 0

    def path_for(self, spec: RunSpec) -> str:
        return os.path.join(self.root, spec.content_hash() + ".json")

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = RunResult.from_json(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(result.to_json(), handle, sort_keys=True)
            os.replace(tmp_path, self.path_for(spec))
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self.stored += 1

    def stats(self) -> Dict[str, int]:
        """Tracked hit/miss/store tallies of this process's cache use.

        Unlike ``len(cache)`` this never touches the filesystem, so it is
        the summary the runner reports after a campaign (the directory may
        also hold entries written by other campaigns).
        """
        return {"hits": self.hits, "misses": self.misses,
                "stored": self.stored}

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".json"))


#: A batch of design points: a plain sequence or a named SweepSpec.
SpecBatch = Union[Sequence[RunSpec], SweepSpec]


class Executor:
    """Base class: maps batches of specs to results, consulting the cache."""

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        self.cache = cache

    # -------------------------------------------------------------- interface
    def run(self, spec: RunSpec) -> RunResult:
        """Run a single design point."""
        return self.map([spec])[0]

    def map(self, specs: SpecBatch) -> List[RunResult]:
        """Run every spec in the batch and return results in spec order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (no-op for serial execution)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- caching
    def _lookup(self, specs: SpecBatch) -> Dict[int, RunResult]:
        if self.cache is None:
            return {}
        found: Dict[int, RunResult] = {}
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec)
            if cached is not None:
                found[index] = cached
        return found

    def _store(self, spec: RunSpec, result: RunResult) -> None:
        if self.cache is not None:
            self.cache.put(spec, result)


class SerialExecutor(Executor):
    """Runs every design point in-process, one after another."""

    def map(self, specs: SpecBatch) -> List[RunResult]:
        cached = self._lookup(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        for index, spec in enumerate(specs):
            if index in cached:
                results[index] = cached[index]
                continue
            result = execute_spec(spec)
            self._store(spec, result)
            results[index] = result
        return results  # type: ignore[return-value]


class BatchExecutor(SerialExecutor):
    """In-process executor that orders a batch for artifact reuse.

    Each design point depends on two expensive precomputed artifacts — its
    generated workload streams and its topology routing tables (DESIGN.md
    §9).  The memos under :func:`execute_spec` already share them
    process-globally; this executor additionally groups the batch by
    :func:`~repro.campaign.precompute.artifact_keys` and runs each group
    consecutively, so a sweep that interleaves families still executes with
    every group's artifacts warm and the memos' LRU never thrashes between
    neighbouring runs.

    Execution order is first-appearance order of the key pair (stable for a
    given batch); results come back in *spec order* and — because every run
    resets the global id counters — are byte-identical to serial, parallel
    and cached execution.
    """

    def map(self, specs: SpecBatch) -> List[RunResult]:
        cached = self._lookup(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        for index, result in cached.items():
            results[index] = result
        groups: Dict[Tuple, List[Tuple[int, RunSpec]]] = {}
        for index, spec in enumerate(specs):
            if index in cached:
                continue
            groups.setdefault(artifact_keys(spec.config), []).append(
                (index, spec))
        for members in groups.values():
            for index, spec in members:
                result = execute_spec(spec)
                self._store(spec, result)
                results[index] = result
        return results  # type: ignore[return-value]


class ParallelExecutor(Executor):
    """Fans design points out to a ``ProcessPoolExecutor``.

    Worker processes are spawned lazily on the first :meth:`map` call and
    reused across batches; use the executor as a context manager (or call
    :meth:`close`) to shut them down.  Because :func:`execute_spec` resets
    the global id counters, a worker's results do not depend on which specs
    it happened to run before — serial and parallel execution are
    byte-identical.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None) -> None:
        super().__init__(cache=cache)
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def map(self, specs: SpecBatch) -> List[RunResult]:
        cached = self._lookup(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        pending = [(index, spec) for index, spec in enumerate(specs)
                   if index not in cached]
        for index, result in cached.items():
            results[index] = result
        if pending:
            pool = self._ensure_pool()
            futures = [(index, spec, pool.submit(execute_spec, spec))
                       for index, spec in pending]
            # Collect every future before surfacing a failure: a design point
            # that raises (bad config, unknown topology, broken workload)
            # must not discard — or worse, corrupt — the results of specs
            # that completed fine.  Completed results are cached as usual,
            # then the *original* exception (which ProcessPoolExecutor
            # pickles back from the worker) is re-raised.
            first_error: Optional[Exception] = None
            for index, spec, future in futures:
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 - KeyboardInterrupt
                    # and friends must still propagate immediately; worker
                    # failures (incl. BrokenProcessPool) are Exceptions.
                    if first_error is None:
                        first_error = exc
                    continue
                self._store(spec, result)
                results[index] = result
            if first_error is not None:
                raise first_error
        return results  # type: ignore[return-value]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(parallel: int = 0,
                  cache_dir: Optional[str] = None,
                  batched: bool = False) -> Executor:
    """Build the executor the runner CLI asks for.

    ``parallel <= 1`` yields a :class:`SerialExecutor` — or a
    :class:`BatchExecutor` when ``batched`` is set; anything larger a
    :class:`ParallelExecutor` with that many workers (each worker process
    keeps its own memos warm across the specs it runs, so ``batched`` adds
    nothing there).
    """
    cache = ResultCache(cache_dir) if cache_dir else None
    if parallel and parallel > 1:
        return ParallelExecutor(max_workers=parallel, cache=cache)
    if batched:
        return BatchExecutor(cache=cache)
    return SerialExecutor(cache=cache)

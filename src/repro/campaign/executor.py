"""Pluggable execution of :class:`RunSpec` batches.

Every simulated run in the repository funnels through :func:`execute_spec`
— directly via :class:`SerialExecutor`, or in worker processes via
:class:`ParallelExecutor`.  The evaluation grid is embarrassingly parallel
(each design point is an independent deterministic simulation), so the
parallel executor is a plain ``ProcessPoolExecutor`` fan-out; results come
back in *spec order*, which keeps reports byte-identical to serial runs.

Every executor accepts an optional :class:`ResultCache`: completed runs are
stored on disk as :meth:`RunResult.to_json` documents keyed by the spec's
content hash, so re-running a campaign only simulates design points whose
configuration actually changed.  :class:`BatchExecutor` additionally groups
a batch by the precomputed artifacts its specs share (workload streams,
topology tables; see :mod:`repro.campaign.precompute`) and runs each group
consecutively in one process with warm memos.
"""

from __future__ import annotations

import gc
import itertools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import repro.coherence.common as _coherence_common
import repro.coherence.snooping.bus as _snooping_bus
import repro.interconnect.message as _message
from repro.campaign.manifest import atomic_write_json
from repro.campaign.precompute import artifact_keys
from repro.coherence.cache import disable_set_pool, enable_set_pool
from repro.campaign.spec import RunSpec, SweepSpec
from repro.system import build_system
from repro.system.results import RunResult, RESULT_SCHEMA


def reset_global_ids() -> None:
    """Reset the process-global id counters (transactions, bus requests,
    network messages).

    Ids are only required to be unique within one run, but the counters are
    module-global, so without a reset a run's recovery records would embed
    ids that depend on how many runs happened earlier in the same process.
    Resetting before every run makes each design point's result independent
    of execution order — the property that lets serial, parallel, cached
    and batched execution produce byte-identical results.
    """
    _coherence_common._TRANSACTION_IDS = itertools.count()
    _snooping_bus._REQUEST_IDS = itertools.count()
    _message._MESSAGE_IDS = itertools.count()


#: Process-local tallies of simulation work done by :func:`execute_spec`.
#: Purely observational (benchmark harnesses read them); they are never
#: serialized into results, so reports stay byte-identical with or without
#: consumers.  Parallel workers accumulate their own copies.
PERF_COUNTERS: Dict[str, int] = {"runs": 0, "events_executed": 0}


def reset_perf_counters() -> None:
    """Zero :data:`PERF_COUNTERS` (benchmark harnesses measure deltas)."""
    for key in PERF_COUNTERS:
        PERF_COUNTERS[key] = 0


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one design point from scratch and return its result.

    This is the single build-and-run path: it must stay importable at module
    level (the parallel executor ships it to worker processes by reference).
    Note the ``is not None`` check — an explicit ``0.0`` rate attaches an
    injector that never fires, which is a different system from one with no
    injector at all.

    The cyclic garbage collector is paused for the duration of the run and a
    full collection happens right after: a run allocates millions of
    short-lived objects whose lifetimes the kernel already manages through
    reference counting and free lists, so mid-run generational collections
    are pure overhead, while the collect-after bounds the retained cyclic
    garbage (dead simulated machines) to a single run.
    """
    reset_global_ids()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        system = build_system(spec.config, label=spec.label)
        if spec.recovery_rate_per_second is not None:
            system.attach_recovery_injector(spec.recovery_rate_per_second)
        result = system.run(max_cycles=spec.max_cycles)
    finally:
        if gc_was_enabled:
            gc.enable()
            # Generation 1 suffices: everything this run allocated sits in
            # generation 0 (no collection ran while gc was off), and the
            # previous run's machine — promoted to generation 1 by its own
            # post-run collection — dies here too.
            gc.collect(1)
    PERF_COUNTERS["runs"] += 1
    PERF_COUNTERS["events_executed"] += system.sim.events_executed
    # Hand the finished machine's cache set-lists to the pool (a no-op
    # unless an in-process executor enabled it around its batch); the next
    # same-geometry build then reuses them instead of allocating tens of
    # thousands of fresh per-set dicts.
    for node in system.nodes:
        node.l2_array.recycle_sets()
        if node.l1 is not None:
            node.l1.tags.recycle_sets()
    return result


def execute_spec_timed(spec: RunSpec) -> Tuple[RunResult, float]:
    """Run one design point and also return its wall-clock seconds.

    The timing never enters the :class:`RunResult` (reports stay
    byte-identical whether or not anyone measures); it rides along in the
    cache entry *envelope* so ``campaign status`` can report throughput.
    Module-level for the same reason as :func:`execute_spec`: the parallel
    executor ships it to worker processes by reference.
    """
    start = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - start


#: Schema tag of a cache entry envelope.  v1 envelopes wrap the result
#: payload with execution metadata (wall seconds, worker id); bare
#: pre-envelope entries (a raw ``RunResult.to_json`` document) stay
#: readable — the *result* schema inside is what gates staleness.
CACHE_SCHEMA = "repro.campaign.cache/v1"


class ResultCache:
    """On-disk content-addressed result store keyed by
    :meth:`RunSpec.content_hash`.

    One JSON file per design point, holding a :data:`CACHE_SCHEMA` envelope:
    the ``result`` payload (byte-identical to what the run produced) plus an
    execution ``meta`` block (wall seconds, worker id) that never leaks into
    reports.  Writes are atomic — the document is written to a ``*.tmp``
    file in the same directory and published with ``os.replace`` — so a
    store shared between concurrently running campaigns (or workers on
    other hosts) can never serve a torn entry; corrupt, half-written or
    wrong-schema entries are rejected on read and treated as misses.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stored = 0

    def path_for(self, spec: RunSpec) -> str:
        return os.path.join(self.root, spec.content_hash() + ".json")

    def path_for_hash(self, spec_hash: str) -> str:
        return os.path.join(self.root, spec_hash + ".json")

    def _load_path(self, path: str,
                   expect_hash: Optional[str]) -> Optional[Dict[str, Any]]:
        """Parse one entry into ``{"result":..., "meta":...}``; None = miss."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") == CACHE_SCHEMA:
            recorded = payload.get("spec_hash")
            if (expect_hash is not None and recorded is not None
                    and recorded != expect_hash):
                return None  # misfiled entry: never serve another spec's run
            result = payload.get("result")
            meta = payload.get("meta")
            if not (isinstance(result, dict)
                    and result.get("schema") == RESULT_SCHEMA):
                return None
            return {"result": result,
                    "meta": meta if isinstance(meta, dict) else {}}
        if payload.get("schema") == RESULT_SCHEMA:
            # Pre-envelope entry: the document *is* the result payload.
            return {"result": payload, "meta": {}}
        return None

    def _load(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        return self._load_path(self.path_for(spec), spec.content_hash())

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        entry = self._load(spec)
        if entry is None or entry["result"] is None:
            self.misses += 1
            return None
        try:
            result = RunResult.from_json(entry["result"])
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def meta(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The execution metadata stored alongside a result.

        ``None`` when the entry is absent/unreadable; ``{}`` for legacy
        bare entries.  Never counts toward hit/miss tallies — metadata
        probes (``campaign status`` throughput) are not cache traffic.
        """
        return None if (entry := self._load(spec)) is None else entry["meta"]

    def meta_for_hash(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`meta` but keyed by raw content hash (no spec needed),
        so store-side aggregation never rebuilds design points."""
        entry = self._load_path(self.path_for_hash(spec_hash), spec_hash)
        return None if entry is None else entry["meta"]

    def peek(self, spec: RunSpec) -> bool:
        """Whether a valid entry exists, without counting a hit or miss.

        The sharded worker's completion probe: polled repeatedly, so it
        must not distort the hit/miss counters the resume tests (and the
        runner's cache summary) rely on.
        """
        return self._load(spec) is not None

    def put(self, spec: RunSpec, result: RunResult, *,
            meta: Optional[Dict[str, Any]] = None) -> None:
        envelope = {
            "schema": CACHE_SCHEMA,
            "spec_hash": spec.content_hash(),
            "result": result.to_json(),
            "meta": dict(meta) if meta else {},
        }
        atomic_write_json(self.path_for(spec), envelope)
        self.stored += 1

    def stats(self) -> Dict[str, int]:
        """Tracked hit/miss/store tallies of this process's cache use.

        Unlike ``len(cache)`` this never touches the filesystem, so it is
        the summary the runner reports after a campaign (the directory may
        also hold entries written by other campaigns).
        """
        return {"hits": self.hits, "misses": self.misses,
                "stored": self.stored}

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".json"))


#: A batch of design points: a plain sequence or a named SweepSpec.
SpecBatch = Union[Sequence[RunSpec], SweepSpec]


class Executor:
    """Base class: maps batches of specs to results, consulting the cache."""

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        self.cache = cache

    # -------------------------------------------------------------- interface
    def run(self, spec: RunSpec) -> RunResult:
        """Run a single design point."""
        return self.map([spec])[0]

    def map(self, specs: SpecBatch) -> List[RunResult]:
        """Run every spec in the batch and return results in spec order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (no-op for serial execution)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- caching
    def _lookup(self, specs: SpecBatch) -> Dict[int, RunResult]:
        if self.cache is None:
            return {}
        found: Dict[int, RunResult] = {}
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec)
            if cached is not None:
                found[index] = cached
        return found

    def _store(self, spec: RunSpec, result: RunResult, *,
               wall_seconds: Optional[float] = None,
               worker: Optional[str] = None) -> None:
        if self.cache is None:
            return
        meta: Dict[str, Any] = {}
        if wall_seconds is not None:
            meta["wall_seconds"] = round(wall_seconds, 6)
        if worker is not None:
            meta["worker"] = worker
        self.cache.put(spec, result, meta=meta)


class SerialExecutor(Executor):
    """Runs every design point in-process, one after another.

    The cache set-list pool (:func:`repro.coherence.cache.enable_set_pool`)
    is enabled for the duration of each batch: consecutive same-geometry
    runs then recycle their cache arrays' backing lists instead of
    reallocating them.  Purely an allocation cache — results are
    byte-identical with the pool on or off.
    """

    def map(self, specs: SpecBatch) -> List[RunResult]:
        cached = self._lookup(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        enable_set_pool()
        try:
            for index, spec in enumerate(specs):
                if index in cached:
                    results[index] = cached[index]
                    continue
                result, seconds = execute_spec_timed(spec)
                self._store(spec, result, wall_seconds=seconds)
                results[index] = result
        finally:
            disable_set_pool()
        return results  # type: ignore[return-value]


class BatchExecutor(SerialExecutor):
    """In-process executor that orders a batch for artifact reuse.

    Each design point depends on two expensive precomputed artifacts — its
    generated workload streams and its topology routing tables (DESIGN.md
    §9).  The memos under :func:`execute_spec` already share them
    process-globally; this executor additionally groups the batch by
    :func:`~repro.campaign.precompute.artifact_keys` and runs each group
    consecutively, so a sweep that interleaves families still executes with
    every group's artifacts warm and the memos' LRU never thrashes between
    neighbouring runs.

    Execution order is first-appearance order of the key pair (stable for a
    given batch); results come back in *spec order* and — because every run
    resets the global id counters — are byte-identical to serial, parallel
    and cached execution.
    """

    def map(self, specs: SpecBatch) -> List[RunResult]:
        cached = self._lookup(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        for index, result in cached.items():
            results[index] = result
        groups: Dict[Tuple, List[Tuple[int, RunSpec]]] = {}
        for index, spec in enumerate(specs):
            if index in cached:
                continue
            groups.setdefault(artifact_keys(spec.config), []).append(
                (index, spec))
        enable_set_pool()
        try:
            for members in groups.values():
                for index, spec in members:
                    result, seconds = execute_spec_timed(spec)
                    self._store(spec, result, wall_seconds=seconds)
                    results[index] = result
        finally:
            disable_set_pool()
        return results  # type: ignore[return-value]


class ParallelExecutor(Executor):
    """Fans design points out to a ``ProcessPoolExecutor``.

    Worker processes are spawned lazily on the first :meth:`map` call and
    reused across batches; use the executor as a context manager (or call
    :meth:`close`) to shut them down.  Because :func:`execute_spec` resets
    the global id counters, a worker's results do not depend on which specs
    it happened to run before — serial and parallel execution are
    byte-identical.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None) -> None:
        super().__init__(cache=cache)
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def map(self, specs: SpecBatch) -> List[RunResult]:
        cached = self._lookup(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        pending = [(index, spec) for index, spec in enumerate(specs)
                   if index not in cached]
        for index, result in cached.items():
            results[index] = result
        if pending:
            pool = self._ensure_pool()
            futures = [(index, spec, pool.submit(execute_spec_timed, spec))
                       for index, spec in pending]
            # Collect every future before surfacing a failure: a design point
            # that raises (bad config, unknown topology, broken workload)
            # must not discard — or worse, corrupt — the results of specs
            # that completed fine.  Completed results are cached as usual,
            # then the *original* exception (which ProcessPoolExecutor
            # pickles back from the worker) is re-raised.
            first_error: Optional[Exception] = None
            for index, spec, future in futures:
                try:
                    result, seconds = future.result()
                except Exception as exc:  # noqa: BLE001 - KeyboardInterrupt
                    # and friends must still propagate immediately; worker
                    # failures (incl. BrokenProcessPool) are Exceptions.
                    if first_error is None:
                        first_error = exc
                    continue
                self._store(spec, result, wall_seconds=seconds)
                results[index] = result
            if first_error is not None:
                raise first_error
        return results  # type: ignore[return-value]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(parallel: int = 0,
                  cache_dir: Optional[str] = None,
                  batched: bool = False,
                  workers: int = 0,
                  resume: bool = False,
                  multiplexed: bool = False) -> Executor:
    """Build the executor the runner CLI asks for.

    ``workers >= 1`` yields a :class:`~repro.campaign.sharding
    .ShardedExecutor` over the shared store at ``cache_dir`` (required:
    the store *is* the coordination medium).  ``multiplexed`` yields a
    :class:`~repro.campaign.multiplex.MultiplexExecutor` — one warm process
    scheduling the whole batch — and is its own execution strategy: it
    excludes ``parallel``/``batched``/``workers``.  Otherwise ``parallel <=
    1`` yields a :class:`SerialExecutor` — or a :class:`BatchExecutor` when
    ``batched`` is set; anything larger a :class:`ParallelExecutor` with
    that many workers (each worker process keeps its own memos warm across
    the specs it runs, so ``batched`` adds nothing there).
    """
    if multiplexed and (parallel or batched or workers):
        raise ValueError(
            "multiplexed is its own execution strategy; drop "
            "parallel/batched/workers")
    if workers:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not cache_dir:
            raise ValueError(
                "sharded execution needs a shared store: pass cache_dir "
                "(the runner's --cache DIR) along with workers")
        # Imported here: sharding builds on this module.
        from repro.campaign.sharding import ShardedExecutor

        return ShardedExecutor(workers, cache_dir, resume=resume)
    if resume:
        raise ValueError("resume only applies to sharded execution "
                         "(pass workers >= 1)")
    cache = ResultCache(cache_dir) if cache_dir else None
    if multiplexed:
        # Imported here: multiplex builds on this module.
        from repro.campaign.multiplex import MultiplexExecutor

        return MultiplexExecutor(cache=cache)
    if parallel and parallel > 1:
        return ParallelExecutor(max_workers=parallel, cache=cache)
    if batched:
        return BatchExecutor(cache=cache)
    return SerialExecutor(cache=cache)

"""Shared-precomputation surface of the campaign layer.

Two artifact memos sit under every run (DESIGN.md §9):

* generated workload reference streams, keyed by ``(family, canonical
  params, seed, node count, block size, stream length)`` —
  :mod:`repro.workloads.memo`;
* interconnect topologies with their precomputed ``[src][dst]`` routing
  tables, keyed by ``(kind, dims)`` —
  :func:`repro.interconnect.topology.shared_topology`.

This module is the campaign-facing façade: it derives the artifact keys of
a design point (so :class:`~repro.campaign.executor.BatchExecutor` can
group a batch by shared artifacts), merges the memo tallies for reporting,
and clears both memos at once for cold-path measurements.  The memos are
process-global and observational-only; results are byte-identical warm or
cold.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.interconnect.topology import (
    TOPOLOGY_MEMO_STATS,
    clear_topology_memo,
    shared_topology,
)
from repro.sim.config import SystemConfig
from repro.workloads.memo import (
    MEMO_STATS,
    clear_stream_memo,
    shared_streams,
    stream_key,
)

__all__ = [
    "artifact_keys",
    "clear_memos",
    "memo_stats",
    "shared_streams",
    "shared_topology",
    "stream_key",
]


def artifact_keys(config: SystemConfig) -> Tuple[Tuple, Tuple]:
    """The ``(stream key, topology key)`` pair a design point shares by.

    Two specs with equal keys reuse exactly the same precomputed artifacts;
    the batch executor uses first-appearance order of this pair to run
    artifact-sharing specs consecutively.  The topology key covers the bus
    -based snooping systems too — they simply never consult the topology
    memo, so grouping by it is harmless there.
    """
    workload = config.workload
    stream = stream_key(
        workload.name,
        num_processors=config.num_processors,
        block_bytes=config.block_bytes,
        seed=workload.seed,
        params=workload.params,
        references_per_processor=workload.references_per_processor)
    topo_cfg = config.interconnect.resolved_topology()
    return (stream, (topo_cfg.kind, topo_cfg.dims))


def memo_stats() -> Dict[str, int]:
    """Merged hit/miss tallies of both memos (a fresh copy)."""
    merged = dict(MEMO_STATS)
    merged.update(TOPOLOGY_MEMO_STATS)
    return merged


def clear_memos() -> None:
    """Drop every warm artifact in both memos and zero their tallies."""
    clear_stream_memo()
    clear_topology_memo()

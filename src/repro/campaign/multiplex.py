"""Cross-run multiplexed execution: K design points in one warm process.

A campaign grid is hundreds of *independent* deterministic simulations, and
the per-run prologue — config resolution, system construction, workload
cursor setup — is pure overhead that a one-process-per-point campaign pays
cold every time.  :class:`MultiplexExecutor` runs a whole batch inside one
process as a single scheduled pass:

* **Artifact grouping.**  Specs are grouped by
  :func:`~repro.campaign.precompute.artifact_keys` (generated workload
  streams, topology routing tables) in first-appearance order, exactly like
  :class:`~repro.campaign.executor.BatchExecutor`, so every group executes
  with its precomputed artifacts warm and the memos never thrash.

* **Construction/execution interleave.**  Within a group the pass keeps a
  small window of fully built systems in flight (``width``): it round-robins
  *building* the next design point against *executing* the oldest built one.
  Freshly built systems execute while their successors are constructed, so
  the compiled kernel cores, the memoized artifacts and the allocator's hot
  free lists stay warm instead of cooling between a cold prologue and a hot
  run loop.

* **Amortized prologue.**  The cyclic garbage collector is paused for the
  duration of the pass (and restored afterwards): the simulation kernel
  manages its own pools, so mid-pass collection work is pure overhead.
  Each finished machine hands its cache set-lists back to the pool and is
  then dropped with a youngest-generation-only collect; dead machines the
  window promoted are left for the automatic collector after the pass,
  which is measurably cheaper than sweeping the old generation mid-pass.

Determinism.  Serial execution resets the process-global id counters
(transactions, bus requests, network messages) immediately before *each*
run's system build, and the run then draws ids from those fresh counters.
Interleaving a build of run B between the build and the execution of run A
would let B's prologue consume ids from A's sequence.  The multiplexer
therefore gives every in-flight run its own counter objects: fresh counters
are installed right before a build, captured with the built system, and
re-installed right before the run executes.  Each design point thus observes
exactly the serial sequence ``fresh counters -> build -> run`` no matter how
the pass interleaves, which is what keeps multiplexed results byte-identical
to serial / parallel / cached / batched / sharded execution (the
determinism contract of DESIGN.md §4, extended in §13).
"""

from __future__ import annotations

import gc
import time
from typing import Any, Dict, List, Optional, Tuple

import repro.coherence.common as _coherence_common
import repro.coherence.snooping.bus as _snooping_bus
import repro.interconnect.message as _message
from repro.coherence.cache import disable_set_pool, enable_set_pool
from repro.campaign.executor import (
    PERF_COUNTERS,
    Executor,
    ResultCache,
    SpecBatch,
    reset_global_ids,
)
from repro.campaign.precompute import artifact_keys
from repro.campaign.spec import RunSpec
from repro.system import build_system
from repro.system.results import RunResult

__all__ = ["MultiplexExecutor", "DEFAULT_WIDTH"]

#: Systems kept fully built and awaiting execution at any moment.  Small on
#: purpose: each in-flight system holds a complete simulated machine, so the
#: window bounds peak memory while still overlapping every build with the
#: previous run's execution.
DEFAULT_WIDTH = 4

#: The three module-global id streams a run draws from (see
#: :func:`repro.campaign.executor.reset_global_ids`).
_Counters = Tuple[Any, Any, Any]


def _capture_counters() -> _Counters:
    """The counter objects currently installed in the module globals."""
    return (_coherence_common._TRANSACTION_IDS,
            _snooping_bus._REQUEST_IDS,
            _message._MESSAGE_IDS)


def _install_counters(counters: _Counters) -> None:
    """Re-install a run's captured counter objects (stateful iterators, so
    installation resumes the run's id sequence exactly where its build left
    off)."""
    (_coherence_common._TRANSACTION_IDS,
     _snooping_bus._REQUEST_IDS,
     _message._MESSAGE_IDS) = counters


class _InFlight:
    """One built-but-not-yet-executed design point of the pass."""

    __slots__ = ("index", "spec", "system", "counters", "build_seconds")

    def __init__(self, index: int, spec: RunSpec, system: Any,
                 counters: _Counters, build_seconds: float) -> None:
        self.index = index
        self.spec = spec
        self.system = system
        self.counters = counters
        self.build_seconds = build_seconds


class MultiplexExecutor(Executor):
    """Runs K independent design points in one process as a scheduled pass.

    Results come back in *spec order* and are byte-identical to every other
    executor (see the module docstring for why).  ``width`` is the number of
    built systems kept in flight; ``width=1`` degenerates to the batched
    executor's strictly sequential build-then-run order, still grouped by
    artifacts.
    """

    def __init__(self, cache: Optional[ResultCache] = None, *,
                 width: int = DEFAULT_WIDTH) -> None:
        super().__init__(cache=cache)
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width

    # ----------------------------------------------------------------- phases
    def _build(self, index: int, spec: RunSpec) -> _InFlight:
        """The per-run prologue: fresh counters, system build, injector."""
        start = time.perf_counter()
        reset_global_ids()
        system = build_system(spec.config, label=spec.label)
        if spec.recovery_rate_per_second is not None:
            system.attach_recovery_injector(spec.recovery_rate_per_second)
        return _InFlight(index, spec, system, _capture_counters(),
                         time.perf_counter() - start)

    def _execute(self, flight: _InFlight,
                 results: List[Optional[RunResult]]) -> None:
        """Run one built system to completion and store its result."""
        start = time.perf_counter()
        _install_counters(flight.counters)
        system = flight.system
        result = system.run(max_cycles=flight.spec.max_cycles)
        PERF_COUNTERS["runs"] += 1
        PERF_COUNTERS["events_executed"] += system.sim.events_executed
        seconds = flight.build_seconds + (time.perf_counter() - start)
        self._store(flight.spec, result, wall_seconds=seconds)
        results[flight.index] = result
        # Hand the finished machine's cache set-lists back to the pool (the
        # next build draws them warm instead of allocating tens of
        # thousands of fresh per-set dicts), then drop the machine itself.
        for node in system.nodes:
            node.l2_array.recycle_sets()
            if node.l1 is not None:
                node.l1.tags.recycle_sets()
        flight.system = None
        # The machine is a cyclic object graph (components <-> sim), so
        # dropping the reference frees nothing by itself while the
        # collector is paused.  A youngest-generation collect reclaims
        # whatever died since the last one at near-zero cost; anything the
        # window kept alive long enough to be promoted is deliberately left
        # for the automatic collector once the pass re-enables it (its big
        # per-set dicts are already back in the pool, so the stragglers are
        # cheap skeletons).  Deeper per-run collects measure strictly
        # slower: they promote every live in-flight machine to the old
        # generation, where freeing the pile costs one large sweep.
        gc.collect(0)

    # -------------------------------------------------------------- interface
    def map(self, specs: SpecBatch) -> List[RunResult]:
        cached = self._lookup(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        for index, result in cached.items():
            results[index] = result
        groups: Dict[Tuple, List[Tuple[int, RunSpec]]] = {}
        for index, spec in enumerate(specs):
            if index in cached:
                continue
            groups.setdefault(artifact_keys(spec.config), []).append(
                (index, spec))
        if not groups:
            return results  # type: ignore[return-value]

        gc_was_enabled = gc.isenabled()
        gc.disable()
        enable_set_pool()
        try:
            in_flight: List[_InFlight] = []
            for members in groups.values():
                for index, spec in members:
                    if len(in_flight) >= self.width:
                        self._execute(in_flight.pop(0), results)
                    in_flight.append(self._build(index, spec))
            while in_flight:
                self._execute(in_flight.pop(0), results)
        finally:
            disable_set_pool()
            if gc_was_enabled:
                gc.enable()
        return results  # type: ignore[return-value]

"""Declarative design points: :class:`RunSpec` and :class:`SweepSpec`.

A design point of the paper's evaluation grid (workload x protocol variant x
routing policy x buffer size x injector rate) is *data*, not code: a
:class:`RunSpec` names the complete configuration, the label under which the
run is reported, and the injector knobs.  Because it is data it can be

* hashed — :meth:`RunSpec.content_hash` is a stable digest of the canonical
  JSON form, used as the on-disk cache key by the executor layer;
* shipped to another process — the parallel executor pickles specs, not
  systems; and
* grouped — a :class:`SweepSpec` is an ordered, named collection of specs
  that an executor runs as one batch.

The executor layer (:mod:`repro.campaign.executor`) is the only place that
turns a spec into a built system.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.config import (
    CacheConfig,
    CheckpointConfig,
    InterconnectConfig,
    ProcessorConfig,
    ProtocolKind,
    ProtocolVariant,
    RoutingPolicy,
    SpeculationConfig,
    SystemConfig,
    TopologyConfig,
    WorkloadConfig,
)

#: Version tag baked into every content hash; bump when the canonical spec
#: encoding changes so stale cache entries can never be confused for fresh.
SPEC_SCHEMA = "repro.campaign.spec/v1"


def _jsonable(value: Any) -> Any:
    """Recursively coerce dataclass/enum values into JSON-safe primitives."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Canonical JSON-safe dictionary form of a :class:`SystemConfig`.

    Fields whose ``None`` default predates a pluggable layer are omitted
    from the encoding entirely, so design points from before that layer
    keep byte-identical canonical forms — and therefore stable content
    hashes / cache keys — while any explicit selection hashes in as new
    data:

    * ``interconnect.topology`` of ``None`` (the legacy "torus of
      mesh_width x mesh_height" selection, pre-topology-layer);
    * ``speculation.detectors`` of ``None`` (the "derive the speculation
      set from the design flags" selection, pre-speculation-layer);
    * ``workload.params`` of ``None`` (the "registered family defaults"
      selection, pre-workload-registry).
    """
    payload = _jsonable(asdict(config))
    interconnect = payload.get("interconnect")
    if isinstance(interconnect, dict) and interconnect.get("topology") is None:
        del interconnect["topology"]
    workload = payload.get("workload")
    if isinstance(workload, dict) and workload.get("params") is None:
        del workload["params"]
    speculation = payload.get("speculation")
    if isinstance(speculation, dict):
        if speculation.get("detectors") is None:
            del speculation["detectors"]
        # ``interconnect_no_vc_speculation`` used to be inert; it now forces
        # the Section 4 no-VC network at build time.  A marker key makes the
        # canonical form of exactly the affected configurations (flag True)
        # diverge from their pre-layer encoding, so any stale cache entry
        # simulated under the old no-op semantics can never be served for
        # the new machine.  Flag-False configurations — every design point
        # the repository ever produced — keep byte-identical encodings.
        if speculation.get("interconnect_no_vc_speculation"):
            speculation["interconnect_no_vc_speculation"] = "forces-no-vc-network/v2"
    return payload


def canonical_json(payload: Any) -> str:
    """The one canonical JSON encoding used for hashing and byte comparison."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_from_dict(payload: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its canonical dictionary form.

    The exact inverse of :func:`config_to_dict` — the round trip
    ``config_to_dict(config_from_dict(d)) == d`` holds for every canonical
    encoding the repository produces, so a design point shipped through a
    campaign manifest (JSON on a shared store, rebuilt by a worker on any
    host) re-hashes to the same content hash the submitting process wrote.
    The ``None``-omitted fields decode through their dataclass defaults, and
    the ``forces-no-vc-network/v2`` marker decodes back to the flag it
    encodes.
    """
    interconnect = dict(payload["interconnect"])
    topology = interconnect.get("topology")
    interconnect["topology"] = (
        TopologyConfig(kind=topology["kind"], dims=tuple(topology["dims"]))
        if topology is not None else None)
    interconnect["routing"] = RoutingPolicy(interconnect["routing"])
    speculation = dict(payload["speculation"])
    if speculation.get("interconnect_no_vc_speculation") == \
            "forces-no-vc-network/v2":
        speculation["interconnect_no_vc_speculation"] = True
    return SystemConfig(
        num_processors=payload["num_processors"],
        protocol=ProtocolKind(payload["protocol"]),
        variant=ProtocolVariant(payload["variant"]),
        l1=CacheConfig(**payload["l1"]),
        l2=CacheConfig(**payload["l2"]),
        memory_bytes=payload["memory_bytes"],
        block_bytes=payload["block_bytes"],
        memory_latency_cycles=payload["memory_latency_cycles"],
        processor=ProcessorConfig(**payload["processor"]),
        interconnect=InterconnectConfig(**interconnect),
        checkpoint=CheckpointConfig(**payload["checkpoint"]),
        speculation=SpeculationConfig(**speculation),
        workload=WorkloadConfig(**payload["workload"]),
        cycles_per_second=payload["cycles_per_second"],
    )


def spec_from_json(payload: Dict[str, Any]) -> "RunSpec":
    """Rebuild a :class:`RunSpec` from :meth:`RunSpec.to_json` output."""
    schema = payload.get("schema")
    if schema != SPEC_SCHEMA:
        raise ValueError(f"unsupported spec schema {schema!r}")
    return RunSpec(
        config=config_from_dict(payload["config"]),
        label=payload.get("label"),
        recovery_rate_per_second=payload.get("recovery_rate_per_second"),
        max_cycles=payload.get("max_cycles"),
    )


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One design point: a complete system configuration plus run knobs.

    ``recovery_rate_per_second`` distinguishes three cases deliberately:
    ``None`` means no injector at all, ``0.0`` means an injector that is
    attached but never fires (the Figure 4 zero-rate control), and a positive
    rate injects periodic recoveries.
    """

    config: SystemConfig
    label: Optional[str] = None
    recovery_rate_per_second: Optional[float] = None
    max_cycles: Optional[int] = None

    @property
    def workload(self) -> str:
        return self.config.workload.name

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SPEC_SCHEMA,
            "config": config_to_dict(self.config),
            "label": self.label,
            "recovery_rate_per_second": self.recovery_rate_per_second,
            "max_cycles": self.max_cycles,
        }

    def content_hash(self) -> str:
        """Stable digest of the canonical spec encoding (the cache key)."""
        return hashlib.sha256(
            canonical_json(self.to_json()).encode("utf-8")).hexdigest()[:20]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __hash__(self) -> int:
        return hash(self.content_hash())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunSpec({self.workload!r}, label={self.label!r}, "
                f"hash={self.content_hash()[:8]})")


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered batch of design points run together.

    Experiments build one sweep per phase (e.g. "all Figure 5 static and
    adaptive runs") and hand it to an executor; results come back in spec
    order regardless of execution order, so reports are deterministic under
    parallel execution.
    """

    name: str
    specs: Tuple[RunSpec, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, name: str, specs: Iterable[RunSpec]) -> "SweepSpec":
        return cls(name=name, specs=tuple(specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def labels(self) -> List[str]:
        return [spec.label or spec.workload for spec in self.specs]

    def content_hash(self) -> str:
        payload = {"schema": SPEC_SCHEMA, "name": self.name,
                   "specs": [spec.content_hash() for spec in self.specs]}
        return hashlib.sha256(
            canonical_json(payload).encode("utf-8")).hexdigest()[:20]

"""Campaign manifests: the durable record of what a campaign *is*.

A sharded campaign must survive the death of every process that knows about
it, so the complete batch — the ordered design points plus the campaign
identity — is written to the shared store **before any work starts**.  The
manifest is the contract between the submitting process and the workers:

* identity — :meth:`CampaignManifest.campaign_hash` digests the campaign
  name plus the ordered spec content hashes, so resubmitting the same batch
  finds (and verifies against) the existing manifest instead of forking a
  second campaign;
* portability — each entry embeds the spec's full canonical JSON
  (:meth:`RunSpec.to_json`), so a worker on any host rebuilds the
  :class:`RunSpec` from the store alone (:func:`~repro.campaign.spec
  .spec_from_json`) with a byte-identical content hash (verified on load);
* order — entries keep batch order, which is the order reports are
  assembled in; execution order is irrelevant to the result bytes.

Writes are atomic (tmp + ``os.replace`` in the same directory) so a crash
mid-write can never leave a torn manifest for workers to trip over.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.spec import (
    RunSpec,
    SweepSpec,
    canonical_json,
    spec_from_json,
)

#: Schema tag of the on-store manifest document.
MANIFEST_SCHEMA = "repro.campaign.manifest/v1"

#: Subdirectory of the campaign store holding one manifest per campaign.
MANIFEST_DIR = "manifests"


def atomic_write_json(path: str, payload: Any) -> None:
    """Write ``payload`` as JSON atomically: tmp in the same dir + replace.

    Readers either see the complete document or the previous one — never a
    half-written file — which is the property every store-side artifact
    (manifest, result entry, partial report) relies on.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


@dataclass(frozen=True)
class CampaignManifest:
    """An ordered, named batch of design points pinned to the store."""

    name: str
    specs: Tuple[RunSpec, ...]

    @classmethod
    def of(cls, name: str,
           specs: Union[Sequence[RunSpec], SweepSpec]) -> "CampaignManifest":
        """Build a manifest from a batch; a :class:`SweepSpec` keeps its name."""
        if isinstance(specs, SweepSpec):
            name = specs.name
        return cls(name=name, specs=tuple(specs))

    def spec_hashes(self) -> List[str]:
        return [spec.content_hash() for spec in self.specs]

    def campaign_hash(self) -> str:
        """Digest of the name + ordered spec hashes (the manifest filename).

        Deliberately the same encoding as :meth:`SweepSpec.content_hash`, so
        a sweep and the manifest built from it agree on the campaign id.
        """
        payload = {"schema": "repro.campaign.spec/v1", "name": self.name,
                   "specs": self.spec_hashes()}
        return hashlib.sha256(
            canonical_json(payload).encode("utf-8")).hexdigest()[:20]

    def __len__(self) -> int:
        return len(self.specs)

    # ---------------------------------------------------------- serialization
    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "name": self.name,
            "campaign": self.campaign_hash(),
            "specs": [{"hash": spec.content_hash(), "spec": spec.to_json()}
                      for spec in self.specs],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "CampaignManifest":
        """Rebuild a manifest, verifying every embedded spec re-hashes true.

        The hash check guards the portability contract: if the canonical
        spec encoding ever drifted between the writer and this process, the
        worker would otherwise silently publish results under the wrong
        content hashes.
        """
        schema = payload.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise ValueError(f"unsupported manifest schema {schema!r}")
        specs: List[RunSpec] = []
        for entry in payload["specs"]:
            spec = spec_from_json(entry["spec"])
            rebuilt = spec.content_hash()
            if rebuilt != entry["hash"]:
                raise ValueError(
                    f"manifest spec hash mismatch: recorded {entry['hash']}, "
                    f"rebuilt {rebuilt} (canonical encoding drift?)")
            specs.append(spec)
        manifest = cls(name=payload["name"], specs=tuple(specs))
        recorded = payload.get("campaign")
        if recorded is not None and recorded != manifest.campaign_hash():
            raise ValueError(
                f"manifest campaign hash mismatch: recorded {recorded}, "
                f"rebuilt {manifest.campaign_hash()}")
        return manifest


# ----------------------------------------------------------------- store I/O
def manifest_dir(store_root: str) -> str:
    return os.path.join(store_root, MANIFEST_DIR)


def manifest_path(store_root: str, campaign_hash: str) -> str:
    return os.path.join(manifest_dir(store_root), campaign_hash + ".json")


def write_manifest(store_root: str, manifest: CampaignManifest) -> str:
    """Atomically publish ``manifest`` to the store; returns its path.

    Idempotent: rewriting an identical manifest is harmless (same bytes,
    same name).  Publishing happens *before* any worker starts — the
    manifest is what a worker polls for.
    """
    os.makedirs(manifest_dir(store_root), exist_ok=True)
    path = manifest_path(store_root, manifest.campaign_hash())
    atomic_write_json(path, manifest.to_json())
    return path


def read_manifest(store_root: str,
                  campaign_hash: str) -> Optional[CampaignManifest]:
    """Load one campaign's manifest, or ``None`` when not published yet."""
    try:
        with open(manifest_path(store_root, campaign_hash), "r",
                  encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError:
        return None
    return CampaignManifest.from_json(payload)


def list_manifests(store_root: str) -> List[Dict[str, Any]]:
    """Raw manifest documents in the store (unverified, for status display).

    Returns the parsed JSON payloads sorted by campaign name then hash;
    unreadable or torn files are skipped — status reporting must never die
    on a store another process is actively writing to.
    """
    root = manifest_dir(store_root)
    documents: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    for filename in names:
        if not filename.endswith(".json"):
            continue
        try:
            with open(os.path.join(root, filename), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if payload.get("schema") == MANIFEST_SCHEMA:
            documents.append(payload)
    documents.sort(key=lambda doc: (doc.get("name", ""), doc.get("campaign", "")))
    return documents

"""Registry-driven experiment campaigns.

The campaign layer turns the paper's evaluation grid into data plus three
orthogonal pieces:

* :mod:`repro.campaign.spec` — :class:`RunSpec`/:class:`SweepSpec` name a
  design point (configuration + label + injector knobs) with a stable
  content hash;
* :mod:`repro.campaign.registry` — ``@register_experiment`` collects every
  driver in :mod:`repro.experiments` for the runner to discover;
* :mod:`repro.campaign.executor` — serial and process-parallel executors
  with optional on-disk result caching, through which every simulated run
  funnels.

See EXPERIMENTS.md for the user-facing tour and DESIGN.md §4 for the
architecture rationale.
"""

from repro.campaign.executor import (
    BatchExecutor,
    Executor,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    execute_spec,
    make_executor,
    reset_global_ids,
    reset_perf_counters,
)
from repro.campaign.precompute import (
    artifact_keys,
    clear_memos,
    memo_stats,
)
from repro.campaign.registry import (
    CampaignContext,
    ExperimentEntry,
    all_experiments,
    discover,
    experiment_names,
    get_experiment,
    register_experiment,
)
from repro.campaign.spec import (
    RunSpec,
    SweepSpec,
    canonical_json,
    config_to_dict,
)

__all__ = [
    "BatchExecutor",
    "CampaignContext",
    "ExperimentEntry",
    "Executor",
    "ParallelExecutor",
    "ResultCache",
    "RunSpec",
    "SerialExecutor",
    "SweepSpec",
    "all_experiments",
    "artifact_keys",
    "canonical_json",
    "clear_memos",
    "config_to_dict",
    "discover",
    "execute_spec",
    "experiment_names",
    "get_experiment",
    "make_executor",
    "memo_stats",
    "register_experiment",
    "reset_global_ids",
    "reset_perf_counters",
]

"""Registry-driven experiment campaigns.

The campaign layer turns the paper's evaluation grid into data plus three
orthogonal pieces:

* :mod:`repro.campaign.spec` — :class:`RunSpec`/:class:`SweepSpec` name a
  design point (configuration + label + injector knobs) with a stable
  content hash;
* :mod:`repro.campaign.registry` — ``@register_experiment`` collects every
  driver in :mod:`repro.experiments` for the runner to discover;
* :mod:`repro.campaign.executor` — serial and process-parallel executors
  with optional on-disk result caching, through which every simulated run
  funnels.

See EXPERIMENTS.md for the user-facing tour and DESIGN.md §4 for the
architecture rationale.
"""

from repro.campaign.executor import (
    BatchExecutor,
    Executor,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    execute_spec,
    execute_spec_timed,
    make_executor,
    reset_global_ids,
    reset_perf_counters,
)
from repro.campaign.multiplex import MultiplexExecutor
from repro.campaign.manifest import (
    CampaignManifest,
    read_manifest,
    write_manifest,
)
from repro.campaign.precompute import (
    artifact_keys,
    clear_memos,
    memo_stats,
)
from repro.campaign.registry import (
    CampaignContext,
    ExperimentEntry,
    all_experiments,
    discover,
    experiment_names,
    get_experiment,
    register_experiment,
)
from repro.campaign.spec import (
    RunSpec,
    SweepSpec,
    canonical_json,
    config_from_dict,
    config_to_dict,
    spec_from_json,
)

#: Sharding exports resolved lazily (PEP 562): ``python -m
#: repro.campaign.sharding`` first imports this package, and an eager
#: import of the very module runpy is about to execute would trigger its
#: double-import warning on every worker CLI invocation.
_SHARDING_EXPORTS = frozenset({
    "LeaseBoard",
    "ShardedExecutor",
    "aggregate_partial",
    "campaign_status",
    "run_worker",
    "worker_summaries",
})


def __getattr__(name):
    if name in _SHARDING_EXPORTS:
        from repro.campaign import sharding

        return getattr(sharding, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BatchExecutor",
    "CampaignContext",
    "CampaignManifest",
    "ExperimentEntry",
    "Executor",
    "LeaseBoard",
    "ParallelExecutor",
    "ResultCache",
    "RunSpec",
    "SerialExecutor",
    "ShardedExecutor",
    "SweepSpec",
    "aggregate_partial",
    "all_experiments",
    "artifact_keys",
    "campaign_status",
    "canonical_json",
    "clear_memos",
    "config_from_dict",
    "config_to_dict",
    "discover",
    "execute_spec",
    "execute_spec_timed",
    "experiment_names",
    "get_experiment",
    "make_executor",
    "memo_stats",
    "read_manifest",
    "register_experiment",
    "reset_global_ids",
    "reset_perf_counters",
    "run_worker",
    "spec_from_json",
    "worker_summaries",
    "write_manifest",
]

"""Sharded, crash-safe, resumable campaign execution over a shared store.

The campaign store is a plain directory any number of worker processes — on
any host that can see it — cooperate through.  There is no coordinator
protocol and no network channel: every piece of shared state is a file with
atomic create/rename semantics, which is what makes the execution model
crash-safe by construction.

Store layout (rooted at the existing content-addressed result cache)::

    <store>/<spec_hash>.json       completed results (ResultCache envelopes)
    <store>/manifests/<campaign>.json   the campaign manifests (durable input)
    <store>/leases/<spec_hash>.lease    in-flight claims (one per design point)
    <store>/partial/<campaign>.json     incremental aggregation (progress)
    <store>/workers/<campaign>.<worker>.json   per-worker execution summaries

Execution model:

1. The submitting process writes the :class:`~repro.campaign.manifest
   .CampaignManifest` atomically *before any work starts* — the campaign
   exists on disk from that point on, independent of any process.
2. Workers scan the manifest in order and *claim* incomplete design points
   by atomically creating ``leases/<spec_hash>.lease`` (hard-link of a
   fully written temp file, so a claim is all-or-nothing even on NFS).  A
   claimed spec runs through the ordinary :func:`execute_spec` machinery
   and its result is published to the content-addressed cache with the
   cache's atomic tmp+rename write; then the lease is released.
3. A worker heartbeats its held leases (mtime refresh) from a background
   thread.  If a worker dies — including ``SIGKILL`` mid-spec — its lease
   mtime freezes; once it is older than ``stale_after`` any other worker
   *reclaims* it (atomic rename of the stale lease to a per-worker
   tombstone: exactly one renamer wins) and re-runs the spec.  Nothing a
   killed worker did needs undoing: unpublished work is invisible, and the
   published results are content-addressed and idempotent.
4. Completion is "every manifest spec has a valid cache entry".  Because
   every run resets the global id counters, results are independent of
   which worker ran what and in which order — sharded execution is
   byte-identical to serial (the determinism contract, pinned by test).

Resumption is the same operation as submission: re-submitting an identical
batch finds the existing manifest, the cache lookup skips everything
already completed, and workers only claim what is missing.  ``campaign
status`` (the runner's ``--status`` flag) reads the store without touching
simulation code at all.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Union

from repro.campaign.executor import (
    Executor,
    ResultCache,
    execute_spec_timed,
)
from repro.campaign.manifest import (
    CampaignManifest,
    atomic_write_json,
    list_manifests,
    read_manifest,
    write_manifest,
)
from repro.campaign.spec import RunSpec, SweepSpec
from repro.system.results import RunResult

#: Schema tag of the incremental partial-report document.
PARTIAL_SCHEMA = "repro.campaign.partial/v1"

#: Seconds without a heartbeat after which a lease counts as abandoned.
#: Heartbeats run at a tenth of this by default, so a live worker's lease
#: is always an order of magnitude fresher than the reclamation threshold.
DEFAULT_STALE_AFTER = 60.0

LEASE_DIR = "leases"
PARTIAL_DIR = "partial"
WORKER_DIR = "workers"


# --------------------------------------------------------------------- leases
class LeaseBoard:
    """Atomic file-based claims over design points in a shared store.

    A lease is a file whose *existence* is the claim and whose *mtime* is
    the heartbeat.  Claims are made by hard-linking a fully written temp
    file into place (``os.link`` fails with ``FileExistsError`` when the
    spec is already claimed) — the create-rename idiom that is atomic on
    POSIX filesystems including NFS.  Reclamation renames the stale lease
    to a per-worker tombstone first; ``os.replace`` hands the file to
    exactly one of any number of concurrent reclaimers, so a stale spec is
    re-claimed exactly once.
    """

    def __init__(self, store_root: str, worker_id: str, *,
                 stale_after: float = DEFAULT_STALE_AFTER) -> None:
        if stale_after <= 0:
            raise ValueError("stale_after must be positive")
        self.root = os.path.join(store_root, LEASE_DIR)
        self.worker_id = worker_id
        self.stale_after = stale_after
        os.makedirs(self.root, exist_ok=True)
        #: Lease paths this worker currently holds (heartbeat targets).
        self.held: Set[str] = set()

    def lease_path(self, spec_hash: str) -> str:
        return os.path.join(self.root, spec_hash + ".lease")

    def claim(self, spec_hash: str) -> bool:
        """Atomically claim one design point; False when already claimed."""
        lease = self.lease_path(spec_hash)
        tmp = os.path.join(self.root,
                           f".claim.{self.worker_id}.{spec_hash}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"worker": self.worker_id, "spec_hash": spec_hash,
                       "claimed_epoch": time.time()}, handle)
        try:
            os.link(tmp, lease)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        self.held.add(lease)
        return True

    def release(self, spec_hash: str) -> None:
        lease = self.lease_path(spec_hash)
        self.held.discard(lease)
        try:
            os.unlink(lease)
        except FileNotFoundError:
            pass  # reclaimed from under us; harmless, results are idempotent

    def refresh(self) -> None:
        """Heartbeat: bump the mtime of every held lease."""
        for lease in tuple(self.held):
            try:
                os.utime(lease)
            except FileNotFoundError:
                self.held.discard(lease)

    def holder(self, spec_hash: str) -> Optional[str]:
        """The claiming worker id, or None when the spec is unclaimed."""
        try:
            with open(self.lease_path(spec_hash), "r",
                      encoding="utf-8") as handle:
                return json.load(handle).get("worker")
        except (OSError, ValueError):
            return None

    def age(self, spec_hash: str) -> Optional[float]:
        """Seconds since the lease's last heartbeat; None when unclaimed."""
        try:
            return time.time() - os.stat(self.lease_path(spec_hash)).st_mtime
        except OSError:
            return None

    def is_claimed(self, spec_hash: str) -> bool:
        return os.path.exists(self.lease_path(spec_hash))

    def is_stale(self, spec_hash: str) -> bool:
        age = self.age(spec_hash)
        return age is not None and age > self.stale_after

    def reclaim(self, spec_hash: str) -> bool:
        """Take over a stale lease; True when this worker now holds it.

        The stale lease is first renamed to a tombstone unique to this
        worker — concurrent reclaimers race on ``os.replace`` and exactly
        one wins (the losers get ``FileNotFoundError``) — then a fresh
        claim is made through the normal path.
        """
        if not self.is_stale(spec_hash):
            return False
        lease = self.lease_path(spec_hash)
        tombstone = lease + f".dead.{self.worker_id}"
        try:
            os.replace(lease, tombstone)
        except FileNotFoundError:
            return False  # another reclaimer (or a release) got there first
        os.unlink(tombstone)
        return self.claim(spec_hash)


class _Heartbeat:
    """Background mtime refresher for a worker's held leases."""

    def __init__(self, board: LeaseBoard, interval: float) -> None:
        import threading

        self.board = board
        self.interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"lease-heartbeat-{board.worker_id}")

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.board.refresh()

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self.interval + 1.0)


# -------------------------------------------------------------------- workers
def run_worker(store_root: str, campaign_hash: str, worker_id: str, *,
               stale_after: float = DEFAULT_STALE_AFTER,
               heartbeat_interval: Optional[float] = None,
               poll_interval: Optional[float] = None) -> Dict[str, Any]:
    """Claim-and-run design points of one campaign until it is complete.

    The worker is stateless beyond the store: it reads the manifest, runs
    whatever it can claim, publishes results into the content-addressed
    cache and keeps polling (for stale leases to reclaim, for the campaign
    to finish) until every design point has a result.  Returns — and
    crash-safely persists after every completed spec — a summary of what
    this worker did.
    """
    manifest = read_manifest(store_root, campaign_hash)
    if manifest is None:
        raise FileNotFoundError(
            f"no manifest {campaign_hash!r} in store {store_root!r}; "
            "publish it (write_manifest) before starting workers")
    if heartbeat_interval is None:
        heartbeat_interval = max(stale_after / 10.0, 0.05)
    if poll_interval is None:
        poll_interval = min(max(stale_after / 4.0, 0.05), 0.5)
    cache = ResultCache(store_root)
    board = LeaseBoard(store_root, worker_id, stale_after=stale_after)
    summary: Dict[str, Any] = {
        "worker": worker_id, "campaign": campaign_hash, "pid": os.getpid(),
        "executed": [], "reclaimed": 0, "wall_seconds": 0.0,
    }
    summary_path = os.path.join(
        store_root, WORKER_DIR, f"{campaign_hash}.{worker_id}.json")
    os.makedirs(os.path.dirname(summary_path), exist_ok=True)
    entries = list(zip(manifest.spec_hashes(), manifest.specs))
    done: Set[str] = set()

    def completed(spec_hash: str, spec: RunSpec) -> bool:
        if spec_hash in done:
            return True
        if cache.peek(spec):
            done.add(spec_hash)
            return True
        return False

    with _Heartbeat(board, heartbeat_interval):
        while True:
            progressed = False
            pending = [(spec_hash, spec) for spec_hash, spec in entries
                       if not completed(spec_hash, spec)]
            if not pending:
                break
            for spec_hash, spec in pending:
                if completed(spec_hash, spec):
                    continue
                if board.is_claimed(spec_hash):
                    if not board.reclaim(spec_hash):  # stale-checked inside
                        continue
                    summary["reclaimed"] += 1
                elif not board.claim(spec_hash):
                    continue  # lost the race to another worker
                # Claimed.  Re-check the cache: the spec may have completed
                # between the scan and the claim.
                if completed(spec_hash, spec):
                    board.release(spec_hash)
                    continue
                try:
                    result, seconds = execute_spec_timed(spec)
                except BaseException:
                    # Surface the failure (the worker process dies with a
                    # traceback) but free the claim so a code-fixed resume
                    # — or another worker — can retry the spec.
                    board.release(spec_hash)
                    raise
                cache.put(spec, result,
                          meta={"wall_seconds": round(seconds, 6),
                                "worker": worker_id})
                board.release(spec_hash)
                done.add(spec_hash)
                summary["executed"].append(spec_hash)
                summary["wall_seconds"] = round(
                    summary["wall_seconds"] + seconds, 6)
                atomic_write_json(summary_path, summary)
                progressed = True
            if not progressed:
                # Everything pending is claimed by (so far) live workers;
                # wait for results to land or leases to go stale.
                time.sleep(poll_interval)
    atomic_write_json(summary_path, summary)
    return summary


def _worker_entry(store_root: str, campaign_hash: str, worker_prefix: str,
                  stale_after: float) -> None:
    """Spawn target: run one worker process to campaign completion."""
    worker_id = f"{worker_prefix}-{os.getpid()}"
    run_worker(store_root, campaign_hash, worker_id, stale_after=stale_after)


def worker_summaries(store_root: str,
                     campaign_hash: str) -> List[Dict[str, Any]]:
    """Per-worker execution summaries of one campaign, sorted by worker id."""
    root = os.path.join(store_root, WORKER_DIR)
    summaries: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    for filename in names:
        if not (filename.startswith(campaign_hash + ".")
                and filename.endswith(".json")):
            continue
        try:
            with open(os.path.join(root, filename), "r",
                      encoding="utf-8") as handle:
                summaries.append(json.load(handle))
        except (OSError, ValueError):
            continue
    return summaries


# ------------------------------------------------- incremental aggregation
def aggregate_partial(store_root: str,
                      manifest_doc: Dict[str, Any]) -> Dict[str, Any]:
    """Fold completed results into the campaign's partial report.

    Derived purely from the content-addressed store (which spec hashes have
    valid entries, plus their execution metadata), so it is correct after
    any crash at any point; the document is written atomically to
    ``partial/<campaign>.json`` and doubles as the data behind ``campaign
    status``.  Works from the raw manifest payload — aggregation never
    rebuilds specs or touches simulation code.
    """
    campaign = manifest_doc.get("campaign", "")
    spec_hashes = [entry["hash"] for entry in manifest_doc.get("specs", [])]
    probe = ResultCache(store_root)
    board = LeaseBoard(store_root, "status")
    completed: Dict[str, Dict[str, Any]] = {}
    missing: List[str] = []
    wall_seconds = 0.0
    for spec_hash in spec_hashes:
        meta = probe.meta_for_hash(spec_hash)
        if meta is None:
            missing.append(spec_hash)
            continue
        completed[spec_hash] = meta
        wall_seconds += float(meta.get("wall_seconds", 0.0) or 0.0)
    leased = [h for h in missing if board.is_claimed(h)]
    stale = [h for h in leased if board.is_stale(h)]
    payload: Dict[str, Any] = {
        "schema": PARTIAL_SCHEMA,
        "campaign": campaign,
        "name": manifest_doc.get("name", ""),
        "total": len(spec_hashes),
        "completed": len(completed),
        "missing": missing,
        "leases": {"active": len(leased) - len(stale), "stale": len(stale)},
        "wall_seconds_completed": round(wall_seconds, 6),
        "points": completed,
    }
    partial_root = os.path.join(store_root, PARTIAL_DIR)
    os.makedirs(partial_root, exist_ok=True)
    atomic_write_json(os.path.join(partial_root, campaign + ".json"), payload)
    return payload


def campaign_status(store_root: str) -> str:
    """Human-readable progress of every campaign in the store.

    Refreshes each campaign's partial report as a side effect (status *is*
    the incremental aggregation pass), so a crashed campaign's progress
    file catches up the moment anyone looks at it.
    """
    documents = list_manifests(store_root)
    if not documents:
        return f"no campaign manifests in {store_root}"
    lines = [f"campaign store {store_root}: {len(documents)} campaign(s)"]
    for doc in documents:
        partial = aggregate_partial(store_root, doc)
        total, completed = partial["total"], partial["completed"]
        leases = partial["leases"]
        line = (f"  {partial['campaign'][:12]}  {partial['name']:<28s} "
                f"{completed:>4d}/{total:<4d} complete")
        if completed < total:
            unclaimed = (total - completed
                         - leases["active"] - leases["stale"])
            line += (f"  ({leases['active']} leased, {leases['stale']} stale, "
                     f"{unclaimed} unclaimed)")
        if completed and partial["wall_seconds_completed"]:
            per_spec = partial["wall_seconds_completed"] / completed
            line += (f"  {partial['wall_seconds_completed']:.1f} worker-s "
                     f"({per_spec:.2f} s/spec)")
        lines.append(line)
    return "\n".join(lines)


# ------------------------------------------------------------------ executor
class ShardedExecutor(Executor):
    """Maps batches by publishing a manifest and fanning out store workers.

    Unlike :class:`ParallelExecutor` (an in-memory future per spec), every
    piece of coordination lives in the shared store, so execution survives
    the death of any worker — and of this orchestrator: a killed campaign
    is resumed by simply mapping the same batch again (``resume=True``
    additionally *requires* the manifest to exist already).  Results come
    back in spec order, byte-identical to serial execution.
    """

    def __init__(self, num_workers: int, store_dir: str, *,
                 stale_after: float = DEFAULT_STALE_AFTER,
                 poll_interval: float = 0.5,
                 campaign_name: str = "campaign",
                 resume: bool = False) -> None:
        if num_workers < 1:
            raise ValueError("ShardedExecutor needs at least one worker")
        super().__init__(cache=ResultCache(store_dir))
        self.num_workers = num_workers
        self.store_dir = store_dir
        self.stale_after = stale_after
        self.poll_interval = poll_interval
        self.campaign_name = campaign_name
        self.resume = resume

    def map(self, specs: Union[Sequence[RunSpec], SweepSpec]) -> List[RunResult]:
        manifest = CampaignManifest.of(self.campaign_name, specs)
        campaign_hash = manifest.campaign_hash()
        if read_manifest(self.store_dir, campaign_hash) is None:
            if self.resume:
                raise RuntimeError(
                    f"resume requested but store {self.store_dir!r} has no "
                    f"manifest for campaign {campaign_hash!r} "
                    f"({manifest.name!r}); run without --resume to start it")
            write_manifest(self.store_dir, manifest)
        cached = self._lookup(specs)
        missing = len(manifest) - len(cached)
        if missing:
            self._run_workers(campaign_hash, missing)
        results: List[RunResult] = []
        for index, spec in enumerate(specs):
            result = cached.get(index)
            if result is None:
                result = self.cache.get(spec)
            if result is None:
                raise RuntimeError(
                    f"sharded campaign {campaign_hash!r} ended with no "
                    f"result for spec {spec!r}")
            results.append(result)
        aggregate_partial(self.store_dir, manifest.to_json())
        return results

    def _run_workers(self, campaign_hash: str, missing: int) -> None:
        """Spawn workers, aggregating progress until the campaign drains."""
        manifest_doc = read_manifest(self.store_dir, campaign_hash).to_json()
        ctx = multiprocessing.get_context("spawn")
        count = max(1, min(self.num_workers, missing))
        workers = [
            ctx.Process(target=_worker_entry,
                        args=(self.store_dir, campaign_hash, f"w{index}",
                              self.stale_after))
            for index in range(count)]
        for process in workers:
            process.start()
        try:
            while any(process.is_alive() for process in workers):
                aggregate_partial(self.store_dir, manifest_doc)
                time.sleep(self.poll_interval)
        finally:
            for process in workers:
                process.join()
            aggregate_partial(self.store_dir, manifest_doc)
        failed = [process.exitcode for process in workers
                  if process.exitcode not in (0, None)]
        if failed:
            raise RuntimeError(
                f"{len(failed)} sharded worker(s) exited abnormally "
                f"(exit codes {failed}); completed results are in the store "
                "— fix the failure and resume the campaign")


# ----------------------------------------------------------------------- CLI
def main(argv: Optional[List[str]] = None) -> int:
    """Standalone worker / status entry point (any host sharing the store).

    ``python -m repro.campaign.sharding worker --store DIR --campaign HASH``
    joins an existing campaign; ``... status --store DIR`` prints progress.
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)
    worker = commands.add_parser("worker", help="claim and run design points")
    worker.add_argument("--store", required=True, metavar="DIR")
    worker.add_argument("--campaign", required=True, metavar="HASH")
    worker.add_argument("--worker-id", default=None, metavar="ID")
    worker.add_argument("--stale-after", type=float,
                        default=DEFAULT_STALE_AFTER, metavar="SECONDS")
    status = commands.add_parser("status", help="print campaign progress")
    status.add_argument("--store", required=True, metavar="DIR")
    args = parser.parse_args(argv)
    if args.command == "status":
        print(campaign_status(args.store))
        return 0
    worker_id = args.worker_id or f"cli-{os.getpid()}"
    summary = run_worker(args.store, args.campaign, worker_id,
                         stale_after=args.stale_after)
    print(f"worker {worker_id}: executed {len(summary['executed'])} spec(s), "
          f"reclaimed {summary['reclaimed']} stale lease(s), "
          f"{summary['wall_seconds']:.1f}s simulating")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
